"""``python -m repro.lint`` — same interface as ``rlwe-repro lint``."""

from repro.lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
