"""Command-line front end: ``rlwe-repro lint`` / ``python -m repro.lint``.

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage or I/O error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.checkers import ALL_CHECKERS, CHECKERS_BY_CODE
from repro.lint.framework import Baseline, run_lint

#: The committed baseline of grandfathered findings, looked up in the
#: working directory when ``--baseline`` is not given.
DEFAULT_BASELINE = "lint-baseline.json"

#: Default lint surface when no paths are given.
DEFAULT_PATHS = ("src", "benchmarks", "examples")


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to a parser (shared with repro.cli)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to lint "
            f"(default: {' '.join(DEFAULT_PATHS)} where present)"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable report instead of text",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated checker codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline JSON of grandfathered findings "
            f"(default: ./{DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "grandfather every current finding into the baseline file "
            "and exit 0"
        ),
    )
    parser.add_argument(
        "--list-checkers",
        action="store_true",
        help="list every checker code with its one-line contract",
    )
    parser.add_argument(
        "--contract",
        default=None,
        metavar="PATH",
        help=(
            "also write the machine-readable wire-contract JSON "
            "(opcode -> name/dispatch/client/worker coverage) built "
            "from the same parse; CI diffs it against the committed "
            "wire-contract.json to catch protocol drift"
        ),
    )


def _resolve_paths(raw: Sequence[str]) -> List[str]:
    if raw:
        missing = [p for p in raw if not Path(p).exists()]
        if missing:
            raise SystemExit(f"error: no such path: {', '.join(missing)}")
        return list(raw)
    found = [p for p in DEFAULT_PATHS if Path(p).is_dir()]
    if not found:
        raise SystemExit(
            "error: no paths given and none of "
            f"{', '.join(DEFAULT_PATHS)} exist here"
        )
    return found


def _resolve_select(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    codes = [c.strip().upper() for c in raw.split(",") if c.strip()]
    unknown = [c for c in codes if c not in CHECKERS_BY_CODE]
    if unknown:
        raise SystemExit(
            f"error: unknown checker code(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(CHECKERS_BY_CODE))}"
        )
    if not codes:
        raise SystemExit("error: --select lists no codes")
    return codes


def run(args: argparse.Namespace) -> int:
    if args.list_checkers:
        for checker in ALL_CHECKERS:
            print(f"{checker.code}  {checker.name:<20} {checker.description}")
        return 0

    paths = _resolve_paths(args.paths)
    select = _resolve_select(args.select)

    baseline: Optional[Baseline] = None
    baseline_path = Path(args.baseline) if args.baseline else None
    if not args.no_baseline:
        if baseline_path is None and Path(DEFAULT_BASELINE).is_file():
            baseline_path = Path(DEFAULT_BASELINE)
        if baseline_path is not None and not args.write_baseline:
            try:
                baseline = Baseline.load(baseline_path)
            except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
                raise SystemExit(f"error: bad baseline {baseline_path}: {exc}")

    report = run_lint(paths, ALL_CHECKERS, select=select, baseline=baseline)

    if args.contract:
        from repro.lint.project import build_contract

        try:
            contract = build_contract(report.contexts)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
        Path(args.contract).write_text(
            json.dumps(contract, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    if args.write_baseline:
        target = baseline_path or Path(DEFAULT_BASELINE)
        Baseline.from_findings(report.findings).dump(target)
        print(
            f"wrote {len(report.findings)} grandfathered finding(s) "
            f"to {target}"
        )
        return 0

    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        summary = (
            f"{len(report.findings)} finding(s) in "
            f"{report.checked_files} file(s)"
        )
        extras = []
        if report.suppressed:
            extras.append(f"{len(report.suppressed)} suppressed inline")
        if report.baselined:
            extras.append(f"{len(report.baselined)} baselined")
        if extras:
            summary += f" ({', '.join(extras)})"
        print(summary)
    return 1 if report.findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="rlwe-repro lint",
        description=(
            "AST-based invariant checker for the repo's crypto, "
            "randomness, wire, and concurrency contracts"
        ),
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
