"""The `rlwe-repro lint` framework: files, findings, and suppression.

The repo's safety story rests on invariants that ordinary tests cannot
watch continuously — "all randomness flows through :mod:`repro.trng`",
"no pickle ever touches an IPC pipe", "deserializers consume exactly
their input".  This package turns those conventions into an AST-based
static-analysis pass over the repo's own source.

This module is the machinery; the individual rules live in
:mod:`repro.lint.checkers`.  Three pieces matter to checker authors:

* :class:`Finding` — one diagnostic: code, path, line, column, message.
* :class:`FileContext` — one parsed file: source, AST, comment
  directives, and package-location helpers (``in_package``).
* suppression — a finding is silenced by an inline
  ``# lint: disable=CODE`` comment on its line (codes whose checker
  sets ``require_reason`` additionally need ``CODE(reason text)``), or
  by an entry in a committed JSON *baseline* file that grandfathers
  pre-existing findings by ``(code, path, message)``.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Finding code used when a file cannot be parsed at all.
PARSE_ERROR_CODE = "LNT999"

_CODE_RE = re.compile(r"[A-Z]{2,8}[0-9]{3}")
_DIRECTIVE_RE = re.compile(r"#\s*lint:\s*(.+)$")


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a checker."""

    code: str
    path: str
    line: int
    column: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.code} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }

    @classmethod
    def from_json(cls, obj: Dict[str, object]) -> "Finding":
        return cls(
            code=str(obj["code"]),
            path=str(obj["path"]),
            line=int(obj["line"]),  # type: ignore[arg-type]
            column=int(obj["column"]),  # type: ignore[arg-type]
            message=str(obj["message"]),
        )


@dataclass(frozen=True)
class Disable:
    """One inline ``disable=`` entry: the code plus its optional reason."""

    code: str
    reason: Optional[str]


def _split_disable_list(text: str) -> List[Disable]:
    """Parse ``CODE1,CODE2(reason, with commas),CODE3`` into entries.

    A reason attaches to the code it follows and is shared backward
    through the comma group: ``A,B(reason)`` disables both codes with
    the same recorded reason, so one judgement can cover the several
    checkers that fire on one line.
    """
    entries: List[Disable] = []
    cursor = 0
    length = len(text)
    while cursor < length:
        match = _CODE_RE.match(text, cursor)
        if match is None:
            # Skip separators/whitespace; stop on anything unparseable.
            if text[cursor] in ", \t":
                cursor += 1
                continue
            break
        code = match.group(0)
        cursor = match.end()
        reason: Optional[str] = None
        if cursor < length and text[cursor] == "(":
            close = text.find(")", cursor)
            if close == -1:
                reason = text[cursor + 1 :].strip() or None
                cursor = length
            else:
                reason = text[cursor + 1 : close].strip() or None
                cursor = close + 1
        entries.append(Disable(code, reason))
    # Share a trailing group reason backward over reason-less codes.
    for index in range(len(entries) - 2, -1, -1):
        if entries[index].reason is None and entries[index + 1].reason:
            entries[index] = Disable(
                entries[index].code, entries[index + 1].reason
            )
    return entries


def parse_directives(
    source: str,
) -> "tuple[Dict[int, List[Disable]], Dict[int, List[str]]]":
    """Extract per-line lint directives from a file's comments.

    Returns ``(disables, secrets)``: line number -> the ``disable=``
    entries on that line, and line number -> the names declared secret
    by a ``secret(a, b)`` annotation on that line.
    """
    disables: Dict[int, List[Disable]] = {}
    secrets: Dict[int, List[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = [
            (number, "#" + line.split("#", 1)[1])
            for number, line in enumerate(source.splitlines(), start=1)
            if "#" in line
        ]
    for line_number, comment in comments:
        match = _DIRECTIVE_RE.search(comment)
        if match is None:
            continue
        body = match.group(1).strip()
        if body.startswith("disable="):
            entries = _split_disable_list(body[len("disable=") :])
            if entries:
                disables.setdefault(line_number, []).extend(entries)
        elif body.startswith("secret(") and body.endswith(")"):
            names = [
                name.strip()
                for name in body[len("secret(") : -1].split(",")
                if name.strip()
            ]
            if names:
                secrets.setdefault(line_number, []).extend(names)
    return disables, secrets


class FileContext:
    """One file under analysis: source, AST, and directive maps."""

    #: Statement kinds a trailing directive can ride on: *simple*
    #: statements only, so a comment inside a compound body never
    #: leaks its directive onto the ``if``/``def`` header line.
    _SIMPLE_STMTS = (
        ast.Expr,
        ast.Assign,
        ast.AugAssign,
        ast.AnnAssign,
        ast.Return,
        ast.Raise,
        ast.Assert,
        ast.Delete,
        ast.Import,
        ast.ImportFrom,
    )

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.disables, self.secrets = parse_directives(source)
        self._attach_continuation_directives()
        self.parts: Tuple[str, ...] = self._package_parts(path)

    def _attach_continuation_directives(self) -> None:
        """Anchor directives on continued lines to their statement.

        Findings anchor on a statement's *first* line, but a trailing
        ``# lint: disable=...`` comment on a statement continued with a
        backslash or spread over a multi-line call lands on a later
        physical line.  Re-register such directives on the statement's
        first line so the suppression and the finding meet.
        """
        if not self.disables:
            return
        for node in ast.walk(self.tree):
            if not isinstance(node, self._SIMPLE_STMTS):
                continue
            end = getattr(node, "end_lineno", None)
            if end is None or end <= node.lineno:
                continue
            for line in range(node.lineno + 1, end + 1):
                for entry in self.disables.get(line, []):
                    anchored = self.disables.setdefault(node.lineno, [])
                    if entry not in anchored:
                        anchored.append(entry)

    @staticmethod
    def _package_parts(path: str) -> Tuple[str, ...]:
        """Path components below the ``repro`` package, if any.

        ``src/repro/service/protocol.py`` -> ``('service', 'protocol.py')``
        so checkers can scope themselves to subpackages regardless of
        where the tree is checked out.  Files outside a ``repro``
        directory (benchmarks, fixtures) keep their plain components.
        """
        parts = Path(path).parts
        for index, part in enumerate(parts):
            if part == "repro":
                return tuple(parts[index + 1 :])
        return tuple(parts)

    def in_package(self, *packages: str) -> bool:
        """True when the file sits under one of the given subpackages."""
        return bool(self.parts) and self.parts[0] in packages

    @property
    def filename(self) -> str:
        return self.parts[-1] if self.parts else self.path

    def secret_names_for(self, node: ast.AST) -> List[str]:
        """Names declared secret for a function definition node.

        The ``# lint: secret(...)`` annotation attaches on the ``def``
        line itself or on the line directly above it (above any
        decorators).
        """
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return []
        candidate_lines = {node.lineno, node.lineno - 1}
        for decorator in node.decorator_list:
            candidate_lines.add(decorator.lineno - 1)
        names: List[str] = []
        for line in sorted(candidate_lines):
            names.extend(self.secrets.get(line, []))
        return names


class Checker:
    """Base class: one rule, one code, one ``check`` generator."""

    code: str = ""
    name: str = ""
    description: str = ""
    #: When True, an inline disable must carry a ``(reason)`` to count.
    require_reason: bool = False
    #: Project-wide checkers (see :mod:`repro.lint.project`) set this
    #: True; they are fed the whole parsed tree at once instead of one
    #: file at a time.
    is_project: bool = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            code=self.code,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


# ----------------------------------------------------------------------
# Baseline (grandfathered findings)
# ----------------------------------------------------------------------
class Baseline:
    """A committed set of grandfathered findings.

    Entries match on ``(code, path, message)`` — line numbers shift too
    easily to key on.  One entry suppresses every current finding it
    matches, so a baseline can only shrink the enforced surface, never
    misattribute a new finding to an old line.
    """

    VERSION = 1

    def __init__(self, entries: Iterable[Tuple[str, str, str]] = ()):
        self.entries = set(entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict) or data.get("version") != cls.VERSION:
            raise ValueError(
                f"{path}: not a version-{cls.VERSION} lint baseline"
            )
        entries = set()
        for entry in data.get("findings", []):
            entries.add(
                (str(entry["code"]), str(entry["path"]), str(entry["message"]))
            )
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls((f.code, f.path, f.message) for f in findings)

    def dump(self, path: Path) -> None:
        payload = {
            "version": self.VERSION,
            "findings": [
                {"code": code, "path": file_path, "message": message}
                for code, file_path, message in sorted(self.entries)
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def contains(self, finding: Finding) -> bool:
        return (finding.code, finding.path, finding.message) in self.entries

    def __len__(self) -> int:
        return len(self.entries)


# ----------------------------------------------------------------------
# The pass
# ----------------------------------------------------------------------
@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    checked_files: int = 0
    select: Optional[List[str]] = None
    paths: List[str] = field(default_factory=list)
    #: Every successfully parsed file, for consumers that post-process
    #: the same parse (the wire-contract emitter).  Not serialized.
    contexts: List[FileContext] = field(default_factory=list)

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.code] = out.get(finding.code, 0) + 1
        return out

    def to_json(self) -> Dict[str, object]:
        return {
            "version": 1,
            "tool": "rlwe-repro lint",
            "paths": list(self.paths),
            "select": self.select,
            "checked_files": self.checked_files,
            "findings": [f.to_json() for f in self.findings],
            "counts": self.counts,
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
        }


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(
                part == "__pycache__" or part.startswith(".")
                for part in candidate.parts
            ):
                continue
            yield candidate


def _normalize(path: Path) -> str:
    """Stable posix-style path for findings and baselines."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _is_suppressed(finding: Finding, ctx: FileContext, checker: Checker) -> bool:
    for disable in ctx.disables.get(finding.line, []):
        if disable.code != finding.code:
            continue
        if checker.require_reason and not disable.reason:
            continue
        return True
    return False


def lint_file(
    path: Path,
    checkers: Sequence[Checker],
    display_path: Optional[str] = None,
) -> "tuple[Optional[FileContext], List[tuple[Finding, Checker]], Optional[Finding]]":
    """Run the checkers over one file.

    Returns ``(context, findings_with_checker, parse_error)``;
    suppression and baselining are the caller's concern so
    ``--write-baseline`` can see the raw set.
    """
    shown = display_path if display_path is not None else _normalize(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return None, [], Finding(
            PARSE_ERROR_CODE, shown, 1, 1, f"unreadable: {exc}"
        )
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, [], Finding(
            PARSE_ERROR_CODE,
            shown,
            exc.lineno or 1,
            (exc.offset or 0) + 1,
            f"syntax error: {exc.msg}",
        )
    ctx = FileContext(shown, source, tree)
    produced: List[Tuple[Finding, Checker]] = []
    for checker in checkers:
        for finding in checker.check(ctx):
            produced.append((finding, checker))
    return ctx, produced, None


def run_lint(
    paths: Sequence[str],
    checkers: Sequence[Checker],
    select: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint every python file under ``paths`` with the given checkers.

    Per-file checkers see one :class:`FileContext` at a time; checkers
    with ``is_project`` set run once afterwards over every parsed file
    (the cross-module pass in :mod:`repro.lint.project`).  Suppression
    and baselining apply identically to both kinds.
    """
    if select is not None:
        wanted = set(select)
        checkers = [c for c in checkers if c.code in wanted]
    file_checkers = [c for c in checkers if not c.is_project]
    project_checkers = [c for c in checkers if c.is_project]
    report = LintReport(
        select=sorted(select) if select is not None else None,
        paths=[str(p) for p in paths],
    )

    def record(finding: Finding, ctx: Optional[FileContext], checker: Checker) -> None:
        if ctx is not None and _is_suppressed(finding, ctx, checker):
            report.suppressed.append(finding)
        elif baseline is not None and baseline.contains(finding):
            report.baselined.append(finding)
        else:
            report.findings.append(finding)

    for path in iter_python_files(paths):
        report.checked_files += 1
        ctx, produced, parse_error = lint_file(path, file_checkers)
        if parse_error is not None:
            report.findings.append(parse_error)
            continue
        if ctx is not None:
            report.contexts.append(ctx)
        for finding, checker in produced:
            record(finding, ctx, checker)

    if project_checkers and report.contexts:
        # One shared index: the whole tree is parsed exactly once.
        index = project_checkers[0].build_index(report.contexts)
        by_path = {ctx.path: ctx for ctx in report.contexts}
        for checker in project_checkers:
            for finding in checker.check_project(index):
                record(finding, by_path.get(finding.path), checker)

    report.findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
    return report
