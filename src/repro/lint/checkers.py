"""The invariant checkers behind ``rlwe-repro lint``.

Each checker guards one contract the repo's correctness or security
story depends on; README's "Developer tooling" section documents the
codes one line each.  All checkers are heuristic AST passes — they are
deliberately strict where the contract is load-bearing and suppressible
(``# lint: disable=CODE``) where a human has judged an exception.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.framework import Checker, FileContext, Finding
from repro.lint.project import ALL_PROJECT_CHECKERS


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _mentions_len(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "len"
        ):
            return True
    return False


def _function_defs(
    tree: ast.AST,
) -> Iterator["ast.FunctionDef | ast.AsyncFunctionDef"]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# ----------------------------------------------------------------------
# RND001 — randomness hygiene
# ----------------------------------------------------------------------
class RandomnessHygiene(Checker):
    """Randomness flows through :mod:`repro.trng`, nowhere else.

    ``--seed N`` promises bit-identical replay across runs, machines,
    and transports; one stray ``random.random()`` (process-global,
    hash-seeded) or ``os.urandom()`` (kernel entropy) silently breaks
    that for everything downstream.  Only ``src/repro/trng/`` may talk
    to an entropy source.
    """

    code = "RND001"
    name = "randomness-hygiene"
    description = (
        "randomness outside repro.trng (random/secrets/os.urandom/"
        "numpy.random) breaks seeded replay"
    )

    _BANNED_MODULES = {"random", "secrets"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_package("trng"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self._BANNED_MODULES:
                        yield self.finding(
                            ctx,
                            node,
                            f"import of {alias.name!r} outside repro.trng; "
                            f"draw from a seeded repro.trng stream "
                            f"(e.g. trng.DeterministicRng) instead",
                        )
                    elif alias.name.startswith("numpy.random"):
                        yield self.finding(
                            ctx,
                            node,
                            "numpy.random outside repro.trng breaks "
                            "seeded replay; use a repro.trng stream",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                root = module.split(".")[0]
                if root in self._BANNED_MODULES:
                    yield self.finding(
                        ctx,
                        node,
                        f"import from {module!r} outside repro.trng; "
                        f"use a seeded repro.trng stream instead",
                    )
                elif module.startswith("numpy.random") or (
                    module == "numpy"
                    and any(a.name == "random" for a in node.names)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "numpy.random outside repro.trng breaks seeded "
                        "replay; use a repro.trng stream",
                    )
                elif module == "os" and any(
                    a.name == "urandom" for a in node.names
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "os.urandom outside repro.trng is unseedable "
                        "kernel entropy; use a repro.trng stream",
                    )
            elif isinstance(node, ast.Attribute):
                dotted = _dotted_name(node)
                if dotted == "os.urandom":
                    yield self.finding(
                        ctx,
                        node,
                        "os.urandom outside repro.trng is unseedable "
                        "kernel entropy; use a repro.trng stream",
                    )
                elif dotted in ("numpy.random", "np.random"):
                    yield self.finding(
                        ctx,
                        node,
                        "numpy.random outside repro.trng breaks seeded "
                        "replay; use a repro.trng stream",
                    )


# ----------------------------------------------------------------------
# CT001 — constant-time discipline
# ----------------------------------------------------------------------
class ConstantTimeDiscipline(Checker):
    """No secret-dependent control flow or table indexing.

    The paper's central implementation concern: a function in
    ``sampler/`` or ``core/`` that annotates its secrets with
    ``# lint: secret(name, ...)`` on (or directly above) its ``def``
    line must not branch on them (``if``/``while``/conditional
    expressions) or use them as subscript indices — both leak through
    timing and cache channels.  Taint propagates through assignments
    within the function.
    """

    code = "CT001"
    name = "constant-time"
    description = (
        "secret-dependent branch/loop/index in a function annotated "
        "'# lint: secret(...)' leaks timing"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("sampler", "core"):
            return
        for func in _function_defs(ctx.tree):
            secrets = ctx.secret_names_for(func)
            if not secrets:
                continue
            yield from self._check_function(ctx, func, set(secrets))

    def _check_function(
        self,
        ctx: FileContext,
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
        tainted: Set[str],
    ) -> Iterator[Finding]:
        body_nodes = [
            node
            for stmt in func.body
            for node in ast.walk(stmt)
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

        def references_secret(node: ast.AST) -> bool:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name) and sub.id in tainted:
                    return True
            return False

        # Propagate taint through assignments to a fixpoint, so the
        # order of statements cannot hide a derived secret.
        changed = True
        while changed:
            changed = False
            for node in body_nodes:
                targets: List[ast.AST] = []
                if isinstance(node, ast.Assign) and references_secret(
                    node.value
                ):
                    targets = list(node.targets)
                elif isinstance(node, ast.AugAssign) and (
                    references_secret(node.value)
                    or references_secret(node.target)
                ):
                    targets = [node.target]
                elif (
                    isinstance(node, ast.AnnAssign)
                    and node.value is not None
                    and references_secret(node.value)
                ):
                    targets = [node.target]
                elif isinstance(node, (ast.For, ast.AsyncFor)) and (
                    references_secret(node.iter)
                ):
                    targets = [node.target]
                for target in targets:
                    for sub in ast.walk(target):
                        if (
                            isinstance(sub, ast.Name)
                            and sub.id not in tainted
                        ):
                            tainted.add(sub.id)
                            changed = True

        for node in body_nodes:
            if isinstance(node, (ast.If, ast.While)) and references_secret(
                node.test
            ):
                kind = "if" if isinstance(node, ast.If) else "while"
                yield self.finding(
                    ctx,
                    node,
                    f"secret-dependent `{kind}` (condition touches "
                    f"{self._touched(node.test, tainted)}); constant-time "
                    f"code must select by mask, not branch",
                )
            elif isinstance(node, ast.IfExp) and references_secret(node.test):
                yield self.finding(
                    ctx,
                    node,
                    f"secret-dependent conditional expression (touches "
                    f"{self._touched(node.test, tainted)}); select by "
                    f"arithmetic/mask instead",
                )
            elif isinstance(node, ast.Subscript) and references_secret(
                node.slice
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"secret-dependent subscript (index touches "
                    f"{self._touched(node.slice, tainted)}); table lookups "
                    f"indexed by secrets leak through the cache",
                )
            elif isinstance(node, ast.comprehension):
                for test in node.ifs:
                    if references_secret(test):
                        yield self.finding(
                            ctx,
                            test,
                            "secret-dependent comprehension filter; "
                            "constant-time code must not branch on secrets",
                        )

    @staticmethod
    def _touched(node: ast.AST, tainted: Set[str]) -> str:
        names = sorted(
            {
                sub.id
                for sub in ast.walk(node)
                if isinstance(sub, ast.Name) and sub.id in tainted
            }
        )
        return ", ".join(repr(n) for n in names) or "a secret"


# ----------------------------------------------------------------------
# WIRE001 — wire strictness
# ----------------------------------------------------------------------
class WireStrictness(Checker):
    """Deserializers parse strictly: ValueError only, exact length.

    Applies to ``deserialize_*``/``decode_*``/``peek_*``/``parse_*``
    functions in wire modules (``serialize.py``, ``protocol.py``).
    Three rules:

    * every ``struct.unpack``/``unpack_from`` must be dominated by a
      length guard (an earlier ``if``/``while`` on ``len(...)``, a
      ``*check_exact_length*``/``*parse_header*`` call, or a
      ``try/except struct.error``) so truncated input cannot escape as
      ``struct.error``;
    * ``deserialize_*``/``decode_*``/``peek_*`` functions must consume
      exactly their input: an exact-length helper, a trailing-bytes
      comparison, an explicit remainder return (``data[cursor:]``), or
      delegation to another strict parser;
    * ``get_parameter_set`` lookups must convert ``KeyError`` to
      ``ValueError`` via try/except.
    """

    code = "WIRE001"
    name = "wire-strictness"
    description = (
        "deserializer may leak struct.error/KeyError or accept "
        "trailing bytes; wire parsing must be exact and raise ValueError"
    )

    _WIRE_FILES = {"serialize.py", "protocol.py"}
    _SCOPE_PREFIXES = ("deserialize_", "decode_", "peek_", "parse_")
    _EXACTNESS_PREFIXES = ("deserialize_", "decode_", "peek_")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.filename not in self._WIRE_FILES:
            return
        for func in _function_defs(ctx.tree):
            stripped = func.name.lstrip("_")
            if not stripped.startswith(self._SCOPE_PREFIXES):
                continue
            yield from self._check_unpacks(ctx, func)
            yield from self._check_parameter_lookup(ctx, func)
            if stripped.startswith(self._EXACTNESS_PREFIXES):
                yield from self._check_exactness(ctx, func)

    # -- rule 1: guarded unpacks ---------------------------------------
    def _check_unpacks(
        self, ctx: FileContext, func: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> Iterator[Finding]:
        guard_lines: List[int] = []
        for node in ast.walk(func):
            if isinstance(node, (ast.If, ast.While)) and _mentions_len(
                node.test
            ):
                guard_lines.append(node.lineno)
            elif isinstance(node, ast.Call):
                dotted = _dotted_name(node.func) or ""
                if "check_exact_length" in dotted or "parse_header" in dotted:
                    guard_lines.append(node.lineno)
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func) or ""
            if not dotted.endswith((".unpack", ".unpack_from")):
                continue
            if any(line <= node.lineno for line in guard_lines):
                continue
            if self._inside_struct_error_try(func, node):
                continue
            yield self.finding(
                ctx,
                node,
                f"{dotted} is not dominated by a length guard; truncated "
                f"input would escape as struct.error instead of ValueError",
            )

    @staticmethod
    def _inside_struct_error_try(func: ast.AST, call: ast.Call) -> bool:
        for node in ast.walk(func):
            if not isinstance(node, ast.Try):
                continue
            if not any(sub is call for sub in ast.walk(node)):
                continue
            for handler in node.handlers:
                names: List[Optional[str]] = []
                if handler.type is None:
                    return True
                if isinstance(handler.type, ast.Tuple):
                    names = [_dotted_name(e) for e in handler.type.elts]
                else:
                    names = [_dotted_name(handler.type)]
                if any(n in ("struct.error", "Exception") for n in names):
                    return True
        return False

    # -- rule 2: exact-length discipline -------------------------------
    def _check_exactness(
        self, ctx: FileContext, func: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                dotted = _dotted_name(node.func) or ""
                if "check_exact_length" in dotted:
                    return
                leaf = dotted.split(".")[-1].lstrip("_")
                if dotted != "" and leaf.startswith(self._SCOPE_PREFIXES):
                    return  # delegates to another strict parser
            if isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.NotEq, ast.Eq)) for op in node.ops
            ):
                if _mentions_len(node):
                    return  # trailing-bytes comparison
            if isinstance(node, ast.Return) and node.value is not None:
                for sub in ast.walk(node.value):
                    if (
                        isinstance(sub, ast.Subscript)
                        and isinstance(sub.slice, ast.Slice)
                        and sub.slice.upper is None
                        and sub.slice.lower is not None
                    ):
                        return  # returns the unconsumed remainder
        yield self.finding(
            ctx,
            func,
            f"{func.name} never enforces exact input length: add a "
            f"trailing-bytes check (or return the remainder explicitly) "
            f"so surplus input is rejected",
        )

    # -- rule 3: parameter-set lookup ----------------------------------
    def _check_parameter_lookup(
        self, ctx: FileContext, func: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func) or ""
            if dotted.split(".")[-1] != "get_parameter_set":
                continue
            if self._inside_keyerror_try(func, node):
                continue
            yield self.finding(
                ctx,
                node,
                "get_parameter_set may raise KeyError on an unknown "
                "parameter-set name; wrap it and re-raise ValueError",
            )

    @staticmethod
    def _inside_keyerror_try(func: ast.AST, call: ast.Call) -> bool:
        for node in ast.walk(func):
            if not isinstance(node, ast.Try):
                continue
            if not any(sub is call for sub in ast.walk(node)):
                continue
            for handler in node.handlers:
                if handler.type is None:
                    return True
                elements = (
                    handler.type.elts
                    if isinstance(handler.type, ast.Tuple)
                    else [handler.type]
                )
                if any(
                    _dotted_name(e) in ("KeyError", "Exception")
                    for e in elements
                ):
                    return True
        return False


# ----------------------------------------------------------------------
# IPC001 — pickle ban
# ----------------------------------------------------------------------
class PickleBan(Checker):
    """No ``pickle``/``marshal`` anywhere near a transport.

    The worker-IPC pipe and the public socket both speak the hardened
    length-prefixed wire format; unpickling attacker-influenced bytes
    is arbitrary code execution, so the importers never get a chance.
    """

    code = "IPC001"
    name = "pickle-ban"
    description = (
        "pickle/marshal import in a transport package; IPC carries the "
        "hardened wire format only"
    )

    _BANNED = {"pickle", "cPickle", "marshal", "shelve", "dill"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("service", "api"):
            return
        for node in ast.walk(ctx.tree):
            names: List[str] = []
            if isinstance(node, ast.Import):
                names = [alias.name.split(".")[0] for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                names = [(node.module or "").split(".")[0]]
            for name in names:
                if name in self._BANNED:
                    yield self.finding(
                        ctx,
                        node,
                        f"import of {name!r} in a transport package; the "
                        f"IPC pipe and socket carry only the hardened "
                        f"wire format (repro.core.serialize / "
                        f"repro.service.protocol)",
                    )


# ----------------------------------------------------------------------
# ASY001 — asyncio hygiene
# ----------------------------------------------------------------------
class AsyncioHygiene(Checker):
    """No blocking calls on the event loop.

    One ``time.sleep`` inside an ``async def`` stalls every connection
    and every coalescer window the process is serving.  Flags known
    blocking calls — ``time.sleep``, ``open``, blocking ``subprocess``
    helpers, ``socket.create_connection``, ``os.system`` and the
    repo's own ``*_blocking`` frame I/O — inside ``async def`` bodies
    in ``service/`` and ``api/`` (nested synchronous ``def``s are
    exempt: they run off-loop via executors or in worker processes).
    """

    code = "ASY001"
    name = "asyncio-hygiene"
    description = (
        "blocking call (time.sleep/open/subprocess/*_blocking) inside "
        "async def stalls the event loop"
    )

    _BLOCKING = {
        "time.sleep",
        "open",
        "os.system",
        "socket.create_connection",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "urllib.request.urlopen",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("service", "api"):
            return
        for func in _function_defs(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            yield from self._check_async_body(ctx, func)

    def _check_async_body(
        self, ctx: FileContext, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        stack: List[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.Lambda)):
                continue  # sync helpers run off-loop by construction
            if isinstance(node, ast.AsyncFunctionDef):
                continue  # visited separately as its own async def
            if isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted in self._BLOCKING:
                    yield self.finding(
                        ctx,
                        node,
                        f"blocking call {dotted}() inside async def "
                        f"{func.name!r} stalls the event loop; await an "
                        f"async equivalent or move it off-loop",
                    )
                elif dotted is not None and dotted.split(".")[-1].endswith(
                    "_blocking"
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{dotted}() is the synchronous frame-I/O path; "
                        f"inside async def {func.name!r} use the awaitable "
                        f"read_frame/write_frame instead",
                    )
            stack.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# EXC001 — broad-except audit
# ----------------------------------------------------------------------
class BroadExceptAudit(Checker):
    """Every ``except Exception`` must say why.

    A broad except at the wrong layer swallows protocol violations and
    corrupt state; the legitimate ones (failure boundaries that convert
    anything into an error response) must carry an inline
    ``# lint: disable=EXC001(reason)`` so the judgement is recorded at
    the site.  Handlers that re-raise bare (``except BaseException:
    cleanup(); raise``) are exempt — they propagate, not swallow.
    """

    code = "EXC001"
    name = "broad-except"
    description = (
        "broad `except Exception` that neither re-raises nor carries an "
        "inline '# lint: disable=EXC001(reason)' annotation"
    )
    require_reason = True

    _BROAD = {"Exception", "BaseException"}

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise) and node.exc is None:
                return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._reraises(node):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare `except:` catches everything including "
                    "KeyboardInterrupt; catch concrete exceptions, or "
                    "annotate `# lint: disable=EXC001(reason)`",
                )
                continue
            elements = (
                node.type.elts
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            broad = [
                name
                for name in (_dotted_name(e) for e in elements)
                if name in self._BROAD
            ]
            if broad:
                yield self.finding(
                    ctx,
                    node,
                    f"broad `except {broad[0]}`: narrow it, or record "
                    f"the boundary judgement inline with "
                    f"`# lint: disable=EXC001(reason)`",
                )


# ----------------------------------------------------------------------
# CONC001 — asyncio shared-state audit
# ----------------------------------------------------------------------
class SharedStateAudit(Checker):
    """Shared mutable state is mutated only by its owning class.

    The server, coalescer, executor, and keystore all keep per-instance
    containers (windows, job tables, key caches) that concurrent tasks
    observe between awaits.  Two rules in ``service``/``api``/
    ``keystore`` modules:

    * a container attribute initialized in one class's ``__init__``
      (``self.x = {}`` / ``[]`` / ``set()`` / ``OrderedDict()`` ...)
      must not be mutated through another object's reference
      (``worker.jobs[id] = ...`` outside ``_Worker``) — route the
      mutation through a method of the owning class so the invariantic
      state has one writer;
    * a *synchronous* ``with`` on a lock-ish object must not span an
      ``await``: the lock blocks the whole event loop for the duration
      of the suspension.  (``async with lock:`` across an await is the
      point of an asyncio lock and stays legal.)
    """

    code = "CONC001"
    name = "shared-state"
    description = (
        "shared container mutated outside its owning class, or a "
        "sync `with lock:` held across an await"
    )

    _CONTAINER_CTORS = {
        "dict",
        "list",
        "set",
        "OrderedDict",
        "defaultdict",
        "deque",
        "Counter",
    }
    _MUTATORS = {
        "append",
        "extend",
        "insert",
        "add",
        "discard",
        "remove",
        "pop",
        "popitem",
        "popleft",
        "appendleft",
        "clear",
        "update",
        "setdefault",
        "move_to_end",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("service", "api", "keystore"):
            return
        owners = self._container_owners(ctx.tree)
        if owners:
            yield from self._check_foreign_mutations(ctx, owners)
        yield from self._check_sync_locks(ctx)

    # -- rule 1: one writer per shared container -----------------------
    def _container_owners(self, tree: ast.AST) -> Dict[str, Set[str]]:
        """Container attribute name -> class names initializing it."""
        owners: Dict[str, Set[str]] = {}
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            for node in ast.walk(cls):
                target: Optional[ast.AST] = None
                value: Optional[ast.AST] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    target, value = node.target, node.value
                if (
                    not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != "self"
                ):
                    continue
                if isinstance(value, (ast.Dict, ast.List, ast.Set)):
                    pass
                elif (
                    isinstance(value, ast.Call)
                    and (_dotted_name(value.func) or "").split(".")[-1]
                    in self._CONTAINER_CTORS
                ):
                    pass
                else:
                    continue
                owners.setdefault(target.attr, set()).add(cls.name)
        return owners

    def _check_foreign_mutations(
        self, ctx: FileContext, owners: Dict[str, Set[str]]
    ) -> Iterator[Finding]:
        classes = [
            node for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef)
        ]

        def enclosing_classes(node: ast.AST) -> Set[str]:
            return {
                cls.name
                for cls in classes
                if cls.lineno
                <= getattr(node, "lineno", 0)
                <= (cls.end_lineno or cls.lineno)
            }

        def foreign_target(node: ast.AST) -> Optional[ast.Attribute]:
            """``name.attr`` with a tracked attr on a non-self name."""
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id not in ("self", "cls")
                and node.attr in owners
            ):
                return node
            return None

        def leaf_targets(target: ast.AST) -> "Iterator[ast.AST]":
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    yield from leaf_targets(element)
            elif isinstance(target, ast.Starred):
                yield from leaf_targets(target.value)
            else:
                yield target

        for node in ast.walk(ctx.tree):
            attr: Optional[ast.Attribute] = None
            how = ""
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    node.targets
                    if isinstance(node, (ast.Assign, ast.Delete))
                    else [node.target]
                )
                for target in targets:
                    for leaf in leaf_targets(target):
                        if isinstance(leaf, ast.Subscript):
                            attr = foreign_target(leaf.value)
                            how = "item assignment on"
                        else:
                            attr = foreign_target(leaf)
                            how = "rebinding of"
                        if attr is not None:
                            break
                    if attr is not None:
                        break
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._MUTATORS
                ):
                    attr = foreign_target(node.func.value)
                    how = f".{node.func.attr}() on"
            if attr is None:
                continue
            owning = owners[attr.attr]
            if owning & enclosing_classes(node):
                continue  # the owning class mutating its own kind
            yield self.finding(
                ctx,
                node,
                f"{how} shared container "
                f"{attr.value.id}.{attr.attr} outside its owning class "  # type: ignore[union-attr]
                f"({', '.join(sorted(owning))}); route the mutation "
                f"through a method of the owner",
            )

    # -- rule 2: no sync lock across an await --------------------------
    def _check_sync_locks(self, ctx: FileContext) -> Iterator[Finding]:
        for func in _function_defs(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in ast.walk(func):
                if not isinstance(node, ast.With):
                    continue
                lockish = [
                    item
                    for item in node.items
                    if "lock" in (
                        (_dotted_name(item.context_expr) or "")
                        .split(".")[-1]
                        .lower()
                    )
                    or (
                        isinstance(item.context_expr, ast.Call)
                        and "lock"
                        in (
                            (_dotted_name(item.context_expr.func) or "")
                            .split(".")[-1]
                            .lower()
                        )
                    )
                ]
                if not lockish:
                    continue
                if any(
                    isinstance(sub, ast.Await)
                    for stmt in node.body
                    for sub in ast.walk(stmt)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "synchronous `with <lock>` spans an await: the "
                        "lock blocks the event loop across the "
                        "suspension; use `async with` on an asyncio.Lock",
                    )


# ----------------------------------------------------------------------
# RES001 — resource lifecycle
# ----------------------------------------------------------------------
class ResourceLifecycle(Checker):
    """Sockets, writers, and subprocess pipes close on every path.

    In ``service``/``api`` modules, a call that acquires an OS-backed
    resource (``asyncio.open_connection``, ``create_subprocess_*``,
    ``subprocess.Popen``, ``socket.socket``/``create_connection``,
    bare ``open``) whose result is bound to local names must either sit
    in a ``with``/``async with`` item, or the enclosing function must
    close/kill one of the bound names inside a ``try``'s ``finally`` or
    exception handler — the ``writer.close(); raise`` construction-
    failure guard the client and executor use.  An acquisition with no
    cleanup on the error path leaks the fd when construction fails.
    """

    code = "RES001"
    name = "resource-lifecycle"
    description = (
        "socket/subprocess/file acquired without a finally/except "
        "close on the bound name (or a with-statement)"
    )

    _ACQUIRERS = {
        "open_connection",
        "create_subprocess_exec",
        "create_subprocess_shell",
        "create_connection",
        "Popen",
        "socket",
        "open",
    }
    _CLOSERS = {
        "close",
        "close_nowait",
        "wait_closed",
        "kill",
        "terminate",
        "release",
        "shutdown",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("service", "api"):
            return
        for func in _function_defs(ctx.tree):
            yield from self._check_function(ctx, func)

    def _is_acquirer(self, call: ast.Call) -> bool:
        dotted = _dotted_name(call.func) or ""
        leaf = dotted.split(".")[-1]
        if leaf not in self._ACQUIRERS:
            return False
        # `socket` must be the module's constructor, not a local name.
        if leaf == "socket" and dotted != "socket.socket":
            return False
        return True

    def _check_function(
        self, ctx: FileContext, func: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> Iterator[Finding]:
        in_with: Set[int] = set()
        for node in ast.walk(func):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    for sub in ast.walk(item.context_expr):
                        in_with.add(id(sub))
        guarded_names = self._guarded_names(func)
        for node in ast.walk(func):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            # Unwrap `await ...` and `await asyncio.wait_for(...)`.
            if isinstance(value, ast.Await):
                value = value.value
            if (
                isinstance(value, ast.Call)
                and (_dotted_name(value.func) or "").split(".")[-1]
                == "wait_for"
                and value.args
            ):
                value = value.args[0]
            if not isinstance(value, ast.Call) or not self._is_acquirer(value):
                continue
            if id(value) in in_with:
                continue
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            names: Set[str] = set()
            only_names = True
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
                    elif isinstance(sub, ast.Attribute):
                        only_names = False
            if not names or not only_names:
                # Bound to an attribute: lifecycle owned by the object's
                # own close(); out of scope for this local-path rule.
                continue
            if names & guarded_names:
                continue
            dotted = _dotted_name(value.func) or "?"
            yield self.finding(
                ctx,
                node,
                f"{dotted}() result bound to "
                f"{', '.join(sorted(names))} is never closed in a "
                f"finally/except guard; a construction failure after "
                f"this line leaks the resource",
            )

    def _guarded_names(
        self, func: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> Set[str]:
        """Names that some try/finally or except handler closes."""
        guarded: Set[str] = set()
        for node in ast.walk(func):
            if not isinstance(node, ast.Try):
                continue
            cleanup_nodes: List[ast.AST] = list(node.finalbody)
            cleanup_nodes.extend(node.handlers)
            for cleanup in cleanup_nodes:
                for sub in ast.walk(cleanup):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in self._CLOSERS
                        and isinstance(sub.func.value, ast.Name)
                    ):
                        guarded.add(sub.func.value.id)
        return guarded


# ----------------------------------------------------------------------
# OBS001 — metric naming contract
# ----------------------------------------------------------------------
class MetricNamingContract(Checker):
    """Registered metric names follow the observability contract.

    Dashboards, the CI smoke job's required-family assertions, and the
    run-table comparison tooling all address metrics by name; a
    one-off name (wrong prefix, counter without ``_total``, histogram
    without a unit suffix) silently escapes every query written
    against the convention.  The registry enforces the contract at
    runtime (``strict_names``), but only on code paths that execute —
    this pass catches the string literal at rest, using the same
    :func:`repro.metrics.naming.metric_name_error` rules, so a
    misnamed metric fails the lint gate before it fails a scrape.
    """

    code = "OBS001"
    name = "metric-naming"
    description = (
        "metric name literal violates the repro_* naming contract "
        "(prefix, charset, or kind-specific unit suffix)"
    )

    _KINDS = {"counter", "gauge", "histogram"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        from repro.metrics.naming import metric_name_error

        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._KINDS
            ):
                continue
            # Registry calls carry (name, documentation, ...); a
            # single-argument call with a matching attribute name is
            # some other API (e.g. collections.Counter(iterable)).
            if len(node.args) < 2 or not (
                node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            error = metric_name_error(node.args[0].value, node.func.attr)
            if error:
                yield self.finding(ctx, node, error)


#: Every registered checker, in documentation order.  The project-wide
#: checkers (WIRE002/WIRE003/ERR002) ride in the same registry: the
#: framework routes them through the shared cross-module index.
ALL_CHECKERS: Tuple[Checker, ...] = (
    RandomnessHygiene(),
    ConstantTimeDiscipline(),
    WireStrictness(),
    PickleBan(),
    AsyncioHygiene(),
    BroadExceptAudit(),
    SharedStateAudit(),
    ResourceLifecycle(),
    MetricNamingContract(),
) + ALL_PROJECT_CHECKERS

CHECKERS_BY_CODE: Dict[str, Checker] = {c.code: c for c in ALL_CHECKERS}
