"""Static enforcement of the repo's own invariants (``rlwe-repro lint``).

The checkers and what they guard are documented in README's
"Developer tooling" section; run ``rlwe-repro lint --list-checkers``
for the live list.
"""

from repro.lint.checkers import ALL_CHECKERS, CHECKERS_BY_CODE
from repro.lint.framework import (
    Baseline,
    Checker,
    FileContext,
    Finding,
    LintReport,
    run_lint,
)

__all__ = [
    "ALL_CHECKERS",
    "CHECKERS_BY_CODE",
    "Baseline",
    "Checker",
    "FileContext",
    "Finding",
    "LintReport",
    "run_lint",
]
