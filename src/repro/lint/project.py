"""The project-wide lint pass: the wire contract is *closed*.

Per-file checkers (:mod:`repro.lint.checkers`) can prove local facts —
"this deserializer guards its unpacks" — but the invariants most likely
to rot span modules: every opcode in ``service/protocol.py`` needs a
dispatch branch in ``server.py``, a client method in ``client.py``, a
display name in ``OPCODE_NAMES``, and (for worker-IPC opcodes) a branch
in ``worker.py``; every status the service emits needs a typed branch
in ``api/errors.py``.  This module parses nothing itself — it receives
every :class:`~repro.lint.framework.FileContext` the single lint parse
produced, builds a :class:`ProjectIndex` of the protocol constant
tables and their cross-module references, and runs the three
cross-module checkers (WIRE002, WIRE003, ERR002) against it.

A *protocol root* is any directory layout containing a
``service/protocol.py`` below a ``repro`` package directory; the index
resolves its sibling modules (``server.py``, ``client.py``,
``worker.py``, ``api/errors.py``, ``core/serialize.py``) relative to
the same root, so the real tree and seeded fixture trees under
``tests/lint_fixtures/`` index independently in one run.  A checker
skips any requirement whose resolving module is absent from the linted
file set — it proves absence only where it can see.

The same index feeds :func:`build_contract`, the machine-readable
``wire-contract.json`` artifact (``rlwe-repro lint --contract``) that
maps every opcode to its name, dispatch, client surface, and worker
coverage — the ground-truth schema a future routing gateway validates
against, drift-gated in CI.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.framework import Checker, FileContext, Finding

#: Contract artifact schema version.
CONTRACT_VERSION = 1

#: Opcode constants with this prefix are worker-IPC-only: they must be
#: handled in ``worker.py`` and must *not* grow a public client method.
_WORKER_PREFIX = "OP_WORKER_"


def _const_int(node: ast.AST) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    return None


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class WireModule:
    """Struct-format facts of one wire module (WIRE003's subject)."""

    ctx: FileContext
    #: Module-level ``_NAME = struct.Struct("fmt")`` table.
    struct_formats: Dict[str, str] = field(default_factory=dict)
    #: Function name -> ordered formats packed / unpacked in its body.
    pack_seqs: Dict[str, List[str]] = field(default_factory=dict)
    unpack_seqs: Dict[str, List[str]] = field(default_factory=dict)
    #: Function name -> (def node line, has a length guard anywhere).
    functions: Dict[str, Tuple[int, bool]] = field(default_factory=dict)


@dataclass
class ProtocolRoot:
    """One ``service/protocol.py`` and its resolved sibling modules."""

    protocol: FileContext
    server: Optional[FileContext] = None
    client: Optional[FileContext] = None
    worker: Optional[FileContext] = None
    errors: Optional[FileContext] = None
    #: Every sibling under ``service/`` or ``keystore/`` (status
    #: emission surface for ERR002), protocol.py included.
    emitters: List[FileContext] = field(default_factory=list)

    # -- extracted from protocol.py ------------------------------------
    #: ``OP_X`` -> (value, definition line).
    opcodes: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: ``STATUS_X`` -> (value, definition line).
    statuses: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: ``OPCODE_NAMES`` entries: (opcode constant name or None,
    #: literal value or None, display name, key line).
    opcode_names: List[Tuple[Optional[str], Optional[int], Optional[str], int]] = field(
        default_factory=list
    )
    opcode_names_line: Optional[int] = None
    #: ``KEYED_TO_BASE``: keyed opcode constant -> base constant.
    keyed_to_base: Dict[str, str] = field(default_factory=dict)

    # -- extracted from the siblings -----------------------------------
    #: Opcode constants compared against in the server dispatch.
    server_dispatch: Set[str] = field(default_factory=set)
    #: True when the server dispatches ``opcode in KEYED_TO_BASE``.
    server_keyed_membership: bool = False
    #: Opcode constant -> client method names issuing it.
    client_methods: Dict[str, List[str]] = field(default_factory=dict)
    #: Opcode constants referenced anywhere in worker.py.
    worker_refs: Set[str] = field(default_factory=set)
    #: ``STATUS_X`` compared inside ``error_from_status`` -> line.
    classified_statuses: Dict[str, int] = field(default_factory=dict)
    #: ``STATUS_X`` referenced by any service/keystore module.
    emitted_statuses: Set[str] = field(default_factory=set)


@dataclass
class ProjectIndex:
    """Everything the cross-module checkers need, built in one sweep."""

    roots: List[ProtocolRoot] = field(default_factory=list)
    wire_modules: List[WireModule] = field(default_factory=list)


# ----------------------------------------------------------------------
# Index construction
# ----------------------------------------------------------------------
def _root_prefix(ctx: FileContext) -> str:
    """The path prefix above a context's ``repro``-relative parts."""
    suffix = "/".join(ctx.parts)
    path = ctx.path.replace("\\", "/")
    if path.endswith(suffix):
        return path[: len(path) - len(suffix)]
    return path


def _extract_protocol_tables(root: ProtocolRoot) -> None:
    tree = root.protocol.tree
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = _const_int(node.value)
        if value is not None:
            if target.id.startswith("OP_"):
                root.opcodes[target.id] = (value, node.lineno)
            elif (
                target.id.startswith("STATUS_")
                and target.id != "STATUS_NAMES"
            ):
                root.statuses[target.id] = (value, node.lineno)
            continue
        if target.id == "OPCODE_NAMES" and isinstance(node.value, ast.Dict):
            root.opcode_names_line = node.lineno
            for key, val in zip(node.value.keys, node.value.values):
                display = (
                    val.value
                    if isinstance(val, ast.Constant)
                    and isinstance(val.value, str)
                    else None
                )
                if isinstance(key, ast.Name):
                    root.opcode_names.append(
                        (key.id, None, display, key.lineno)
                    )
                elif key is not None and _const_int(key) is not None:
                    root.opcode_names.append(
                        (None, _const_int(key), display, key.lineno)
                    )
        elif target.id == "KEYED_TO_BASE" and isinstance(node.value, ast.Dict):
            for key, val in zip(node.value.keys, node.value.values):
                if isinstance(key, ast.Name) and isinstance(val, ast.Name):
                    root.keyed_to_base[key.id] = val.id


def _extract_server_dispatch(root: ProtocolRoot) -> None:
    assert root.server is not None
    for node in ast.walk(root.server.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            for operand in operands:
                if isinstance(operand, ast.Name) and operand.id.startswith(
                    "OP_"
                ):
                    root.server_dispatch.add(operand.id)
        if any(isinstance(op, ast.In) for op in node.ops):
            for operand in node.comparators:
                if _dotted(operand) in ("KEYED_TO_BASE", "BASE_TO_KEYED"):
                    root.server_keyed_membership = True


def _extract_client_methods(root: ProtocolRoot) -> None:
    assert root.client is not None
    for func in ast.walk(root.client.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func) or ""
            if dotted.split(".")[-1] != "request" or not node.args:
                continue
            first = node.args[0]
            if isinstance(first, ast.Name) and first.id.startswith("OP_"):
                root.client_methods.setdefault(first.id, []).append(
                    func.name
                )


def _extract_worker_refs(root: ProtocolRoot) -> None:
    assert root.worker is not None
    for node in ast.walk(root.worker.tree):
        if isinstance(node, ast.Name) and node.id.startswith("OP_"):
            root.worker_refs.add(node.id)
        elif isinstance(node, ast.Compare) and any(
            isinstance(op, ast.In) for op in node.ops
        ):
            for operand in node.comparators:
                if _dotted(operand) == "KEYED_TO_BASE":
                    root.worker_refs.update(root.keyed_to_base)


def _extract_error_branches(root: ProtocolRoot) -> None:
    assert root.errors is not None
    for func in ast.walk(root.errors.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if func.name != "error_from_status":
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, ast.Eq) for op in node.ops):
                continue
            for operand in [node.left, *node.comparators]:
                if (
                    isinstance(operand, ast.Name)
                    and operand.id.startswith("STATUS_")
                    and operand.id != "STATUS_NAMES"
                ):
                    root.classified_statuses.setdefault(
                        operand.id, operand.lineno
                    )


def _extract_emitted_statuses(root: ProtocolRoot) -> None:
    for ctx in root.emitters:
        if ctx is root.protocol:
            continue  # definitions and STATUS_NAMES, not emission
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Name)
                and node.id.startswith("STATUS_")
                and node.id != "STATUS_NAMES"
            ):
                root.emitted_statuses.add(node.id)


_WIRE_FILES = {"serialize.py", "protocol.py"}


def _extract_wire_module(ctx: FileContext) -> WireModule:
    module = WireModule(ctx)
    for node in ctx.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
            and _dotted(node.value.func) == "struct.Struct"
            and node.value.args
            and isinstance(node.value.args[0], ast.Constant)
            and isinstance(node.value.args[0].value, str)
        ):
            module.struct_formats[node.targets[0].id] = node.value.args[
                0
            ].value
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        # ``ast.walk`` is breadth-first; the mirror-order comparison
        # needs the *source* order of the pack/unpack calls.
        packs: List[Tuple[int, int, str]] = []
        unpacks: List[Tuple[int, int, str]] = []
        guarded = False
        for node in ast.walk(func):
            if isinstance(node, (ast.If, ast.While)):
                for sub in ast.walk(node.test):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id == "len"
                    ):
                        guarded = True
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func) or ""
            leaf = dotted.split(".")[-1]
            if "check_exact_length" in dotted or "parse_header" in dotted:
                guarded = True
            fmt: Optional[str] = None
            if dotted.startswith("struct.") and node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(
                    first.value, str
                ):
                    fmt = first.value
            elif "." in dotted:
                owner = dotted.rsplit(".", 1)[0]
                fmt = module.struct_formats.get(owner)
            if fmt is None:
                continue
            position = (node.lineno, node.col_offset)
            if leaf in ("pack", "pack_into"):
                packs.append((*position, fmt))
            elif leaf in ("unpack", "unpack_from"):
                unpacks.append((*position, fmt))
        module.functions[func.name] = (func.lineno, guarded)
        module.pack_seqs[func.name] = [fmt for _, _, fmt in sorted(packs)]
        module.unpack_seqs[func.name] = [
            fmt for _, _, fmt in sorted(unpacks)
        ]
    return module


def build_index(contexts: Sequence[FileContext]) -> ProjectIndex:
    """One sweep over the already-parsed tree; no file is re-read."""
    index = ProjectIndex()
    anchors = [
        ctx for ctx in contexts if ctx.parts == ("service", "protocol.py")
    ]
    for anchor in anchors:
        prefix = _root_prefix(anchor)
        root = ProtocolRoot(protocol=anchor)
        for ctx in contexts:
            if ctx is anchor or _root_prefix(ctx) != prefix:
                continue
            if ctx.parts == ("service", "server.py"):
                root.server = ctx
            elif ctx.parts == ("service", "client.py"):
                root.client = ctx
            elif ctx.parts == ("service", "worker.py"):
                root.worker = ctx
            elif ctx.parts == ("api", "errors.py"):
                root.errors = ctx
            if ctx.in_package("service", "keystore"):
                root.emitters.append(ctx)
        _extract_protocol_tables(root)
        if root.server is not None:
            _extract_server_dispatch(root)
        if root.client is not None:
            _extract_client_methods(root)
        if root.worker is not None:
            _extract_worker_refs(root)
        if root.errors is not None:
            _extract_error_branches(root)
        _extract_emitted_statuses(root)
        index.roots.append(root)
    for ctx in contexts:
        if ctx.filename in _WIRE_FILES and ctx.in_package(
            "core", "service"
        ):
            index.wire_modules.append(_extract_wire_module(ctx))
    return index


# ----------------------------------------------------------------------
# Project checkers
# ----------------------------------------------------------------------
class ProjectChecker(Checker):
    """Base of the cross-module checkers: fed the whole-tree index."""

    is_project = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    #: ``run_lint`` builds the shared index through any registered
    #: project checker, so the framework never imports this module.
    @staticmethod
    def build_index(contexts: Sequence[FileContext]) -> ProjectIndex:
        return build_index(contexts)

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        raise NotImplementedError

    def _at(
        self, ctx: FileContext, line: int, message: str
    ) -> Finding:
        return Finding(
            code=self.code, path=ctx.path, line=line, column=1, message=message
        )


class ProtocolSurface(ProjectChecker):
    """WIRE002 — the opcode surface is closed on every layer.

    Every public ``OP_*`` constant must appear in ``OPCODE_NAMES``, be
    dispatched by ``server.py`` (directly or through the
    ``KEYED_TO_BASE`` membership branch), and be issued by at least one
    client method; every ``OP_WORKER_*`` constant must appear in
    ``OPCODE_NAMES`` and be handled by ``worker.py`` — and must *not*
    have a public client method.  Phantoms (an ``OPCODE_NAMES`` entry,
    dispatch branch, or client call naming no defined constant) flag
    too, so a deleted opcode cannot leave dead surface behind.
    """

    code = "WIRE002"
    name = "protocol-surface"
    description = (
        "opcode missing from OPCODE_NAMES / server dispatch / client "
        "methods / worker loop (or a phantom entry naming no opcode)"
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for root in index.roots:
            yield from self._check_root(root)

    def _check_root(self, root: ProtocolRoot) -> Iterator[Finding]:
        ctx = root.protocol
        named = {
            entry[0] for entry in root.opcode_names if entry[0] is not None
        }
        named_values = {
            entry[1] for entry in root.opcode_names if entry[1] is not None
        }
        values = {name: value for name, (value, _) in root.opcodes.items()}
        for name, (value, line) in sorted(
            root.opcodes.items(), key=lambda kv: kv[1][0]
        ):
            if name not in named and value not in named_values:
                yield self._at(
                    ctx,
                    line,
                    f"opcode {name} (= {value}) has no OPCODE_NAMES entry; "
                    f"stats and error rendering would show a bare number",
                )
            worker_only = name.startswith(_WORKER_PREFIX)
            if worker_only:
                if (
                    root.worker is not None
                    and name not in root.worker_refs
                ):
                    yield self._at(
                        ctx,
                        line,
                        f"worker-IPC opcode {name} (= {value}) is never "
                        f"handled in worker.py",
                    )
                if root.client is not None and name in root.client_methods:
                    methods = ", ".join(sorted(set(root.client_methods[name])))
                    yield self._at(
                        ctx,
                        line,
                        f"worker-IPC opcode {name} must not be issued by a "
                        f"public client method (found: {methods})",
                    )
                continue
            if root.server is not None:
                dispatched = name in root.server_dispatch or (
                    root.server_keyed_membership
                    and name in root.keyed_to_base
                )
                if not dispatched:
                    yield self._at(
                        ctx,
                        line,
                        f"opcode {name} (= {value}) has no dispatch branch "
                        f"in server.py; requests would be rejected as "
                        f"bad_request",
                    )
            if (
                root.client is not None
                and name not in root.client_methods
            ):
                yield self._at(
                    ctx,
                    line,
                    f"opcode {name} (= {value}) has no client method "
                    f"issuing it in client.py",
                )
        # Phantoms: consuming tables naming no defined constant.
        for cname, cvalue, _display, line in root.opcode_names:
            if cname is not None and cname not in root.opcodes:
                yield self._at(
                    ctx,
                    line,
                    f"phantom OPCODE_NAMES entry {cname}: no such opcode "
                    f"constant is defined",
                )
            elif cvalue is not None and cvalue not in values.values():
                yield self._at(
                    ctx,
                    line,
                    f"phantom OPCODE_NAMES entry {cvalue}: no opcode "
                    f"constant has this value",
                )
        if root.server is not None:
            for name in sorted(root.server_dispatch - set(root.opcodes)):
                yield self._at(
                    root.server,
                    1,
                    f"server dispatches {name}, which protocol.py does "
                    f"not define",
                )
        if root.client is not None:
            for name in sorted(set(root.client_methods) - set(root.opcodes)):
                methods = ", ".join(sorted(set(root.client_methods[name])))
                yield self._at(
                    root.client,
                    1,
                    f"client method(s) {methods} issue {name}, which "
                    f"protocol.py does not define",
                )


class SerializerSymmetry(ProjectChecker):
    """WIRE003 — every serializer has a strict mirror image.

    In the wire modules (``core/serialize.py``, ``service/protocol.py``)
    the ``serialize_``/``deserialize_``, ``encode_``/``decode_`` and
    ``pack_``/``unpack_`` families must come in pairs, and a
    deserializer must consume the same struct formats its serializer
    packs, in the same order (the serializer may pack extra leading
    material — the frame length prefix — that a lower layer consumes).
    A deserializer that unpacks anything must also carry a length guard;
    the per-unpack domination rules stay with WIRE001.
    """

    code = "WIRE003"
    name = "serializer-symmetry"
    description = (
        "serialize/encode/pack function without a mirror deserializer, "
        "or a pair whose struct formats disagree in content or order"
    )

    _PAIRS = (
        ("serialize_", "deserialize_"),
        ("encode_", "decode_"),
        ("pack_", "unpack_"),
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for module in index.wire_modules:
            yield from self._check_module(module)

    def _check_module(self, module: WireModule) -> Iterator[Finding]:
        ctx = module.ctx
        names = set(module.functions)

        def mirror(name: str, fwd: str, back: str) -> str:
            stripped = name.lstrip("_")
            prefix = name[: len(name) - len(stripped)]
            return prefix + back + stripped[len(fwd) :]

        for name in sorted(names):
            stripped = name.lstrip("_")
            for fwd, back in self._PAIRS:
                if stripped.startswith(fwd):
                    partner = mirror(name, fwd, back)
                    if partner not in names:
                        line, _ = module.functions[name]
                        yield self._at(
                            ctx,
                            line,
                            f"{name} has no mirror {partner}; every wire "
                            f"encoding must round-trip",
                        )
                        continue
                    yield from self._check_pair(module, name, partner)
                elif stripped.startswith(back):
                    partner = mirror(name, back, fwd)
                    if partner not in names:
                        line, _ = module.functions[name]
                        yield self._at(
                            ctx,
                            line,
                            f"{name} has no mirror {partner}; a decoder "
                            f"for bytes nothing produces is dead wire "
                            f"surface",
                        )

    def _check_pair(
        self, module: WireModule, serializer: str, deserializer: str
    ) -> Iterator[Finding]:
        packs = module.pack_seqs[serializer]
        unpacks = module.unpack_seqs[deserializer]
        line, guarded = module.functions[deserializer]
        # Order-preserving containment: every unpacked format must
        # appear in the serializer's pack sequence, in the same order.
        cursor = 0
        for fmt in unpacks:
            while cursor < len(packs) and packs[cursor] != fmt:
                cursor += 1
            if cursor == len(packs):
                yield self._at(
                    module.ctx,
                    line,
                    f"{deserializer} unpacks {fmt!r} out of order with "
                    f"(or absent from) the formats {serializer} packs "
                    f"({packs!r})",
                )
                return
            cursor += 1
        if unpacks and not guarded:
            yield self._at(
                module.ctx,
                line,
                f"{deserializer} unpacks struct data without any length "
                f"guard; truncated input must raise ValueError",
            )


class StatusClassification(ProjectChecker):
    """ERR002 — every emitted status reaches a typed error branch.

    A ``STATUS_*`` the service layer can put on the wire must be
    classified by an ``== STATUS_X`` branch in
    ``api/errors.error_from_status`` (``STATUS_OK`` exempt — it is not
    an error), and every classifying branch must correspond to a status
    some service/keystore module actually emits: dead branches hide
    protocol drift exactly like missing ones.
    """

    code = "ERR002"
    name = "status-classification"
    description = (
        "service-emitted STATUS_* never classified by error_from_status, "
        "or a classifier branch for a status nothing emits"
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for root in index.roots:
            if root.errors is None or not root.statuses:
                continue
            yield from self._check_root(root)

    def _check_root(self, root: ProtocolRoot) -> Iterator[Finding]:
        emitted = root.emitted_statuses & set(root.statuses)
        for name in sorted(emitted - set(root.classified_statuses)):
            if name == "STATUS_OK":
                continue
            value, line = root.statuses[name]
            yield self._at(
                root.protocol,
                line,
                f"status {name} (= {value}) is emitted by the service "
                f"but error_from_status never classifies it; callers "
                f"would see an untyped RemoteError",
            )
        for name, line in sorted(root.classified_statuses.items()):
            if name in root.statuses and name not in emitted:
                yield self._at(
                    root.errors,
                    line,
                    f"error_from_status classifies {name}, but no "
                    f"service or keystore module emits it; dead branch",
                )


ALL_PROJECT_CHECKERS: Tuple[ProjectChecker, ...] = (
    ProtocolSurface(),
    SerializerSymmetry(),
    StatusClassification(),
)


# ----------------------------------------------------------------------
# The wire-contract artifact
# ----------------------------------------------------------------------
def build_contract(contexts: Sequence[FileContext]) -> Dict[str, object]:
    """The machine-readable protocol surface, from one parsed tree.

    Deterministic by construction: derived purely from the AST tables,
    ordered by opcode/status value, no file paths or line numbers — so
    the committed ``wire-contract.json`` only changes when the protocol
    surface itself does, which is exactly what the CI drift gate wants
    to detect.
    """
    index = build_index(contexts)
    roots = [
        root
        for root in index.roots
        if "tests/" not in root.protocol.path.replace("\\", "/")
    ]
    if not roots:
        raise ValueError(
            "no service/protocol.py found under the linted paths; "
            "cannot build a wire contract"
        )
    if len(roots) > 1:
        paths = ", ".join(sorted(r.protocol.path for r in roots))
        raise ValueError(
            f"multiple protocol roots found ({paths}); lint one tree "
            f"to build its wire contract"
        )
    root = roots[0]
    display = {}
    for cname, cvalue, name, _line in root.opcode_names:
        if cname is not None:
            display[cname] = name
    opcodes = []
    for const, (value, _line) in sorted(
        root.opcodes.items(), key=lambda kv: kv[1][0]
    ):
        worker_only = const.startswith(_WORKER_PREFIX)
        dispatched = const in root.server_dispatch or (
            root.server_keyed_membership and const in root.keyed_to_base
        )
        opcodes.append(
            {
                "opcode": value,
                "constant": const,
                "name": display.get(const),
                "keyed_base": root.keyed_to_base.get(const),
                "worker_only": worker_only,
                "server_dispatch": bool(dispatched and not worker_only),
                "client_methods": sorted(
                    set(root.client_methods.get(const, []))
                ),
                "worker_handled": const in root.worker_refs,
            }
        )
    statuses = []
    for const, (value, _line) in sorted(
        root.statuses.items(), key=lambda kv: kv[1][0]
    ):
        statuses.append(
            {
                "status": value,
                "constant": const,
                "emitted": const in root.emitted_statuses,
                "classified": const in root.classified_statuses,
            }
        )
    return {
        "version": CONTRACT_VERSION,
        "tool": "rlwe-repro lint --contract",
        "opcodes": opcodes,
        "statuses": statuses,
    }
