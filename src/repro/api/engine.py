"""Engine strings: the one knob that picks where a session computes.

The facade names execution engines with a single string so call sites
(and CLI flags, and config files) never encode transport-specific
wiring:

``"local"``
    Direct in-process calls through the batched scheme/KEM APIs.
``"pool"`` / ``"pool:N"``
    A :class:`~repro.service.executor.WorkerPoolExecutor` of N worker
    processes (default: the CPU count), without any socket layer.
``"tcp://host:port"``
    A remote ``rlwe-repro serve`` instance over the wire protocol.

:func:`parse_engine` turns a string into an :class:`EngineSpec`;
anything unparseable raises
:class:`~repro.api.errors.EngineUnavailableError` — the same error a
dead engine raises, because to the caller "no such engine" and "engine
gone" are the same condition: route elsewhere or fail.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.api.errors import EngineUnavailableError

__all__ = ["EngineSpec", "parse_engine"]

_REMOTE_PREFIX = "tcp://"


@dataclass(frozen=True)
class EngineSpec:
    """A parsed engine string."""

    kind: str  # "local" | "pool" | "remote"
    workers: int = 0
    host: str = ""
    port: int = 0

    @property
    def label(self) -> str:
        """The canonical engine string for this spec."""
        if self.kind == "local":
            return "local"
        if self.kind == "pool":
            return f"pool:{self.workers}"
        return f"{_REMOTE_PREFIX}{self.host}:{self.port}"


def parse_engine(engine: str) -> EngineSpec:
    """Parse ``local`` / ``pool[:N]`` / ``tcp://host:port``."""
    if not isinstance(engine, str) or not engine.strip():
        raise EngineUnavailableError(
            f"engine must be 'local', 'pool[:N]', or 'tcp://host:port', "
            f"got {engine!r}"
        )
    text = engine.strip()
    if text == "local":
        return EngineSpec("local")
    if text == "pool" or text.startswith("pool:"):
        if text == "pool":
            workers = os.cpu_count() or 1
        else:
            suffix = text[len("pool:") :]
            try:
                workers = int(suffix)
            except ValueError:
                raise EngineUnavailableError(
                    f"engine {engine!r}: worker count {suffix!r} "
                    f"is not an integer"
                ) from None
            if workers < 1:
                raise EngineUnavailableError(
                    f"engine {engine!r}: worker count must be >= 1"
                )
        return EngineSpec("pool", workers=workers)
    if text.startswith(_REMOTE_PREFIX):
        rest = text[len(_REMOTE_PREFIX) :]
        host, sep, port_text = rest.rpartition(":")
        if not sep or not host:
            raise EngineUnavailableError(
                f"engine {engine!r}: expected tcp://host:port"
            )
        try:
            port = int(port_text)
        except ValueError:
            raise EngineUnavailableError(
                f"engine {engine!r}: port {port_text!r} is not an integer"
            ) from None
        if not 0 < port < 1 << 16:
            raise EngineUnavailableError(
                f"engine {engine!r}: port {port} out of range"
            )
        return EngineSpec("remote", host=host, port=port)
    raise EngineUnavailableError(
        f"unknown engine {engine!r}: expected 'local', 'pool[:N]', "
        f"or 'tcp://host:port'"
    )
