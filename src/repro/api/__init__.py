"""The unified session facade over every execution engine.

One API — :class:`RlweSession` (sync) / :class:`AsyncRlweSession`
(async) — over three pluggable transports selected by an engine
string:

==================  ====================================================
``"local"``         direct in-process batched scheme/KEM calls
``"pool:N"``        a worker-process pool over the hardened IPC format
``"tcp://h:p"``     a remote ``rlwe-repro serve`` over the wire protocol
==================  ====================================================

All transports share one byte-level currency (the
:mod:`repro.core.serialize` wire format), one typed exception hierarchy
(:mod:`repro.api.errors`), and — for a fixed seed — bit-identical
results between ``local``, ``pool:1``, and a fresh same-seeded remote
server.  This package is the layer future transports (caching,
replication, new wire protocols) plug into.
"""

from repro.api.engine import EngineSpec, parse_engine
from repro.api.errors import (
    CapacityError,
    DecryptionError,
    EngineUnavailableError,
    KeyNotFoundError,
    RemoteError,
    RlweError,
    SessionClosedError,
    StaleKeyGenerationError,
    WireFormatError,
    error_from_service,
    error_from_status,
)
from repro.api.session import (
    AsyncKeyHandle,
    AsyncRlweSession,
    KeyHandle,
    RlweSession,
)
from repro.api.transports import (
    LocalTransport,
    PoolTransport,
    RemoteTransport,
    Transport,
)
from repro.keystore import KeyInfo

__all__ = [
    "AsyncRlweSession",
    "RlweSession",
    "AsyncKeyHandle",
    "KeyHandle",
    "KeyInfo",
    "EngineSpec",
    "parse_engine",
    "Transport",
    "LocalTransport",
    "PoolTransport",
    "RemoteTransport",
    "RlweError",
    "WireFormatError",
    "CapacityError",
    "DecryptionError",
    "EngineUnavailableError",
    "SessionClosedError",
    "KeyNotFoundError",
    "StaleKeyGenerationError",
    "RemoteError",
    "error_from_status",
    "error_from_service",
]
