"""The unified session facade: one API over local, pooled, remote.

Before this layer the repo had three divergent ways to run the same
operation — direct :class:`~repro.core.scheme.RlweEncryptionScheme` /
:class:`~repro.core.kem.RlweKem` calls, the batched backend APIs, and
the async service client — each with its own key types, error types,
and batching semantics.  :class:`AsyncRlweSession` (and its synchronous
twin :class:`RlweSession`) collapse them into one surface::

    from repro import RlweSession

    with RlweSession.open("local", params=P1, seed=7) as session:
        ct = session.encrypt(b"hello")            # wire bytes
        assert session.decrypt(ct, length=5) == b"hello"
        key, cap = session.encapsulate()
        assert session.decapsulate(cap) == key

Swap ``"local"`` for ``"pool:4"`` or ``"tcp://host:8470"`` and nothing
else changes: same methods, same byte-level currency, same typed
exceptions (:mod:`repro.api.errors`).

Currency
--------
Every ciphertext/encapsulation the facade accepts or returns is in the
self-describing :mod:`repro.core.serialize` wire format — the one
representation all three transports already share — so an object
produced on any engine round-trips through every other.  Keys surface
both ways: :attr:`public_key` (the rich object) and
:attr:`public_key_bytes` (the wire form).

Determinism
-----------
A session opened with ``seed=S`` on ``local`` or ``pool:1`` replays the
exact randomness streams a fresh ``rlwe-repro serve --seed S`` consumes
(keygen from stream ``S``, serving noise from the domain-separated
``serving_seed(S)`` stream), and all transports compute scalar calls as
windows of one and batch calls as one window — so for a fixed seed,
``local``, ``pool:1``, and a fresh same-seeded ``tcp://`` session
produce *bit-identical* serialized results, scalar and batched alike
(for remote batches, up to the server's ``--max-batch`` window).
Decrypt and decapsulate consume no randomness and are bit-identical on
every engine and seed history.

Sync and async
--------------
Both flavors share this module's async core.  The synchronous
:class:`RlweSession` owns a private event-loop thread and forwards each
call, so it works from plain scripts (and can drive the worker pool,
which needs a live loop) without the caller touching asyncio.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.api.engine import EngineSpec, parse_engine
from repro.api.errors import (
    CapacityError,
    EngineUnavailableError,
    SessionClosedError,
    WireFormatError,
)
from repro.api.transports import (
    LocalTransport,
    PoolTransport,
    RemoteTransport,
    Transport,
)
from repro.core import serialize
from repro.core.kem import SECRET_BYTES
from repro.core.params import P1, ParameterSet
from repro.core.scheme import PublicKey, RlweEncryptionScheme
from repro.keystore import KeyInfo, KeyStore
from repro.service.client import (
    RlweServiceClient,
    split_encapsulation,
    trim_plaintext,
)
from repro.service.executor import OpRunner, pool_executor_for, serving_seed
from repro.service.protocol import (
    GENERATION_CURRENT,
    OP_DECAPSULATE,
    OP_DECRYPT,
    OP_ENCAPSULATE,
    OP_ENCRYPT,
    validate_key_name,
)
from repro.trng.bitsource import PrngBitSource
from repro.trng.xorshift import Xorshift128

__all__ = [
    "AsyncKeyHandle",
    "AsyncRlweSession",
    "KeyHandle",
    "RlweSession",
]

#: Facade-default deadlines for remote engines (seconds).  The raw
#: :class:`~repro.service.client.RlweServiceClient` defaults to no
#: deadline; sessions default to finite ones so a wedged peer fails
#: typed instead of hanging forever.
DEFAULT_CONNECT_TIMEOUT = 10.0
DEFAULT_REQUEST_TIMEOUT = 120.0


def _seeded_scheme(
    params: ParameterSet, seed: int, backend
) -> RlweEncryptionScheme:
    return RlweEncryptionScheme(
        params, bits=PrngBitSource(Xorshift128(seed)), backend=backend
    )


class AsyncRlweSession:
    """One transport-agnostic crypto session; see the module docstring.

    Build instances with :meth:`open`, not the constructor.
    """

    def __init__(
        self,
        transport: Transport,
        params: ParameterSet,
        public_key: PublicKey,
        public_key_bytes: bytes,
        engine: str,
    ):
        self._transport = transport
        self._params = params
        self._public_key = public_key
        self._public_key_bytes = public_key_bytes
        self._engine = engine
        self._closed = False
        self._op_items: Dict[str, int] = {
            "encrypt": 0,
            "decrypt": 0,
            "encapsulate": 0,
            "decapsulate": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    async def open(
        cls,
        engine: str = "local",
        *,
        params: Optional[ParameterSet] = None,
        seed: int = 0,
        backend=None,
        hot_keys: int = 8,
        connect_timeout: Optional[float] = DEFAULT_CONNECT_TIMEOUT,
        request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
    ) -> "AsyncRlweSession":
        """Open a session on ``engine`` (``local``/``pool[:N]``/``tcp://``).

        ``params``/``seed``/``backend`` configure local and pooled
        engines (the session generates its keypair from stream ``seed``
        and serves from the domain-separated ``serving_seed(seed)``
        stream, exactly like ``rlwe-repro serve --seed``; named keys
        derive from the same keystore tree a ``--seed seed`` server
        uses, with ``hot_keys`` materialized keys resident).  A remote
        engine's parameters and keys belong to the server; ``params``
        then acts as an assertion — a mismatch fails the open —
        ``seed``/``backend``/``hot_keys`` are ignored, and
        ``connect_timeout``/``request_timeout`` bound the TCP
        handshake and each in-flight request (``None`` disables one).
        """
        spec = parse_engine(engine)
        if spec.kind == "remote":
            return await cls._open_remote(
                spec, params, connect_timeout, request_timeout
            )
        if params is None:
            params = P1
        keypair = _seeded_scheme(params, seed, backend).generate_keypair()
        serving = _seeded_scheme(params, serving_seed(seed), backend)
        public_bytes = serialize.serialize_public_key(keypair.public)
        keystore = KeyStore(
            params,
            seed=seed,
            backend=backend,
            hot_capacity=hot_keys,
            default_keypair=keypair,
        )
        if spec.kind == "local":
            transport: Transport = LocalTransport(
                OpRunner(serving, keypair, direct=False),
                keystore=keystore,
            )
        else:
            executor = pool_executor_for(
                serving,
                keypair,
                seed=serving_seed(seed),
                workers=spec.workers,
                direct=False,
            )
            transport = PoolTransport(
                executor, public_bytes, keystore=keystore
            )
        try:
            await transport.start()
        except BaseException:
            await transport.close()
            raise
        return cls(
            transport, params, keypair.public, public_bytes, spec.label
        )

    @classmethod
    async def _open_remote(
        cls,
        spec: EngineSpec,
        params: Optional[ParameterSet],
        connect_timeout: Optional[float],
        request_timeout: Optional[float],
    ) -> "AsyncRlweSession":
        try:
            client = await RlweServiceClient.connect(
                spec.host,
                spec.port,
                connect_timeout=connect_timeout,
                request_timeout=request_timeout,
            )
        except OSError as exc:
            raise EngineUnavailableError(
                f"cannot connect to {spec.label}: {exc}"
            ) from None
        transport = RemoteTransport(client)
        try:
            public_bytes = await transport.fetch_public_key()
            public = serialize.deserialize_public_key(public_bytes)
            if params is not None and public.params != params:
                raise EngineUnavailableError(
                    f"{spec.label} serves {public.params.name}, "
                    f"session requested {params.name}"
                )
        except BaseException:
            await transport.close()
            raise
        return cls(
            transport, public.params, public, public_bytes, spec.label
        )

    async def aclose(self) -> None:
        """Close the session; idempotent."""
        if self._closed:
            return
        self._closed = True
        await self._transport.close()

    async def __aenter__(self) -> "AsyncRlweSession":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def engine(self) -> str:
        """The canonical engine string this session runs on."""
        return self._engine

    @property
    def params(self) -> ParameterSet:
        return self._params

    @property
    def public_key(self) -> PublicKey:
        """The public key this session's operations are keyed to."""
        return self._public_key

    @property
    def public_key_bytes(self) -> bytes:
        """The same key in the self-describing wire format."""
        return self._public_key_bytes

    @property
    def closed(self) -> bool:
        return self._closed

    def keygen(self) -> PublicKey:
        """The session's key material (one keypair per session).

        Local and pooled engines generate it at :meth:`open` from the
        seed; remote engines fetch the server's.  Sessions are
        single-key by design — open a new session to rotate — so this
        is idempotent rather than a fresh draw.
        """
        self._check_open()
        return self._public_key

    async def stats(self) -> Dict:
        """Session op counters plus the engine's own counters."""
        self._check_open()
        return {
            "engine": self._engine,
            "ops": dict(self._op_items),
            "transport": await self._transport.stats(),
        }

    # ------------------------------------------------------------------
    # Operations — scalar and batched forms of each
    # ------------------------------------------------------------------
    async def encrypt(self, message: bytes) -> bytes:
        """Encrypt up to ``params.message_bytes``; wire-format ciphertext."""
        body = self._check_message(message)
        (ct,) = await self._run("encrypt", OP_ENCRYPT, [body])
        return ct

    async def encrypt_many(
        self, messages: Iterable[bytes]
    ) -> List[bytes]:
        """Encrypt a batch in one engine call; one ciphertext each."""
        bodies = [self._check_message(m) for m in messages]
        if not bodies:
            return []
        return await self._run("encrypt", OP_ENCRYPT, bodies)

    async def decrypt(
        self, ciphertext: bytes, length: Optional[int] = None
    ) -> bytes:
        """Decrypt a wire-format ciphertext; ``length`` trims padding."""
        (plain,) = await self._run(
            "decrypt", OP_DECRYPT, [bytes(ciphertext)]
        )
        return trim_plaintext(plain, length)

    async def decrypt_many(
        self,
        ciphertexts: Iterable[bytes],
        length: Optional[int] = None,
    ) -> List[bytes]:
        """Decrypt a batch of wire-format ciphertexts in one engine call."""
        bodies = [bytes(ct) for ct in ciphertexts]
        if not bodies:
            return []
        plains = await self._run("decrypt", OP_DECRYPT, bodies)
        return [trim_plaintext(plain, length) for plain in plains]

    async def encapsulate(self) -> Tuple[bytes, bytes]:
        """A fresh ``(session_key, wire_encapsulation)`` pair."""
        self._check_kem()
        (body,) = await self._run("encapsulate", OP_ENCAPSULATE, [b""])
        return split_encapsulation(body)

    async def encapsulate_many(
        self, count: int
    ) -> List[Tuple[bytes, bytes]]:
        """``count`` fresh key/encapsulation pairs in one engine call."""
        self._check_kem()
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return []
        bodies = await self._run(
            "encapsulate", OP_ENCAPSULATE, [b""] * count
        )
        return [split_encapsulation(body) for body in bodies]

    async def decapsulate(self, encapsulation: bytes) -> bytes:
        """The 32-byte session key; :class:`DecryptionError` on failure."""
        self._check_kem()
        (key,) = await self._run(
            "decapsulate", OP_DECAPSULATE, [bytes(encapsulation)]
        )
        return key

    async def decapsulate_many(
        self, encapsulations: Iterable[bytes]
    ) -> List[bytes]:
        """Decapsulate a batch; fails fast on the first bad item."""
        self._check_kem()
        bodies = [bytes(cap) for cap in encapsulations]
        if not bodies:
            return []
        return await self._run("decapsulate", OP_DECAPSULATE, bodies)

    # ------------------------------------------------------------------
    # Named keys (the multi-tenant keystore)
    # ------------------------------------------------------------------
    def _checked_key_name(self, name: str) -> str:
        # Validate before any transport round trip, so a bad name
        # raises the same typed error on every engine.
        try:
            return validate_key_name(name)
        except ValueError as exc:
            raise WireFormatError(str(exc)) from None

    async def create_key(self, name: str) -> KeyInfo:
        """Create named key ``name`` on this session's engine."""
        self._check_open()
        return KeyInfo.from_dict(
            await self._transport.key_admin(
                "create", self._checked_key_name(name)
            )
        )

    async def rotate_key(self, name: str) -> KeyInfo:
        """Advance ``name`` to its next generation.

        Handles still pinned to the old generation raise
        :class:`~repro.api.errors.StaleKeyGenerationError` until
        refreshed.
        """
        self._check_open()
        return KeyInfo.from_dict(
            await self._transport.key_admin(
                "rotate", self._checked_key_name(name)
            )
        )

    async def retire_key(self, name: str) -> KeyInfo:
        """Retire ``name``; later use raises ``KeyNotFoundError``."""
        self._check_open()
        return KeyInfo.from_dict(
            await self._transport.key_admin(
                "retire", self._checked_key_name(name)
            )
        )

    async def list_keys(self) -> List[KeyInfo]:
        """Every key the engine holds (the default key listed first)."""
        self._check_open()
        return [
            KeyInfo.from_dict(info)
            for info in await self._transport.list_keys()
        ]

    async def key(self, name: str) -> "AsyncKeyHandle":
        """A handle on named key ``name``, pinned to its current
        generation; create the key first with :meth:`create_key`."""
        self._check_open()
        self._checked_key_name(name)
        generation, public_bytes = await self._transport.fetch_key_public(
            name, GENERATION_CURRENT
        )
        return AsyncKeyHandle(self, name, generation, public_bytes)

    async def _run_keyed(
        self,
        op_name: str,
        opcode: int,
        key_name: str,
        generation: int,
        bodies: List[bytes],
    ) -> List[bytes]:
        self._check_open()
        self._op_items[op_name] += len(bodies)
        return await self._transport.run_keyed(
            opcode, key_name, generation, bodies
        )

    # ------------------------------------------------------------------
    async def _run(
        self, name: str, opcode: int, bodies: List[bytes]
    ) -> List[bytes]:
        self._check_open()
        self._op_items[name] += len(bodies)
        return await self._transport.run(opcode, bodies)

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError(
                f"session on {self._engine} is closed"
            )

    def _check_message(self, message: bytes) -> bytes:
        body = bytes(message)
        capacity = self._params.message_bytes
        if len(body) > capacity:
            # Same wording as the server's capacity check, so local and
            # remote callers see one error either way.
            raise CapacityError(
                f"message of {len(body)} bytes exceeds the "
                f"{capacity}-byte capacity of {self._params.name}"
            )
        return body

    def _check_kem(self) -> None:
        if self._params.message_bytes < SECRET_BYTES:
            raise CapacityError(
                f"{self._params.name} carries "
                f"{self._params.message_bytes} bytes per ciphertext; "
                f"the KEM needs {SECRET_BYTES}"
            )


# ----------------------------------------------------------------------
# Key handles
# ----------------------------------------------------------------------
class AsyncKeyHandle:
    """One named key at one pinned generation, with the session's ops.

    Obtained via :meth:`AsyncRlweSession.key`.  Every operation is
    pinned to the generation captured when the handle was created (or
    last :meth:`refresh`\\ ed): after the key rotates — by this handle's
    :meth:`rotate`, another session, or an operator on a shared server
    — operations raise
    :class:`~repro.api.errors.StaleKeyGenerationError` until the
    handle re-pins.  That makes rotation *observable* instead of
    silent: a tenant never keeps encrypting under a key it believes is
    older than it is.
    """

    def __init__(
        self,
        session: AsyncRlweSession,
        name: str,
        generation: int,
        public_key_bytes: bytes,
    ):
        self._session = session
        self._name = name
        self._generation = generation
        self._public_key_bytes = public_key_bytes

    def __repr__(self) -> str:
        return (
            f"<AsyncKeyHandle {self._name!r}@{self._generation} "
            f"on {self._session.engine}>"
        )

    @property
    def name(self) -> str:
        return self._name

    @property
    def generation(self) -> int:
        """The generation this handle's operations are pinned to."""
        return self._generation

    @property
    def public_key_bytes(self) -> bytes:
        """The pinned generation's public key (wire format)."""
        return self._public_key_bytes

    # ------------------------------------------------------------------
    async def refresh(self) -> "AsyncKeyHandle":
        """Re-pin to the key's current generation; returns ``self``."""
        generation, public_bytes = (
            await self._session._transport.fetch_key_public(
                self._name, GENERATION_CURRENT
            )
        )
        self._generation = generation
        self._public_key_bytes = public_bytes
        return self

    async def rotate(self) -> "AsyncKeyHandle":
        """Rotate the key and re-pin this handle to the new generation."""
        await self._session.rotate_key(self._name)
        return await self.refresh()

    async def info(self) -> KeyInfo:
        """The key's current metadata (not necessarily the pinned gen)."""
        for info in await self._session.list_keys():
            if info.name == self._name:
                return info
        # list/lookup race (e.g. the key was retired and the server
        # prunes listings): surface it as the typed lookup failure.
        from repro.api.errors import KeyNotFoundError

        raise KeyNotFoundError(f"key {self._name!r} does not exist")

    # ------------------------------------------------------------------
    # Operations — the session surface, addressed to this key
    # ------------------------------------------------------------------
    async def encrypt(self, message: bytes) -> bytes:
        body = self._session._check_message(message)
        (ct,) = await self._run(OP_ENCRYPT, "encrypt", [body])
        return ct

    async def encrypt_many(
        self, messages: Iterable[bytes]
    ) -> List[bytes]:
        bodies = [self._session._check_message(m) for m in messages]
        if not bodies:
            return []
        return await self._run(OP_ENCRYPT, "encrypt", bodies)

    async def decrypt(
        self, ciphertext: bytes, length: Optional[int] = None
    ) -> bytes:
        (plain,) = await self._run(
            OP_DECRYPT, "decrypt", [bytes(ciphertext)]
        )
        return trim_plaintext(plain, length)

    async def decrypt_many(
        self,
        ciphertexts: Iterable[bytes],
        length: Optional[int] = None,
    ) -> List[bytes]:
        bodies = [bytes(ct) for ct in ciphertexts]
        if not bodies:
            return []
        plains = await self._run(OP_DECRYPT, "decrypt", bodies)
        return [trim_plaintext(plain, length) for plain in plains]

    async def encapsulate(self) -> Tuple[bytes, bytes]:
        self._session._check_kem()
        (body,) = await self._run(OP_ENCAPSULATE, "encapsulate", [b""])
        return split_encapsulation(body)

    async def encapsulate_many(
        self, count: int
    ) -> List[Tuple[bytes, bytes]]:
        self._session._check_kem()
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return []
        bodies = await self._run(
            OP_ENCAPSULATE, "encapsulate", [b""] * count
        )
        return [split_encapsulation(body) for body in bodies]

    async def decapsulate(self, encapsulation: bytes) -> bytes:
        self._session._check_kem()
        (key,) = await self._run(
            OP_DECAPSULATE, "decapsulate", [bytes(encapsulation)]
        )
        return key

    async def decapsulate_many(
        self, encapsulations: Iterable[bytes]
    ) -> List[bytes]:
        self._session._check_kem()
        bodies = [bytes(cap) for cap in encapsulations]
        if not bodies:
            return []
        return await self._run(OP_DECAPSULATE, "decapsulate", bodies)

    async def _run(
        self, opcode: int, op_name: str, bodies: List[bytes]
    ) -> List[bytes]:
        return await self._session._run_keyed(
            op_name, opcode, self._name, self._generation, bodies
        )


# ----------------------------------------------------------------------
# Synchronous flavor
# ----------------------------------------------------------------------
class _LoopRunner:
    """A private event loop on a daemon thread; runs coroutines to completion."""

    def __init__(self):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._main, name="rlwe-session-loop", daemon=True
        )
        self._thread.start()

    def _main(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def run(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def close(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._loop.close()


class RlweSession:
    """Synchronous flavor of :class:`AsyncRlweSession` — same core.

    Owns a private event-loop thread, so it drives every engine
    (including the worker pool and remote connections, which need a
    live loop) from plain synchronous code::

        with RlweSession.open("pool:4", params=P1, seed=7) as session:
            cts = session.encrypt_many([b"a", b"b", b"c"])
    """

    def __init__(self, inner: AsyncRlweSession, runner: _LoopRunner):
        self._inner = inner
        self._runner: Optional[_LoopRunner] = runner

    @classmethod
    def open(
        cls,
        engine: str = "local",
        *,
        params: Optional[ParameterSet] = None,
        seed: int = 0,
        backend=None,
        hot_keys: int = 8,
        connect_timeout: Optional[float] = DEFAULT_CONNECT_TIMEOUT,
        request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
    ) -> "RlweSession":
        """Synchronous :meth:`AsyncRlweSession.open`; same semantics."""
        runner = _LoopRunner()
        try:
            inner = runner.run(
                AsyncRlweSession.open(
                    engine,
                    params=params,
                    seed=seed,
                    backend=backend,
                    hot_keys=hot_keys,
                    connect_timeout=connect_timeout,
                    request_timeout=request_timeout,
                )
            )
        except BaseException:
            runner.close()
            raise
        return cls(inner, runner)

    # ------------------------------------------------------------------
    def _call(self, coro):
        if self._runner is None:
            coro.close()  # never awaited; silence the warning
            raise SessionClosedError(
                f"session on {self._inner.engine} is closed"
            )
        return self._runner.run(coro)

    def close(self) -> None:
        """Close the session and its loop thread; idempotent."""
        if self._runner is None:
            return
        runner, self._runner = self._runner, None
        try:
            runner.run(self._inner.aclose())
        finally:
            runner.close()

    def __enter__(self) -> "RlweSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    @property
    def engine(self) -> str:
        return self._inner.engine

    @property
    def params(self) -> ParameterSet:
        return self._inner.params

    @property
    def public_key(self) -> PublicKey:
        return self._inner.public_key

    @property
    def public_key_bytes(self) -> bytes:
        return self._inner.public_key_bytes

    @property
    def closed(self) -> bool:
        return self._runner is None

    def keygen(self) -> PublicKey:
        if self._runner is None:
            raise SessionClosedError(
                f"session on {self._inner.engine} is closed"
            )
        return self._inner.keygen()

    def stats(self) -> Dict:
        return self._call(self._inner.stats())

    def encrypt(self, message: bytes) -> bytes:
        return self._call(self._inner.encrypt(message))

    def encrypt_many(self, messages: Iterable[bytes]) -> List[bytes]:
        return self._call(self._inner.encrypt_many(list(messages)))

    def decrypt(
        self, ciphertext: bytes, length: Optional[int] = None
    ) -> bytes:
        return self._call(self._inner.decrypt(ciphertext, length))

    def decrypt_many(
        self,
        ciphertexts: Iterable[bytes],
        length: Optional[int] = None,
    ) -> List[bytes]:
        return self._call(
            self._inner.decrypt_many(list(ciphertexts), length)
        )

    def encapsulate(self) -> Tuple[bytes, bytes]:
        return self._call(self._inner.encapsulate())

    def encapsulate_many(self, count: int) -> List[Tuple[bytes, bytes]]:
        return self._call(self._inner.encapsulate_many(count))

    def decapsulate(self, encapsulation: bytes) -> bytes:
        return self._call(self._inner.decapsulate(encapsulation))

    def decapsulate_many(
        self, encapsulations: Iterable[bytes]
    ) -> List[bytes]:
        return self._call(
            self._inner.decapsulate_many(list(encapsulations))
        )

    # ------------------------------------------------------------------
    # Named keys
    # ------------------------------------------------------------------
    def create_key(self, name: str) -> KeyInfo:
        return self._call(self._inner.create_key(name))

    def rotate_key(self, name: str) -> KeyInfo:
        return self._call(self._inner.rotate_key(name))

    def retire_key(self, name: str) -> KeyInfo:
        return self._call(self._inner.retire_key(name))

    def list_keys(self) -> List[KeyInfo]:
        return self._call(self._inner.list_keys())

    def key(self, name: str) -> "KeyHandle":
        """A synchronous handle on named key ``name``."""
        return KeyHandle(self, self._call(self._inner.key(name)))


class KeyHandle:
    """Synchronous twin of :class:`AsyncKeyHandle` — same pinned core."""

    def __init__(self, session: RlweSession, inner: AsyncKeyHandle):
        self._session = session
        self._inner = inner

    def __repr__(self) -> str:
        return (
            f"<KeyHandle {self.name!r}@{self.generation} "
            f"on {self._session.engine}>"
        )

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def generation(self) -> int:
        return self._inner.generation

    @property
    def public_key_bytes(self) -> bytes:
        return self._inner.public_key_bytes

    def refresh(self) -> "KeyHandle":
        self._session._call(self._inner.refresh())
        return self

    def rotate(self) -> "KeyHandle":
        self._session._call(self._inner.rotate())
        return self

    def info(self) -> KeyInfo:
        return self._session._call(self._inner.info())

    def encrypt(self, message: bytes) -> bytes:
        return self._session._call(self._inner.encrypt(message))

    def encrypt_many(self, messages: Iterable[bytes]) -> List[bytes]:
        return self._session._call(
            self._inner.encrypt_many(list(messages))
        )

    def decrypt(
        self, ciphertext: bytes, length: Optional[int] = None
    ) -> bytes:
        return self._session._call(
            self._inner.decrypt(ciphertext, length)
        )

    def decrypt_many(
        self,
        ciphertexts: Iterable[bytes],
        length: Optional[int] = None,
    ) -> List[bytes]:
        return self._session._call(
            self._inner.decrypt_many(list(ciphertexts), length)
        )

    def encapsulate(self) -> Tuple[bytes, bytes]:
        return self._session._call(self._inner.encapsulate())

    def encapsulate_many(self, count: int) -> List[Tuple[bytes, bytes]]:
        return self._session._call(self._inner.encapsulate_many(count))

    def decapsulate(self, encapsulation: bytes) -> bytes:
        return self._session._call(self._inner.decapsulate(encapsulation))

    def decapsulate_many(
        self, encapsulations: Iterable[bytes]
    ) -> List[bytes]:
        return self._session._call(
            self._inner.decapsulate_many(list(encapsulations))
        )
