"""The unified session facade: one API over local, pooled, remote.

Before this layer the repo had three divergent ways to run the same
operation — direct :class:`~repro.core.scheme.RlweEncryptionScheme` /
:class:`~repro.core.kem.RlweKem` calls, the batched backend APIs, and
the async service client — each with its own key types, error types,
and batching semantics.  :class:`AsyncRlweSession` (and its synchronous
twin :class:`RlweSession`) collapse them into one surface::

    from repro import RlweSession

    with RlweSession.open("local", params=P1, seed=7) as session:
        ct = session.encrypt(b"hello")            # wire bytes
        assert session.decrypt(ct, length=5) == b"hello"
        key, cap = session.encapsulate()
        assert session.decapsulate(cap) == key

Swap ``"local"`` for ``"pool:4"`` or ``"tcp://host:8470"`` and nothing
else changes: same methods, same byte-level currency, same typed
exceptions (:mod:`repro.api.errors`).

Currency
--------
Every ciphertext/encapsulation the facade accepts or returns is in the
self-describing :mod:`repro.core.serialize` wire format — the one
representation all three transports already share — so an object
produced on any engine round-trips through every other.  Keys surface
both ways: :attr:`public_key` (the rich object) and
:attr:`public_key_bytes` (the wire form).

Determinism
-----------
A session opened with ``seed=S`` on ``local`` or ``pool:1`` replays the
exact randomness streams a fresh ``rlwe-repro serve --seed S`` consumes
(keygen from stream ``S``, serving noise from the domain-separated
``serving_seed(S)`` stream), and all transports compute scalar calls as
windows of one and batch calls as one window — so for a fixed seed,
``local``, ``pool:1``, and a fresh same-seeded ``tcp://`` session
produce *bit-identical* serialized results, scalar and batched alike
(for remote batches, up to the server's ``--max-batch`` window).
Decrypt and decapsulate consume no randomness and are bit-identical on
every engine and seed history.

Sync and async
--------------
Both flavors share this module's async core.  The synchronous
:class:`RlweSession` owns a private event-loop thread and forwards each
call, so it works from plain scripts (and can drive the worker pool,
which needs a live loop) without the caller touching asyncio.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.api.engine import EngineSpec, parse_engine
from repro.api.errors import (
    CapacityError,
    EngineUnavailableError,
    SessionClosedError,
)
from repro.api.transports import (
    LocalTransport,
    PoolTransport,
    RemoteTransport,
    Transport,
)
from repro.core import serialize
from repro.core.kem import SECRET_BYTES
from repro.core.params import P1, ParameterSet
from repro.core.scheme import PublicKey, RlweEncryptionScheme
from repro.service.client import (
    RlweServiceClient,
    split_encapsulation,
    trim_plaintext,
)
from repro.service.executor import OpRunner, pool_executor_for, serving_seed
from repro.service.protocol import (
    OP_DECAPSULATE,
    OP_DECRYPT,
    OP_ENCAPSULATE,
    OP_ENCRYPT,
)
from repro.trng.bitsource import PrngBitSource
from repro.trng.xorshift import Xorshift128

__all__ = ["AsyncRlweSession", "RlweSession"]


def _seeded_scheme(
    params: ParameterSet, seed: int, backend
) -> RlweEncryptionScheme:
    return RlweEncryptionScheme(
        params, bits=PrngBitSource(Xorshift128(seed)), backend=backend
    )


class AsyncRlweSession:
    """One transport-agnostic crypto session; see the module docstring.

    Build instances with :meth:`open`, not the constructor.
    """

    def __init__(
        self,
        transport: Transport,
        params: ParameterSet,
        public_key: PublicKey,
        public_key_bytes: bytes,
        engine: str,
    ):
        self._transport = transport
        self._params = params
        self._public_key = public_key
        self._public_key_bytes = public_key_bytes
        self._engine = engine
        self._closed = False
        self._op_items: Dict[str, int] = {
            "encrypt": 0,
            "decrypt": 0,
            "encapsulate": 0,
            "decapsulate": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    async def open(
        cls,
        engine: str = "local",
        *,
        params: Optional[ParameterSet] = None,
        seed: int = 0,
        backend=None,
    ) -> "AsyncRlweSession":
        """Open a session on ``engine`` (``local``/``pool[:N]``/``tcp://``).

        ``params``/``seed``/``backend`` configure local and pooled
        engines (the session generates its keypair from stream ``seed``
        and serves from the domain-separated ``serving_seed(seed)``
        stream, exactly like ``rlwe-repro serve --seed``).  A remote
        engine's parameters and keys belong to the server; ``params``
        then acts as an assertion — a mismatch fails the open — and
        ``seed``/``backend`` are ignored.
        """
        spec = parse_engine(engine)
        if spec.kind == "remote":
            return await cls._open_remote(spec, params)
        if params is None:
            params = P1
        keypair = _seeded_scheme(params, seed, backend).generate_keypair()
        serving = _seeded_scheme(params, serving_seed(seed), backend)
        public_bytes = serialize.serialize_public_key(keypair.public)
        if spec.kind == "local":
            transport: Transport = LocalTransport(
                OpRunner(serving, keypair, direct=False)
            )
        else:
            executor = pool_executor_for(
                serving,
                keypair,
                seed=serving_seed(seed),
                workers=spec.workers,
                direct=False,
            )
            transport = PoolTransport(executor, public_bytes)
        try:
            await transport.start()
        except BaseException:
            await transport.close()
            raise
        return cls(
            transport, params, keypair.public, public_bytes, spec.label
        )

    @classmethod
    async def _open_remote(
        cls, spec: EngineSpec, params: Optional[ParameterSet]
    ) -> "AsyncRlweSession":
        try:
            client = await RlweServiceClient.connect(spec.host, spec.port)
        except OSError as exc:
            raise EngineUnavailableError(
                f"cannot connect to {spec.label}: {exc}"
            ) from None
        transport = RemoteTransport(client)
        try:
            public_bytes = await transport.fetch_public_key()
            public = serialize.deserialize_public_key(public_bytes)
            if params is not None and public.params != params:
                raise EngineUnavailableError(
                    f"{spec.label} serves {public.params.name}, "
                    f"session requested {params.name}"
                )
        except BaseException:
            await transport.close()
            raise
        return cls(
            transport, public.params, public, public_bytes, spec.label
        )

    async def aclose(self) -> None:
        """Close the session; idempotent."""
        if self._closed:
            return
        self._closed = True
        await self._transport.close()

    async def __aenter__(self) -> "AsyncRlweSession":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def engine(self) -> str:
        """The canonical engine string this session runs on."""
        return self._engine

    @property
    def params(self) -> ParameterSet:
        return self._params

    @property
    def public_key(self) -> PublicKey:
        """The public key this session's operations are keyed to."""
        return self._public_key

    @property
    def public_key_bytes(self) -> bytes:
        """The same key in the self-describing wire format."""
        return self._public_key_bytes

    @property
    def closed(self) -> bool:
        return self._closed

    def keygen(self) -> PublicKey:
        """The session's key material (one keypair per session).

        Local and pooled engines generate it at :meth:`open` from the
        seed; remote engines fetch the server's.  Sessions are
        single-key by design — open a new session to rotate — so this
        is idempotent rather than a fresh draw.
        """
        self._check_open()
        return self._public_key

    async def stats(self) -> Dict:
        """Session op counters plus the engine's own counters."""
        self._check_open()
        return {
            "engine": self._engine,
            "ops": dict(self._op_items),
            "transport": await self._transport.stats(),
        }

    # ------------------------------------------------------------------
    # Operations — scalar and batched forms of each
    # ------------------------------------------------------------------
    async def encrypt(self, message: bytes) -> bytes:
        """Encrypt up to ``params.message_bytes``; wire-format ciphertext."""
        body = self._check_message(message)
        (ct,) = await self._run("encrypt", OP_ENCRYPT, [body])
        return ct

    async def encrypt_many(
        self, messages: Iterable[bytes]
    ) -> List[bytes]:
        """Encrypt a batch in one engine call; one ciphertext each."""
        bodies = [self._check_message(m) for m in messages]
        if not bodies:
            return []
        return await self._run("encrypt", OP_ENCRYPT, bodies)

    async def decrypt(
        self, ciphertext: bytes, length: Optional[int] = None
    ) -> bytes:
        """Decrypt a wire-format ciphertext; ``length`` trims padding."""
        (plain,) = await self._run(
            "decrypt", OP_DECRYPT, [bytes(ciphertext)]
        )
        return trim_plaintext(plain, length)

    async def decrypt_many(
        self,
        ciphertexts: Iterable[bytes],
        length: Optional[int] = None,
    ) -> List[bytes]:
        """Decrypt a batch of wire-format ciphertexts in one engine call."""
        bodies = [bytes(ct) for ct in ciphertexts]
        if not bodies:
            return []
        plains = await self._run("decrypt", OP_DECRYPT, bodies)
        return [trim_plaintext(plain, length) for plain in plains]

    async def encapsulate(self) -> Tuple[bytes, bytes]:
        """A fresh ``(session_key, wire_encapsulation)`` pair."""
        self._check_kem()
        (body,) = await self._run("encapsulate", OP_ENCAPSULATE, [b""])
        return split_encapsulation(body)

    async def encapsulate_many(
        self, count: int
    ) -> List[Tuple[bytes, bytes]]:
        """``count`` fresh key/encapsulation pairs in one engine call."""
        self._check_kem()
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return []
        bodies = await self._run(
            "encapsulate", OP_ENCAPSULATE, [b""] * count
        )
        return [split_encapsulation(body) for body in bodies]

    async def decapsulate(self, encapsulation: bytes) -> bytes:
        """The 32-byte session key; :class:`DecryptionError` on failure."""
        self._check_kem()
        (key,) = await self._run(
            "decapsulate", OP_DECAPSULATE, [bytes(encapsulation)]
        )
        return key

    async def decapsulate_many(
        self, encapsulations: Iterable[bytes]
    ) -> List[bytes]:
        """Decapsulate a batch; fails fast on the first bad item."""
        self._check_kem()
        bodies = [bytes(cap) for cap in encapsulations]
        if not bodies:
            return []
        return await self._run("decapsulate", OP_DECAPSULATE, bodies)

    # ------------------------------------------------------------------
    async def _run(
        self, name: str, opcode: int, bodies: List[bytes]
    ) -> List[bytes]:
        self._check_open()
        self._op_items[name] += len(bodies)
        return await self._transport.run(opcode, bodies)

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError(
                f"session on {self._engine} is closed"
            )

    def _check_message(self, message: bytes) -> bytes:
        body = bytes(message)
        capacity = self._params.message_bytes
        if len(body) > capacity:
            # Same wording as the server's capacity check, so local and
            # remote callers see one error either way.
            raise CapacityError(
                f"message of {len(body)} bytes exceeds the "
                f"{capacity}-byte capacity of {self._params.name}"
            )
        return body

    def _check_kem(self) -> None:
        if self._params.message_bytes < SECRET_BYTES:
            raise CapacityError(
                f"{self._params.name} carries "
                f"{self._params.message_bytes} bytes per ciphertext; "
                f"the KEM needs {SECRET_BYTES}"
            )


# ----------------------------------------------------------------------
# Synchronous flavor
# ----------------------------------------------------------------------
class _LoopRunner:
    """A private event loop on a daemon thread; runs coroutines to completion."""

    def __init__(self):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._main, name="rlwe-session-loop", daemon=True
        )
        self._thread.start()

    def _main(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def run(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def close(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._loop.close()


class RlweSession:
    """Synchronous flavor of :class:`AsyncRlweSession` — same core.

    Owns a private event-loop thread, so it drives every engine
    (including the worker pool and remote connections, which need a
    live loop) from plain synchronous code::

        with RlweSession.open("pool:4", params=P1, seed=7) as session:
            cts = session.encrypt_many([b"a", b"b", b"c"])
    """

    def __init__(self, inner: AsyncRlweSession, runner: _LoopRunner):
        self._inner = inner
        self._runner: Optional[_LoopRunner] = runner

    @classmethod
    def open(
        cls,
        engine: str = "local",
        *,
        params: Optional[ParameterSet] = None,
        seed: int = 0,
        backend=None,
    ) -> "RlweSession":
        """Synchronous :meth:`AsyncRlweSession.open`; same semantics."""
        runner = _LoopRunner()
        try:
            inner = runner.run(
                AsyncRlweSession.open(
                    engine, params=params, seed=seed, backend=backend
                )
            )
        except BaseException:
            runner.close()
            raise
        return cls(inner, runner)

    # ------------------------------------------------------------------
    def _call(self, coro):
        if self._runner is None:
            coro.close()  # never awaited; silence the warning
            raise SessionClosedError(
                f"session on {self._inner.engine} is closed"
            )
        return self._runner.run(coro)

    def close(self) -> None:
        """Close the session and its loop thread; idempotent."""
        if self._runner is None:
            return
        runner, self._runner = self._runner, None
        try:
            runner.run(self._inner.aclose())
        finally:
            runner.close()

    def __enter__(self) -> "RlweSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    @property
    def engine(self) -> str:
        return self._inner.engine

    @property
    def params(self) -> ParameterSet:
        return self._inner.params

    @property
    def public_key(self) -> PublicKey:
        return self._inner.public_key

    @property
    def public_key_bytes(self) -> bytes:
        return self._inner.public_key_bytes

    @property
    def closed(self) -> bool:
        return self._runner is None

    def keygen(self) -> PublicKey:
        if self._runner is None:
            raise SessionClosedError(
                f"session on {self._inner.engine} is closed"
            )
        return self._inner.keygen()

    def stats(self) -> Dict:
        return self._call(self._inner.stats())

    def encrypt(self, message: bytes) -> bytes:
        return self._call(self._inner.encrypt(message))

    def encrypt_many(self, messages: Iterable[bytes]) -> List[bytes]:
        return self._call(self._inner.encrypt_many(list(messages)))

    def decrypt(
        self, ciphertext: bytes, length: Optional[int] = None
    ) -> bytes:
        return self._call(self._inner.decrypt(ciphertext, length))

    def decrypt_many(
        self,
        ciphertexts: Iterable[bytes],
        length: Optional[int] = None,
    ) -> List[bytes]:
        return self._call(
            self._inner.decrypt_many(list(ciphertexts), length)
        )

    def encapsulate(self) -> Tuple[bytes, bytes]:
        return self._call(self._inner.encapsulate())

    def encapsulate_many(self, count: int) -> List[Tuple[bytes, bytes]]:
        return self._call(self._inner.encapsulate_many(count))

    def decapsulate(self, encapsulation: bytes) -> bytes:
        return self._call(self._inner.decapsulate(encapsulation))

    def decapsulate_many(
        self, encapsulations: Iterable[bytes]
    ) -> List[bytes]:
        return self._call(
            self._inner.decapsulate_many(list(encapsulations))
        )
