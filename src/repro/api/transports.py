"""The three transports behind the session facade.

A *transport* executes opcode-addressed batches of request bodies —
exactly the body-in/body-out contract the service stack already speaks
— and normalizes every failure through
:func:`repro.api.errors.error_from_status`.  The session layer above is
transport-blind: it only ever sees wire-format byte strings and the
typed exception hierarchy.

* :class:`LocalTransport` — direct in-process calls through the shared
  :class:`~repro.service.executor.OpRunner` compute core (the same code
  an inline server runs, so local results are byte-identical to a
  same-seeded server's).
* :class:`PoolTransport` — a
  :class:`~repro.service.executor.WorkerPoolExecutor` without the
  socket layer: batches ship to worker processes over the hardened IPC
  wire format, the caller's thread/loop stays free.
* :class:`RemoteTransport` — a
  :class:`~repro.service.client.RlweServiceClient` speaking the public
  wire protocol to a running ``rlwe-repro serve``.  Batch items are
  pipelined on one connection in index order, so a fresh same-seeded
  server coalesces them into the same windows a local batch computes.

Every transport yields results in request order and fails fast on the
first non-OK item, mapped through the shared status classifier — which
is what makes exception-type parity across transports structural.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.errors import (
    EngineUnavailableError,
    error_from_service,
    error_from_status,
)
from repro.core import serialize
from repro.keystore import KeyStore
from repro.service.client import RlweServiceClient
from repro.service.executor import OpRunner, WorkerPoolExecutor
from repro.service.protocol import (
    BASE_TO_KEYED,
    GENERATION_CURRENT,
    STATUS_OK,
    ServiceError,
    encode_key_ref,
)

__all__ = [
    "Transport",
    "LocalTransport",
    "PoolTransport",
    "RemoteTransport",
]

#: Key-admin actions a transport must support, by wire name.
KEY_ADMIN_ACTIONS = ("create", "rotate", "retire")


class Transport:
    """Executes opcode-addressed body batches; see the module docstring.

    The keystore surface mirrors the service wire ops: ``run_keyed``
    executes one batch under one pinned ``(name, generation)``,
    ``key_admin`` drives the create/rotate/retire lifecycle, and both
    in-process transports own a real
    :class:`~repro.keystore.KeyStore` while the remote transport
    forwards to the server's.
    """

    kind = "abstract"

    async def start(self) -> None:
        """Bring the transport up (spawn workers, nothing for local)."""

    async def close(self) -> None:
        """Tear the transport down; safe to call twice."""

    async def run(self, opcode: int, bodies: Sequence[bytes]) -> List[bytes]:
        """Execute one batch; results in order, typed error on failure."""
        raise NotImplementedError

    async def run_keyed(
        self,
        opcode: int,
        name: str,
        generation: int,
        bodies: Sequence[bytes],
    ) -> List[bytes]:
        """Like :meth:`run`, under the named key's pinned generation."""
        raise NotImplementedError

    async def key_admin(self, action: str, name: str) -> Dict:
        """``create`` / ``rotate`` / ``retire`` one key; its info dict."""
        raise NotImplementedError

    async def list_keys(self) -> List[Dict]:
        """Every key slot's info dict (default first)."""
        raise NotImplementedError

    async def fetch_key_public(
        self, name: str, generation: int = GENERATION_CURRENT
    ) -> Tuple[int, bytes]:
        """``(resolved generation, serialized public key)`` for a key."""
        raise NotImplementedError

    async def fetch_public_key(self) -> bytes:
        """The serialized public key this transport's ops are keyed to."""
        raise NotImplementedError

    async def stats(self) -> Dict:
        """Engine-side counters."""
        raise NotImplementedError


class _StoreAdmin:
    """Shared key-admin/material logic for keystore-owning transports."""

    keystore: Optional[KeyStore]

    def _store(self) -> KeyStore:
        if self.keystore is None:
            raise EngineUnavailableError(
                f"the {self.kind} transport was built without a keystore"
            )
        return self.keystore

    async def key_admin(self, action: str, name: str) -> Dict:
        store = self._store()
        try:
            if action == "create":
                return store.create(name).to_dict()
            if action == "rotate":
                return store.rotate(name).to_dict()
            if action == "retire":
                return store.retire(name).to_dict()
        except ServiceError as exc:
            raise error_from_service(exc) from None
        raise ValueError(
            f"unknown key action {action!r}; expected one of "
            f"{KEY_ADMIN_ACTIONS}"
        )

    async def list_keys(self) -> List[Dict]:
        return [info.to_dict() for info in self._store().list()]

    async def fetch_key_public(
        self, name: str, generation: int = GENERATION_CURRENT
    ) -> Tuple[int, bytes]:
        try:
            material = self._store().materialize(name, generation)
        except ServiceError as exc:
            raise error_from_service(exc) from None
        return material.generation, material.public_bytes

    def _materialize(self, name: str, generation: int):
        try:
            return self._store().materialize(name, generation)
        except ServiceError as exc:
            raise error_from_service(exc) from None


def _raise_or_collect(
    results: "Sequence[tuple[int, bytes]]",
) -> List[bytes]:
    """OK bodies in order; first non-OK item raises its typed error."""
    out = []
    for status, body in results:
        if status != STATUS_OK:
            raise error_from_status(status, body.decode(errors="replace"))
        out.append(body)
    return out


class LocalTransport(_StoreAdmin, Transport):
    """Direct in-process execution through the shared OpRunner core."""

    kind = "local"

    def __init__(
        self, runner: OpRunner, keystore: Optional[KeyStore] = None
    ):
        self.runner = runner
        self.keystore = keystore
        self._batches = 0
        self._items = 0

    async def run(self, opcode: int, bodies: Sequence[bytes]) -> List[bytes]:
        self._batches += 1
        self._items += len(bodies)
        try:
            results = self.runner.run(opcode, bodies)
        except ServiceError as exc:  # KEM-capability guard
            raise error_from_service(exc) from None
        return _raise_or_collect(results)

    async def run_keyed(
        self,
        opcode: int,
        name: str,
        generation: int,
        bodies: Sequence[bytes],
    ) -> List[bytes]:
        material = self._materialize(name, generation)
        self._batches += 1
        self._items += len(bodies)
        try:
            results = self.runner.run(
                opcode, bodies, keypair=material.keypair
            )
        except ServiceError as exc:  # KEM-capability guard
            raise error_from_service(exc) from None
        return _raise_or_collect(results)

    async def fetch_public_key(self) -> bytes:
        return serialize.serialize_public_key(self.runner.keypair.public)

    async def stats(self) -> Dict:
        stats = {
            "kind": self.kind,
            "batches": self._batches,
            "items": self._items,
        }
        if self.keystore is not None:
            stats["keystore"] = self.keystore.stats()
        return stats


class PoolTransport(_StoreAdmin, Transport):
    """A worker-pool executor without the socket layer on top."""

    kind = "pool"

    def __init__(
        self,
        executor: WorkerPoolExecutor,
        public_bytes: bytes,
        keystore: Optional[KeyStore] = None,
    ):
        self.executor = executor
        self._public_bytes = public_bytes
        self.keystore = keystore
        self._closed = False

    async def start(self) -> None:
        try:
            await self.executor.start()
        except ServiceError as exc:
            raise error_from_service(exc) from None
        except OSError as exc:
            raise EngineUnavailableError(
                f"cannot spawn worker pool: {exc}"
            ) from None

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        await self.executor.close()

    async def _run_batch(self, opcode, bodies, key=None) -> List[bytes]:
        try:
            results = await self.executor.run_batch(
                opcode, bodies, key=key
            )
        except ServiceError as exc:
            raise error_from_service(exc) from None
        out = []
        for result in results:
            if isinstance(result, ServiceError):
                raise error_from_service(result) from None
            out.append(result)
        return out

    async def run(self, opcode: int, bodies: Sequence[bytes]) -> List[bytes]:
        return await self._run_batch(opcode, bodies)

    async def run_keyed(
        self,
        opcode: int,
        name: str,
        generation: int,
        bodies: Sequence[bytes],
    ) -> List[bytes]:
        material = self._materialize(name, generation)
        return await self._run_batch(opcode, bodies, key=material)

    async def fetch_public_key(self) -> bytes:
        return self._public_bytes

    async def stats(self) -> Dict:
        stats = self.executor.stats()
        if self.keystore is not None:
            stats["keystore"] = self.keystore.stats()
        return stats


class RemoteTransport(Transport):
    """A pipelining client on a running ``rlwe-repro serve`` instance."""

    kind = "remote"

    def __init__(self, client: RlweServiceClient):
        self.client = client
        self._closed = False

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        await self.client.close()

    async def run(self, opcode: int, bodies: Sequence[bytes]) -> List[bytes]:
        # Pipelined, not sequential: all requests go out back-to-back on
        # one connection so the server's coalescer can see them as one
        # window.  ``return_exceptions`` keeps failure order stable —
        # like the other transports, the *first* failing index raises.
        results = await asyncio.gather(
            *(self.client.request(opcode, body) for body in bodies),
            return_exceptions=True,
        )
        out = []
        for result in results:
            if isinstance(result, ServiceError):
                raise error_from_service(result) from None
            if isinstance(result, (ConnectionError, OSError)):
                raise EngineUnavailableError(
                    f"connection to the service lost: {result}"
                ) from None
            if isinstance(result, BaseException):
                raise result
            out.append(result)
        return out

    async def run_keyed(
        self,
        opcode: int,
        name: str,
        generation: int,
        bodies: Sequence[bytes],
    ) -> List[bytes]:
        ref = encode_key_ref(name, generation)
        return await self.run(
            BASE_TO_KEYED[opcode], [ref + body for body in bodies]
        )

    async def key_admin(self, action: str, name: str) -> Dict:
        actions = {
            "create": self.client.create_key,
            "rotate": self.client.rotate_key,
            "retire": self.client.retire_key,
        }
        try:
            method = actions[action]
        except KeyError:
            raise ValueError(
                f"unknown key action {action!r}; expected one of "
                f"{KEY_ADMIN_ACTIONS}"
            ) from None
        try:
            return await method(name)
        except ServiceError as exc:
            raise error_from_service(exc) from None
        except (ConnectionError, OSError) as exc:
            raise EngineUnavailableError(
                f"connection to the service lost: {exc}"
            ) from None

    async def list_keys(self) -> List[Dict]:
        try:
            return await self.client.list_keys()
        except ServiceError as exc:
            raise error_from_service(exc) from None
        except (ConnectionError, OSError) as exc:
            raise EngineUnavailableError(
                f"connection to the service lost: {exc}"
            ) from None

    async def fetch_key_public(
        self, name: str, generation: int = GENERATION_CURRENT
    ) -> Tuple[int, bytes]:
        try:
            return await self.client.key_public_key(name, generation)
        except ServiceError as exc:
            raise error_from_service(exc) from None
        except (ConnectionError, OSError) as exc:
            raise EngineUnavailableError(
                f"connection to the service lost: {exc}"
            ) from None

    async def fetch_public_key(self) -> bytes:
        try:
            return await self.client.get_public_key()
        except ServiceError as exc:
            raise error_from_service(exc) from None
        except (ConnectionError, OSError) as exc:
            raise EngineUnavailableError(
                f"connection to the service lost: {exc}"
            ) from None

    async def stats(self) -> Dict:
        try:
            return await self.client.stats()
        except ServiceError as exc:
            raise error_from_service(exc) from None
        except (ConnectionError, OSError) as exc:
            raise EngineUnavailableError(
                f"connection to the service lost: {exc}"
            ) from None
