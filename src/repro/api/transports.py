"""The three transports behind the session facade.

A *transport* executes opcode-addressed batches of request bodies —
exactly the body-in/body-out contract the service stack already speaks
— and normalizes every failure through
:func:`repro.api.errors.error_from_status`.  The session layer above is
transport-blind: it only ever sees wire-format byte strings and the
typed exception hierarchy.

* :class:`LocalTransport` — direct in-process calls through the shared
  :class:`~repro.service.executor.OpRunner` compute core (the same code
  an inline server runs, so local results are byte-identical to a
  same-seeded server's).
* :class:`PoolTransport` — a
  :class:`~repro.service.executor.WorkerPoolExecutor` without the
  socket layer: batches ship to worker processes over the hardened IPC
  wire format, the caller's thread/loop stays free.
* :class:`RemoteTransport` — a
  :class:`~repro.service.client.RlweServiceClient` speaking the public
  wire protocol to a running ``rlwe-repro serve``.  Batch items are
  pipelined on one connection in index order, so a fresh same-seeded
  server coalesces them into the same windows a local batch computes.

Every transport yields results in request order and fails fast on the
first non-OK item, mapped through the shared status classifier — which
is what makes exception-type parity across transports structural.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Sequence

from repro.api.errors import (
    EngineUnavailableError,
    error_from_service,
    error_from_status,
)
from repro.core import serialize
from repro.service.client import RlweServiceClient
from repro.service.executor import OpRunner, WorkerPoolExecutor
from repro.service.protocol import STATUS_OK, ServiceError

__all__ = [
    "Transport",
    "LocalTransport",
    "PoolTransport",
    "RemoteTransport",
]


class Transport:
    """Executes opcode-addressed body batches; see the module docstring."""

    kind = "abstract"

    async def start(self) -> None:
        """Bring the transport up (spawn workers, nothing for local)."""

    async def close(self) -> None:
        """Tear the transport down; safe to call twice."""

    async def run(self, opcode: int, bodies: Sequence[bytes]) -> List[bytes]:
        """Execute one batch; results in order, typed error on failure."""
        raise NotImplementedError

    async def fetch_public_key(self) -> bytes:
        """The serialized public key this transport's ops are keyed to."""
        raise NotImplementedError

    async def stats(self) -> Dict:
        """Engine-side counters."""
        raise NotImplementedError


def _raise_or_collect(
    results: "Sequence[tuple[int, bytes]]",
) -> List[bytes]:
    """OK bodies in order; first non-OK item raises its typed error."""
    out = []
    for status, body in results:
        if status != STATUS_OK:
            raise error_from_status(status, body.decode(errors="replace"))
        out.append(body)
    return out


class LocalTransport(Transport):
    """Direct in-process execution through the shared OpRunner core."""

    kind = "local"

    def __init__(self, runner: OpRunner):
        self.runner = runner
        self._batches = 0
        self._items = 0

    async def run(self, opcode: int, bodies: Sequence[bytes]) -> List[bytes]:
        self._batches += 1
        self._items += len(bodies)
        try:
            results = self.runner.run(opcode, bodies)
        except ServiceError as exc:  # KEM-capability guard
            raise error_from_service(exc) from None
        return _raise_or_collect(results)

    async def fetch_public_key(self) -> bytes:
        return serialize.serialize_public_key(self.runner.keypair.public)

    async def stats(self) -> Dict:
        return {
            "kind": self.kind,
            "batches": self._batches,
            "items": self._items,
        }


class PoolTransport(Transport):
    """A worker-pool executor without the socket layer on top."""

    kind = "pool"

    def __init__(self, executor: WorkerPoolExecutor, public_bytes: bytes):
        self.executor = executor
        self._public_bytes = public_bytes
        self._closed = False

    async def start(self) -> None:
        try:
            await self.executor.start()
        except ServiceError as exc:
            raise error_from_service(exc) from None
        except OSError as exc:
            raise EngineUnavailableError(
                f"cannot spawn worker pool: {exc}"
            ) from None

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        await self.executor.close()

    async def run(self, opcode: int, bodies: Sequence[bytes]) -> List[bytes]:
        try:
            results = await self.executor.run_batch(opcode, bodies)
        except ServiceError as exc:
            raise error_from_service(exc) from None
        out = []
        for result in results:
            if isinstance(result, ServiceError):
                raise error_from_service(result) from None
            out.append(result)
        return out

    async def fetch_public_key(self) -> bytes:
        return self._public_bytes

    async def stats(self) -> Dict:
        return self.executor.stats()


class RemoteTransport(Transport):
    """A pipelining client on a running ``rlwe-repro serve`` instance."""

    kind = "remote"

    def __init__(self, client: RlweServiceClient):
        self.client = client
        self._closed = False

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        await self.client.close()

    async def run(self, opcode: int, bodies: Sequence[bytes]) -> List[bytes]:
        # Pipelined, not sequential: all requests go out back-to-back on
        # one connection so the server's coalescer can see them as one
        # window.  ``return_exceptions`` keeps failure order stable —
        # like the other transports, the *first* failing index raises.
        results = await asyncio.gather(
            *(self.client.request(opcode, body) for body in bodies),
            return_exceptions=True,
        )
        out = []
        for result in results:
            if isinstance(result, ServiceError):
                raise error_from_service(result) from None
            if isinstance(result, (ConnectionError, OSError)):
                raise EngineUnavailableError(
                    f"connection to the service lost: {result}"
                ) from None
            if isinstance(result, BaseException):
                raise result
            out.append(result)
        return out

    async def fetch_public_key(self) -> bytes:
        try:
            return await self.client.get_public_key()
        except ServiceError as exc:
            raise error_from_service(exc) from None
        except (ConnectionError, OSError) as exc:
            raise EngineUnavailableError(
                f"connection to the service lost: {exc}"
            ) from None

    async def stats(self) -> Dict:
        try:
            return await self.client.stats()
        except ServiceError as exc:
            raise error_from_service(exc) from None
        except (ConnectionError, OSError) as exc:
            raise EngineUnavailableError(
                f"connection to the service lost: {exc}"
            ) from None
