"""Cross-transport equivalence checks (``rlwe-repro smoke``).

Opens a fresh ``local`` reference session per target engine and
verifies, against each engine in turn:

* **key identity** — the engine's public key equals the reference's
  (holds for any same-seeded engine, fresh or not: keygen draws from
  its own stream before any serving traffic);
* **randomized-op bit-identity** — scalar and batched ``encrypt`` /
  ``encapsulate`` produce byte-equal wire objects.  Requires the target
  to be replaying the same serving stream from position 0, so it runs
  for ``local`` and ``pool:1`` always, and for ``tcp://`` engines only
  with ``fresh_remote=True`` (a just-started server with the same
  ``--seed``; batched identity additionally needs the batch to fit one
  coalescer window, i.e. ``batch <= --max-batch`` and a generous
  ``--max-wait-ms``);
* **deterministic-op bit-identity** — ``decrypt`` / ``decapsulate`` of
  fixtures encrypted under the shared public key, scalar and batched.
  These consume no server randomness, so they must match on *every*
  engine and seed history, including multi-worker pools;
* **cross-transport round-trips** — ciphertexts made on one engine
  decrypt on the other;
* **exception parity** — a truncated ciphertext raises
  :class:`~repro.api.errors.WireFormatError`, a tampered encapsulation
  :class:`~repro.api.errors.DecryptionError`, and an oversized message
  :class:`~repro.api.errors.CapacityError`, on every engine.

This is the executable form of the facade's core invariant (the PR 3
``inline == pool(1)`` bit-identity lifted one layer up) and what the CI
``facade-smoke`` job runs against live servers.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Tuple

from repro.api.engine import parse_engine
from repro.api.errors import (
    CapacityError,
    DecryptionError,
    EngineUnavailableError,
    WireFormatError,
)
from repro.api.session import RlweSession, _seeded_scheme
from repro.core import serialize
from repro.core.kem import SECRET_BYTES, RlweKem
from repro.core.params import get_parameter_set

__all__ = ["run_smoke"]

#: Seed offset for the fixture scheme (the "other party" that encrypts
#: under the session key); any value off the session streams works.
_FIXTURE_SEED_DELTA = 77001


def _expects_identical_streams(engine: str, fresh_remote: bool) -> bool:
    spec = parse_engine(engine)
    if spec.kind == "local":
        return True
    if spec.kind == "pool":
        # Shards > 0 run their own derived streams, so only a one-shard
        # pool replays the reference stream.
        return spec.workers == 1
    return fresh_remote


def _open_target(engine, params, seed, connect_timeout) -> RlweSession:
    """Open the target session; retry remote engines while they boot.

    Connecting and fetching the public key consume no serving
    randomness, so retries never perturb the byte-identity checks.
    """
    deadline = time.monotonic() + connect_timeout
    while True:
        try:
            return RlweSession.open(engine, params=params, seed=seed)
        except EngineUnavailableError:
            if (
                parse_engine(engine).kind != "remote"
                or time.monotonic() >= deadline
            ):
                raise
            time.sleep(0.2)


def _expect_raises(exc_type, fn, *args) -> Optional[str]:
    try:
        fn(*args)
    except exc_type:
        return None
    except Exception as exc:  # lint: disable=EXC001(probe: any mismatch type is reported to the caller, never swallowed)
        return f"raised {type(exc).__name__} instead of {exc_type.__name__}"
    return f"raised nothing, expected {exc_type.__name__}"


def run_smoke(
    engines: Sequence[str],
    *,
    params_name: str = "P1",
    seed: int = 7,
    batch: int = 8,
    fresh_remote: bool = False,
    connect_timeout: float = 15.0,
    out: Callable[[str], None] = print,
) -> int:
    """Run the matrix; print one line per check; 0 iff everything passed."""
    params = get_parameter_set(params_name)
    has_kem = params.message_bytes >= SECRET_BYTES
    message = b"facade smoke"[: params.message_bytes]
    failures = 0

    for engine in engines:
        checks: List[Tuple[str, Optional[str]]] = []

        def check(name: str, ok: bool, detail: str = "") -> None:
            checks.append((name, None if ok else (detail or "mismatch")))

        with RlweSession.open(
            "local", params=params, seed=seed
        ) as reference, _open_target(
            engine, params, seed, connect_timeout
        ) as target:
            check(
                "public-key identity",
                target.public_key_bytes == reference.public_key_bytes,
            )

            # Randomized ops first: they must be the first serving-stream
            # consumption on both sides to compare at stream position 0.
            if _expects_identical_streams(engine, fresh_remote):
                check(
                    "scalar encrypt identity",
                    target.encrypt(message) == reference.encrypt(message),
                )
                batch_messages = [
                    bytes([i % 256]) * min(4, params.message_bytes)
                    for i in range(batch)
                ]
                check(
                    "batched encrypt identity",
                    target.encrypt_many(batch_messages)
                    == reference.encrypt_many(batch_messages),
                )
                if has_kem:
                    check(
                        "scalar encapsulate identity",
                        target.encapsulate() == reference.encapsulate(),
                    )
                    check(
                        "batched encapsulate identity",
                        target.encapsulate_many(2)
                        == reference.encapsulate_many(2),
                    )

            # Deterministic ops: fixtures from an independent stream,
            # encrypted under the shared session key — identical on
            # every engine regardless of freshness or shard count.
            fixture = _seeded_scheme(
                params, seed + _FIXTURE_SEED_DELTA, None
            )
            public = serialize.deserialize_public_key(
                reference.public_key_bytes
            )
            fixture_cts = [
                serialize.serialize_ciphertext(fixture.encrypt(public, m))
                for m in (message, b"x", b"y" * min(8, params.message_bytes))
            ]
            check(
                "scalar decrypt identity",
                target.decrypt(fixture_cts[0], length=len(message))
                == reference.decrypt(fixture_cts[0], length=len(message))
                == message,
            )
            check(
                "batched decrypt identity",
                target.decrypt_many(fixture_cts)
                == reference.decrypt_many(fixture_cts),
            )
            if has_kem:
                kem = RlweKem(fixture)
                encapsulation, secret = kem.encapsulate(public)
                cap_bytes = serialize.serialize_encapsulation(encapsulation)
                check(
                    "decapsulate identity",
                    target.decapsulate(cap_bytes)
                    == reference.decapsulate(cap_bytes)
                    == secret.key,
                )

            # Round-trips: wire objects cross transports freely.
            check(
                "reference->target roundtrip",
                target.decrypt(
                    reference.encrypt(message), length=len(message)
                )
                == message,
            )
            check(
                "target->reference roundtrip",
                reference.decrypt(
                    target.encrypt(message), length=len(message)
                )
                == message,
            )

            # Exception parity: same typed error on every transport.
            detail = _expect_raises(
                WireFormatError, target.decrypt, fixture_cts[0][:-3]
            )
            check(
                "truncated ciphertext -> WireFormatError",
                detail is None,
                detail or "",
            )
            detail = _expect_raises(
                CapacityError,
                target.encrypt,
                b"z" * (params.message_bytes + 1),
            )
            check(
                "oversized message -> CapacityError",
                detail is None,
                detail or "",
            )
            if has_kem:
                tampered = cap_bytes[:-1] + bytes([cap_bytes[-1] ^ 1])
                detail = _expect_raises(
                    DecryptionError, target.decapsulate, tampered
                )
                check(
                    "tampered encapsulation -> DecryptionError",
                    detail is None,
                    detail or "",
                )

        engine_failures = [name for name, err in checks if err is not None]
        for name, err in checks:
            status = "ok" if err is None else f"FAIL ({err})"
            out(f"  [{engine}] {name}: {status}")
        verdict = (
            "PASS"
            if not engine_failures
            else f"FAIL ({len(engine_failures)} check(s))"
        )
        out(f"{engine}: {verdict}")
        failures += len(engine_failures)

    out(
        f"smoke: {len(engines)} engine(s), "
        f"{'all checks passed' if failures == 0 else f'{failures} failure(s)'}"
    )
    return 0 if failures == 0 else 1
