"""The facade's typed exception hierarchy, and the protocol-boundary map.

Three PRs of growth left three error vocabularies: the core scheme and
serialize layers raise :exc:`ValueError`, the KEM raises
:exc:`~repro.core.kem.EncapsulationError`, and the service stack
collapses everything into :class:`~repro.service.protocol.ServiceError`
with a wire status plus a human-readable string.  A caller switching a
session from in-process to the socket service had to rewrite every
``except`` clause.

This module is the single vocabulary the :class:`~repro.api.RlweSession`
facade speaks, whatever transport is underneath:

``RlweError``
    Base class of everything the facade raises deliberately.
``WireFormatError``
    Malformed serialized bytes (bad magic, truncation, trailing
    garbage, out-of-range coefficients, parameter-set mismatch).
    Also a :exc:`ValueError`, so code written against the strict
    ``serialize`` contract keeps working unchanged.
``CapacityError``
    A structurally valid request the parameter set cannot carry — an
    oversized message, or the KEM on a parameter set whose blocks are
    smaller than a session key.  Also a :exc:`ValueError`.
``DecryptionError``
    Decapsulation key-confirmation failure: a ring-LWE decryption
    failure or a tampered encapsulation.  The remote service reports
    this as a ``decapsulation_failed`` status; the local path as a
    captured :exc:`~repro.core.kem.EncapsulationError`.  The facade
    raises this one type on every transport.
``EngineUnavailableError``
    The engine cannot serve: unknown engine string, connection refused
    or lost, dead worker pool, engine shut down.
``SessionClosedError``
    The session was used after ``close()``.
``KeyNotFoundError``
    A key-addressed request named a key that does not exist — never
    created, retired, or a keystore with no default key.  Also a
    :exc:`LookupError`, the builtin family for failed lookups.
``StaleKeyGenerationError``
    A key-addressed request pinned a generation its key has rotated
    past.  The recovery is client-side: re-pin (``handle.refresh()``
    on the facade) and retry under the current generation.
``RemoteError``
    An error the peer reported that fits no narrower class (the
    catch-all for ``internal_error`` responses).

The service wire protocol deliberately ships *uniform* error strings
(one status byte + text), so the typed mapping happens here at the
protocol boundary: :func:`error_from_status` classifies a wire status
plus its message into the hierarchy above.  All three transports route
their failures through it, which is what makes "the same bad input
raises the same exception type on every transport" a structural
property rather than a test-enforced coincidence.
"""

from __future__ import annotations

from typing import Optional

from repro.service.protocol import (
    STATUS_BAD_REQUEST,
    STATUS_DECAPSULATION_FAILED,
    STATUS_INTERNAL_ERROR,
    STATUS_KEY_NOT_FOUND,
    STATUS_STALE_KEY_GENERATION,
    ServiceError,
)

__all__ = [
    "RlweError",
    "WireFormatError",
    "CapacityError",
    "DecryptionError",
    "EngineUnavailableError",
    "SessionClosedError",
    "KeyNotFoundError",
    "StaleKeyGenerationError",
    "RemoteError",
    "error_from_status",
    "error_from_service",
]


class RlweError(Exception):
    """Base class of every error the RlweSession facade raises."""


class WireFormatError(RlweError, ValueError):
    """Malformed serialized bytes (or bytes for the wrong parameters)."""


class CapacityError(RlweError, ValueError):
    """A well-formed request the parameter set cannot carry."""


class DecryptionError(RlweError):
    """Key confirmation failed: decryption failure or tampering."""


class EngineUnavailableError(RlweError):
    """The execution engine cannot serve (bad spec, dead pool, no peer)."""


class SessionClosedError(RlweError):
    """The session was used after being closed."""


class KeyNotFoundError(RlweError, LookupError):
    """The named key does not exist (never created, or retired)."""


class StaleKeyGenerationError(RlweError):
    """The request pinned a generation its key has rotated past."""


class RemoteError(RlweError):
    """A peer-reported error with no narrower classification."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


#: ``bad_request`` strings that mean "the parameter set cannot carry
#: this", produced by the capacity checks in the server dispatch /
#: OpRunner / KEM guard.  Everything else under ``bad_request`` is a
#: parse failure from the strict serialize layer.
_CAPACITY_MARKERS = ("capacity of", "the KEM needs")

#: ``internal_error`` strings that mean "the engine is gone", produced
#: by the worker-pool supervisor and executor lifecycle guards.
_ENGINE_MARKERS = ("worker", "executor is", "no live workers")


def error_from_status(status: int, message: str) -> RlweError:
    """Classify one wire ``(status, message)`` pair into the hierarchy.

    This is the protocol-boundary mapping: the service keeps its
    uniform string-typed responses on the wire, and every transport
    funnels non-OK results through here so callers see one exception
    vocabulary regardless of where the batch computed.
    """
    if status == STATUS_DECAPSULATION_FAILED:
        return DecryptionError(message)
    if status == STATUS_KEY_NOT_FOUND:
        return KeyNotFoundError(message)
    if status == STATUS_STALE_KEY_GENERATION:
        return StaleKeyGenerationError(message)
    if status == STATUS_BAD_REQUEST:
        if any(marker in message for marker in _CAPACITY_MARKERS):
            return CapacityError(message)
        return WireFormatError(message)
    if status == STATUS_INTERNAL_ERROR and any(
        marker in message for marker in _ENGINE_MARKERS
    ):
        return EngineUnavailableError(message)
    return RemoteError(message, status)


def error_from_service(exc: ServiceError) -> RlweError:
    """The typed equivalent of one :class:`ServiceError`."""
    return error_from_status(exc.status, str(exc))
