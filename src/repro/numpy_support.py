"""Optional-NumPy shim used by the vectorized compute paths.

NumPy is an *optional* dependency of this package (the ``[numpy]``
extra): every vectorized code path — the :class:`repro.backend.NumpyBackend`,
the block sampler fast path, the bulk bit-chunk extraction — asks this
module for the ``numpy`` module and falls back to a pure-Python
implementation when it is absent.  The fallbacks are bit-identical, only
slower, so the package works (and its test-suite passes) on a bare
interpreter.

Setting ``REPRO_FORCE_NO_NUMPY=1`` in the environment makes
:func:`get_numpy` pretend NumPy is not installed; the CI matrix and the
fallback tests use this to exercise the pure-Python paths on machines
that do have NumPy.
"""

from __future__ import annotations

import os
from typing import Any, Optional

#: Environment variable that force-disables NumPy when set to a
#: non-empty value (used to test the fallback paths).
FORCE_NO_NUMPY_ENV = "REPRO_FORCE_NO_NUMPY"

_CACHE: Optional[Any] = None
_PROBED = False


def numpy_forced_off() -> bool:
    """True when the environment pins the pure-Python fallback."""
    return bool(os.environ.get(FORCE_NO_NUMPY_ENV))


def get_numpy() -> Optional[Any]:
    """Return the ``numpy`` module, or ``None`` when unavailable.

    The import is attempted once and cached; the ``REPRO_FORCE_NO_NUMPY``
    override is honoured on every call so tests can flip it at runtime.
    """
    global _CACHE, _PROBED
    if numpy_forced_off():
        return None
    if not _PROBED:
        try:
            import numpy  # noqa: PLC0415 - optional dependency probe

            _CACHE = numpy
        except ImportError:  # pragma: no cover - exercised via env override
            _CACHE = None
        _PROBED = True
    return _CACHE


def have_numpy() -> bool:
    """True when the vectorized paths can run."""
    return get_numpy() is not None


def require_numpy() -> Any:
    """Return ``numpy`` or raise a helpful ImportError."""
    np = get_numpy()
    if np is None:
        raise ImportError(
            "NumPy is required for this code path; install it with "
            "'pip install repro-rlwe[numpy]' (or unset "
            f"{FORCE_NO_NUMPY_ENV})"
        )
    return np
