"""Packed, two-fold-unrolled NTT — the functional twin of Alg. 4.

The paper's Alg. 4 ("Memory Efficient Negative-Wrapped Fwd NTT") reduces
memory traffic and loop overhead by 50% through two techniques:

* two coefficients stored per 32-bit word, so every load/store moves a
  butterfly *pair* of operands;
* a two-fold unrolled inner loop, halving index updates and bound checks.

Faithfulness note (also recorded in DESIGN.md): the listing printed in the
paper applies one twiddle ``w`` to the coefficient pair
``(A[j+k], A[j+k+1])``, but in the bit-reversed DIT layout established by
Alg. 3 those two butterflies belong to *consecutive* ``j`` values and need
the twiddles ``w_2m^(2j+1)`` and ``w_2m^(2j+3)`` — the printed index
arithmetic cannot be executed as-is.  This module implements the
optimization the surrounding prose describes, in a form that is tested
bit-identical to Alg. 3: each inner iteration loads two packed words
(four coefficients), performs the two butterflies ``(j, j+half)`` and
``(j+1, j+half+1)`` with their two LUT twiddles, and stores two packed
words.  The first stage (``m = 2``) is the special case the paper handles
in its trailing loop: both operands of a single butterfly share one word.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.params import ParameterSet
from repro.ntt.bitrev import bit_reverse_copy
from repro.ntt.packing import pack_pair, pack_polynomial, unpack_pair, unpack_polynomial
from repro.ntt.roots import ntt_tables


def ntt_forward_packed(a: Sequence[int], params: ParameterSet) -> List[int]:
    """Forward negacyclic NTT on packed words; returns coefficients."""
    _check(a, params)
    q = params.q
    tables = ntt_tables(params)
    words = pack_polynomial(bit_reverse_copy([c % q for c in a]))
    for stage_index, stage in enumerate(tables.forward_stages):
        twiddles = tables.forward_twiddles[stage_index]
        _run_stage(words, stage.m, twiddles, params)
    return unpack_polynomial(words)


def ntt_inverse_packed(a_hat: Sequence[int], params: ParameterSet) -> List[int]:
    """Inverse negacyclic NTT on packed words; returns coefficients."""
    _check(a_hat, params)
    q = params.q
    tables = ntt_tables(params)
    words = pack_polynomial(bit_reverse_copy([c % q for c in a_hat]))
    for stage_index, stage in enumerate(tables.inverse_stages):
        twiddles = tables.inverse_twiddles[stage_index]
        _run_stage(words, stage.m, twiddles, params)
    scale = tables.final_scale
    out: List[int] = []
    for word_index, word in enumerate(words):
        lo, hi = unpack_pair(word)
        out.append(lo * scale[2 * word_index] % q)
        out.append(hi * scale[2 * word_index + 1] % q)
    return out


def _check(a: Sequence[int], params: ParameterSet) -> None:
    if len(a) != params.n:
        raise ValueError(f"expected {params.n} coefficients, got {len(a)}")
    if params.n < 4:
        raise ValueError("packed NTT requires n >= 4")
    if params.coefficient_bits > 16:
        raise ValueError("packed layout requires coefficients <= 16 bits")


def _run_stage(
    words: List[int], m: int, twiddles: Sequence[int], params: ParameterSet
) -> None:
    """Run one butterfly stage of sub-transform size ``m`` in place."""
    q = params.q
    n = params.n
    half = m // 2
    if half == 1:
        # Stage m = 2: each packed word holds both operands of one
        # butterfly (the special-cased loop of Alg. 4).
        w = twiddles[0]
        for word_index in range(n // 2):
            u, t = unpack_pair(words[word_index])
            t = w * t % q
            words[word_index] = pack_pair((u + t) % q, (u - t) % q)
        return
    # Stages m >= 4: half is even, so the butterfly partners of two
    # consecutive j values live in two packed words.  One iteration:
    # 2 loads, 2 twiddle multiplies, 4 modular add/subs, 2 stores.
    for j in range(0, half, 2):
        w0 = twiddles[j]
        w1 = twiddles[j + 1]
        for k in range(0, n, m):
            lo_word = (j + k) // 2
            hi_word = (j + k + half) // 2
            u0, u1 = unpack_pair(words[lo_word])
            t0, t1 = unpack_pair(words[hi_word])
            t0 = w0 * t0 % q
            t1 = w1 * t1 % q
            words[lo_word] = pack_pair((u0 + t0) % q, (u1 + t1) % q)
            words[hi_word] = pack_pair((u0 - t0) % q, (u1 - t1) % q)
