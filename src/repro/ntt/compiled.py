"""Compiled negacyclic NTT kernel: tables, batch drivers, profiling.

:class:`CompiledKernel` is the Python face of the C library built by
:mod:`repro.ntt.kernel_c`.  It owns, per parameter set, the packed
constant tables the C side consumes:

* the bit-reversal permutation as swap pairs (the permutation is an
  involution, so a swap list reproduces the gather exactly);
* flattened per-stage twiddle vectors with their Shoup precomputations
  ``w' = floor(w * 2^32 / q)`` — the "precomputed twiddle factors in a
  lookup table" of Section III-C, in the form the lazy butterfly needs;
* the INTT scaling vector ``n^-1 * psi^-j`` (with precomputations),
  fused into the inverse transform's final stage.

Batched transforms optionally shard rows across a thread pool: the C
calls release the GIL, so plain Python threads scale across cores
without any IPC.  The profiled entry points return per-stage wall times
(bit-reversal, each butterfly stage, final reduction, inverse scale)
measured inside the C library with a monotonic clock — the same
kernel-time decomposition the multicore NTT studies plot.

The kernel supports any NTT-friendly parameter set with ``q < 2^30``
(the lazy representation keeps values below ``4q < 2^32``); callers
fall back to another backend beyond that.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.core.params import ParameterSet
from repro.ntt.bitrev import bit_reverse_table
from repro.ntt.kernel_c import default_threads, load_kernel
from repro.ntt.roots import ntt_tables
from repro.numpy_support import require_numpy

#: Largest modulus the lazy-reduction kernel supports (values < 4q must
#: fit the 32-bit Shoup operand range).
MAX_KERNEL_Q = 1 << 30

#: Operation codes shared with the C side.
OP_MUL, OP_ADD, OP_SUB = 0, 1, 2

#: Minimum rows per thread before a batch is sharded: below this the
#: submit/join overhead outweighs the parallel butterfly work.
MIN_ROWS_PER_THREAD = 8


def _shoup(values, q: int):
    """floor(w << 32 / q) for every table entry (exact, Python ints)."""
    return [(int(w) << 32) // q for w in values]


class _KernelTables:
    """Per-parameter-set constants packed for the C kernel."""

    def __init__(self, np, ffi, params: ParameterSet):
        tables = ntt_tables(params)
        n, q = params.n, params.q
        perm = bit_reverse_table(n)
        swap_i = [i for i in range(n) if i < perm[i]]
        swap_j = [perm[i] for i in swap_i]
        self.swap_i = np.asarray(swap_i, dtype=np.int32)
        self.swap_j = np.asarray(swap_j, dtype=np.int32)

        fwd = [w for stage in tables.forward_twiddles for w in stage]
        inv = [w for stage in tables.inverse_twiddles for w in stage]
        self.fwd_tw = np.asarray(fwd, dtype=np.uint64)
        self.fwd_twpr = np.asarray(_shoup(fwd, q), dtype=np.uint64)
        self.inv_tw = np.asarray(inv, dtype=np.uint64)
        self.inv_twpr = np.asarray(_shoup(inv, q), dtype=np.uint64)
        scale = list(tables.final_scale)
        self.scale = np.asarray(scale, dtype=np.uint64)
        self.scalepr = np.asarray(_shoup(scale, q), dtype=np.uint64)

        self.stages = tables.stage_count
        self.n = n
        self.q = q
        # Pre-cast pointers (the arrays above own the memory and live as
        # long as this table object does).
        cast = ffi.cast
        self.p_swap_i = cast("const int32_t *", ffi.from_buffer(self.swap_i))
        self.p_swap_j = cast("const int32_t *", ffi.from_buffer(self.swap_j))
        self.p_fwd_tw = cast("const uint64_t *", ffi.from_buffer(self.fwd_tw))
        self.p_fwd_twpr = cast(
            "const uint64_t *", ffi.from_buffer(self.fwd_twpr)
        )
        self.p_inv_tw = cast("const uint64_t *", ffi.from_buffer(self.inv_tw))
        self.p_inv_twpr = cast(
            "const uint64_t *", ffi.from_buffer(self.inv_twpr)
        )
        self.p_scale = cast("const uint64_t *", ffi.from_buffer(self.scale))
        self.p_scalepr = cast(
            "const uint64_t *", ffi.from_buffer(self.scalepr)
        )
        self.nswaps = len(swap_i)


#: Tables are pure functions of (n, q) — share them across every kernel
#: and backend instance in the process.
_TABLE_CACHE: Dict[Tuple[int, int], _KernelTables] = {}

#: One shared pool; sized lazily to the largest thread request seen.
_POOL: Optional[ThreadPoolExecutor] = None
_POOL_SIZE = 0


def _thread_pool(threads: int) -> ThreadPoolExecutor:
    global _POOL, _POOL_SIZE
    if _POOL is None or _POOL_SIZE < threads:
        if _POOL is not None:
            _POOL.shutdown(wait=False)
        _POOL = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="repro-ntt"
        )
        _POOL_SIZE = threads
    return _POOL


class CompiledKernel:
    """Batched NTT/pointwise/sampling driver over the C library."""

    def __init__(self, threads: Optional[int] = None):
        self.ffi, self.lib = load_kernel()
        self.np = require_numpy()
        self.threads = threads if threads and threads > 0 else default_threads()

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------
    def supports(self, params: ParameterSet) -> bool:
        return params.ntt_friendly and params.q < MAX_KERNEL_Q

    def tables(self, params: ParameterSet) -> _KernelTables:
        key = (params.n, params.q)
        entry = _TABLE_CACHE.get(key)
        if entry is None:
            entry = _KernelTables(self.np, self.ffi, params)
            _TABLE_CACHE[key] = entry
        return entry

    # ------------------------------------------------------------------
    # Transforms
    # ------------------------------------------------------------------
    def _data_ptr(self, array):
        return self.ffi.cast(
            "int64_t *", self.ffi.from_buffer(array, require_writable=True)
        )

    def _ntt_call(
        self,
        t: _KernelTables,
        ptr,
        nrows: int,
        inverse: bool,
        stage_seconds=None,
    ) -> None:
        if inverse:
            tw, twpr = t.p_inv_tw, t.p_inv_twpr
            scale, scalepr = t.p_scale, t.p_scalepr
        else:
            tw, twpr = t.p_fwd_tw, t.p_fwd_twpr
            scale = scalepr = self.ffi.NULL
        self.lib.repro_ntt_rows(
            ptr,
            nrows,
            t.n,
            t.stages,
            t.q,
            t.p_swap_i,
            t.p_swap_j,
            t.nswaps,
            tw,
            twpr,
            scale,
            scalepr,
            stage_seconds if stage_seconds is not None else self.ffi.NULL,
        )

    def ntt_batch(
        self, array, params: ParameterSet, inverse: bool, threads: int = 0
    ):
        """Transform a C-contiguous int64 (batch, n) array in place."""
        t = self.tables(params)
        nrows = array.shape[0]
        if nrows == 0:
            return array
        threads = threads or self.threads
        use = min(threads, max(1, nrows // MIN_ROWS_PER_THREAD))
        if use <= 1:
            self._ntt_call(t, self._data_ptr(array), nrows, inverse)
            return array
        base_ptr = self._data_ptr(array)
        chunk = (nrows + use - 1) // use
        pool = _thread_pool(use)
        futures = []
        for start in range(0, nrows, chunk):
            rows = min(chunk, nrows - start)
            ptr = base_ptr + start * t.n
            futures.append(
                pool.submit(self._ntt_call, t, ptr, rows, inverse)
            )
        for future in futures:
            future.result()
        return array

    def ntt_batch_profiled(
        self, array, params: ParameterSet, inverse: bool
    ):
        """Single-threaded transform returning per-stage seconds.

        Returns ``(array, stage_times)`` where ``stage_times`` maps
        ``"bitrev"``, ``"stage_m2"``..``"stage_m{n}"``, ``"reduce"``,
        and ``"scale"`` to seconds spent in that phase.
        """
        t = self.tables(params)
        nrows = array.shape[0]
        buf = self.ffi.new("double[]", t.stages + 3)
        if nrows:
            self._ntt_call(
                t, self._data_ptr(array), nrows, inverse, stage_seconds=buf
            )
        times = {"bitrev": buf[0]}
        for s in range(t.stages):
            times[f"stage_m{2 << s}"] = buf[1 + s]
        times["reduce"] = buf[t.stages + 1]
        times["scale"] = buf[t.stages + 2]
        return array, times

    # ------------------------------------------------------------------
    # Pointwise
    # ------------------------------------------------------------------
    def pointwise(self, op: int, a, b, params: ParameterSet):
        """Row-wise ``a (op) b`` with optional single-row broadcast."""
        np = self.np
        nrows, n = a.shape
        out = np.empty_like(a)
        b_stride = 0 if b.ndim == 1 or b.shape[0] == 1 else n
        self.lib.repro_pointwise(
            op,
            self.ffi.cast("const int64_t *", self.ffi.from_buffer(a)),
            self.ffi.cast("const int64_t *", self.ffi.from_buffer(b)),
            self._data_ptr(out),
            nrows,
            n,
            b_stride,
            params.q,
        )
        return out

    def pointwise_gather(
        self, op: int, a, keys, rows, params: ParameterSet
    ):
        """``a[i] (op) keys[rows[i]]`` — fused cross-key windows."""
        np = self.np
        nrows, n = a.shape
        out = np.empty_like(a)
        row_idx = np.ascontiguousarray(rows, dtype=np.int64)
        self.lib.repro_pointwise_gather(
            op,
            self.ffi.cast("const int64_t *", self.ffi.from_buffer(a)),
            self.ffi.cast("const int64_t *", self.ffi.from_buffer(keys)),
            self.ffi.cast(
                "const int64_t *", self.ffi.from_buffer(row_idx)
            ),
            nrows,
            n,
            self._data_ptr(out),
            params.q,
        )
        return out


def kernel_table_cache_info() -> Dict[str, int]:
    """Observability hook for tests/benches: cached table count."""
    return {"entries": len(_TABLE_CACHE)}
