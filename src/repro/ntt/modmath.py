"""Re-export of :mod:`repro.modmath` under its historical location.

The number-theory helpers live at the package top level so that
:mod:`repro.core.params` can use them without importing the ``ntt``
package (which itself depends on the parameter sets).
"""

from repro.modmath import (
    barrett_constant,
    bit_length_of_coefficients,
    find_generator,
    is_prime,
    is_primitive_root_of_unity,
    modinv,
    modpow,
    prime_factors,
    root_of_unity,
)

__all__ = [
    "barrett_constant",
    "bit_length_of_coefficients",
    "find_generator",
    "is_prime",
    "is_primitive_root_of_unity",
    "modinv",
    "modpow",
    "prime_factors",
    "root_of_unity",
]
