"""Reference NTT: Alg. 3 of the paper plus a naive oracle transform.

``ntt_forward`` follows Alg. 3 ("Negative-Wrapped Iterative Fwd NTT")
exactly: bit-reverse, then one butterfly stage per sub-transform size
``m = 2, 4, ..., n`` with the twiddle ``w`` initialised to ``sqrt(wm)``
and multiplied by ``wm`` once per ``j``-iteration.  (The printed listing's
outer loop reads ``for m = 2 to n/2 step 2m``; the companion Alg. 4 makes
explicit that a final stage with ``wm = wn`` runs afterwards, i.e. stages
run up to and including ``m = n``.  We run all log2(n) stages.)

``negacyclic_dft`` is the quadratic-time oracle

    A_i = sum_j a_j * psi^((2i+1) * j)  mod q

(the evaluation of ``a`` at the odd powers of ``psi``); the test-suite pins
``ntt_forward`` to it, and every other implementation in the package is
pinned to ``ntt_forward``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.params import ParameterSet
from repro.ntt.bitrev import bit_reverse_copy
from repro.ntt.roots import ntt_tables


def _check_input(a: Sequence[int], params: ParameterSet) -> None:
    if len(a) != params.n:
        raise ValueError(f"expected {params.n} coefficients, got {len(a)}")


def negacyclic_dft(a: Sequence[int], params: ParameterSet) -> List[int]:
    """Quadratic-time oracle: evaluate ``a`` at the odd powers of psi."""
    _check_input(a, params)
    n, q, psi = params.n, params.q, params.psi
    out = []
    for i in range(n):
        root = pow(psi, 2 * i + 1, q)
        acc = 0
        power = 1
        for j in range(n):
            acc = (acc + a[j] * power) % q
            power = power * root % q
        out.append(acc)
    return out


def negacyclic_idft(a_hat: Sequence[int], params: ParameterSet) -> List[int]:
    """Quadratic-time inverse of :func:`negacyclic_dft`."""
    _check_input(a_hat, params)
    n, q = params.n, params.q
    psi_inv = params.psi_inverse
    n_inv = params.n_inverse
    out = []
    for j in range(n):
        root = pow(params.omega_inverse, j, q)
        acc = 0
        power = 1
        for i in range(n):
            acc = (acc + a_hat[i] * power) % q
            power = power * root % q
        out.append(acc * n_inv % q * pow(psi_inv, j, q) % q)
    return out


def ntt_forward(a: Sequence[int], params: ParameterSet) -> List[int]:
    """Forward negative-wrapped NTT (Alg. 3), O(n log n)."""
    _check_input(a, params)
    q = params.q
    tables = ntt_tables(params)
    A = bit_reverse_copy([c % q for c in a])
    for stage in tables.forward_stages:
        m, wm = stage.m, stage.wm
        w = stage.w0
        half = m // 2
        for j in range(half):
            for k in range(0, params.n, m):
                lo = j + k
                hi = lo + half
                t = w * A[hi] % q
                u = A[lo]
                A[lo] = (u + t) % q
                A[hi] = (u - t) % q
            w = w * wm % q
    return A


def ntt_inverse(a_hat: Sequence[int], params: ParameterSet) -> List[int]:
    """Inverse negative-wrapped NTT: cyclic inverse stages + final scale.

    Runs the same butterfly network as :func:`ntt_forward` but with the
    cyclic inverse twiddles (``w0 = 1``, multiplier ``wm^-1``) and then
    multiplies coefficient ``j`` by ``n^-1 * psi^-j`` — the decryption-side
    structure the paper inherits from Roy et al. (CHES 2014).
    """
    _check_input(a_hat, params)
    q = params.q
    tables = ntt_tables(params)
    A = bit_reverse_copy([c % q for c in a_hat])
    for stage in tables.inverse_stages:
        m, wm = stage.m, stage.wm
        w = stage.w0
        half = m // 2
        for j in range(half):
            for k in range(0, params.n, m):
                lo = j + k
                hi = lo + half
                t = w * A[hi] % q
                u = A[lo]
                A[lo] = (u + t) % q
                A[hi] = (u - t) % q
            w = w * wm % q
    scale = tables.final_scale
    return [A[j] * scale[j] % q for j in range(params.n)]
