"""Build + load machinery for the compiled NTT/sampler kernel.

The compiled backend tier (``repro.backend.compiled_backend``) runs its
hot loops in a small C library mirroring the paper's hand-optimized
kernel structure: precomputed twiddle tables in Shoup/Montgomery form,
lazy (redundant-representation) reduction inside the butterfly stages,
and a final normalization pass.  This module owns the accelerator
plumbing only:

* the C source (one translation unit, no external dependencies beyond
  libc);
* an on-disk build cache — the library is compiled once per
  (source, python-tag) pair with the system C compiler and memoized
  under ``$REPRO_ACCEL_CACHE_DIR`` (default: a per-user cache dir);
* availability probing — :func:`accel_unavailable_reason` reports the
  *first* missing prerequisite (cffi, a C compiler, NumPy, or an opt-out
  via ``REPRO_NO_ACCEL=1``) as a human-readable string so benchmark
  artifacts can record *why* the tier was skipped, not just that it was.

Everything here is deliberately failure-isolated: any problem building
or loading the library surfaces as :class:`KernelUnavailable`, which the
backend registry translates into a clean fallback to the NumPy/pure
tiers.
"""

from __future__ import annotations

import os
import subprocess
import sys
import sysconfig
import tempfile
from typing import Optional, Tuple

#: Opt-out switch: any non-empty value disables the compiled tier.
NO_ACCEL_ENV = "REPRO_NO_ACCEL"
#: Override for the build-cache directory.
CACHE_DIR_ENV = "REPRO_ACCEL_CACHE_DIR"
#: Default worker-thread count for batched kernels (0/unset = cpu count).
THREADS_ENV = "REPRO_ACCEL_THREADS"


class KernelUnavailable(RuntimeError):
    """The compiled kernel cannot be built or loaded here."""


# ----------------------------------------------------------------------
# C source
# ----------------------------------------------------------------------
#
# Arithmetic conventions (q < 2^30, odd prime):
#
# * Coefficients travel as int64 (matching the NumPy backend's storage)
#   but are always non-negative < 2^32 inside the transforms.
# * Twiddles are paired with Shoup precomputations
#   ``w' = floor(w * 2^32 / q)`` so the butterfly multiply
#   ``t = w*x - floor(w'*x / 2^32) * q`` needs no division and lands in
#   [0, 2q) — the lazy/Barrett reduction of Section III-C.
# * Butterfly stages maintain values in [0, 4q) (Harvey's redundant
#   representation); one conditional-subtraction pass at the end returns
#   to the canonical [0, q), so results are bit-identical to the exact
#   mod-q reference kernels.

_CDEF = """
typedef struct {
    uint32_t x, y, z, w;
    uint64_t reg;
    int32_t avail;
    int64_t bits_consumed;
    int64_t words_fetched;
} repro_bits;

typedef struct {
    const uint8_t *lut1;
    const uint8_t *lut2;
    int32_t use_lut2;
    const int32_t *col_off;
    const int32_t *set_rows;
    int32_t columns;
    uint64_t q;
} repro_ky_tables;

void repro_ntt_rows(int64_t *data, int64_t nrows, int64_t n,
                    int64_t stages, uint64_t q,
                    const int32_t *swap_i, const int32_t *swap_j,
                    int64_t nswaps,
                    const uint64_t *tw, const uint64_t *twpr,
                    const uint64_t *scale, const uint64_t *scalepr,
                    double *stage_seconds);
void repro_pointwise(int32_t op, const int64_t *a, const int64_t *b,
                     int64_t *out, int64_t nrows, int64_t n,
                     int64_t b_stride, uint64_t q);
void repro_pointwise_gather(int32_t op, const int64_t *a,
                            const int64_t *keys, const int64_t *rows,
                            int64_t nrows, int64_t n, int64_t *out,
                            uint64_t q);
void repro_ky_sample_scalar(const repro_ky_tables *t, repro_bits *b,
                            int64_t *out, int64_t count,
                            int64_t *counters);
void repro_ky_sample_block(const repro_ky_tables *t, repro_bits *b,
                           int64_t *out, int64_t count,
                           int64_t *scratch_idx, int64_t *scratch_d,
                           int64_t *counters);
"""

_SOURCE = r"""
/* clock_gettime is POSIX, hidden under strict -std=c11. */
#define _POSIX_C_SOURCE 199309L
#include <stdint.h>
#include <time.h>

typedef struct {
    uint32_t x, y, z, w;
    uint64_t reg;
    int32_t avail;
    int64_t bits_consumed;
    int64_t words_fetched;
} repro_bits;

typedef struct {
    const uint8_t *lut1;
    const uint8_t *lut2;
    int32_t use_lut2;
    const int32_t *col_off;
    const int32_t *set_rows;
    int32_t columns;
    uint64_t q;
} repro_ky_tables;

/* ------------------------------------------------------------------ */
/* Modular helpers                                                     */
/* ------------------------------------------------------------------ */

/* Exact reduction matching Python's % (non-negative result). */
static inline uint64_t reduce_exact(int64_t v, uint64_t q) {
    int64_t r = v % (int64_t)q;
    return (uint64_t)(r < 0 ? r + (int64_t)q : r);
}

/* Shoup lazy multiply: wpr = floor(w << 32 / q), x < 2^32.
   Returns w*x mod q in the lazy range [0, 2q). */
static inline uint64_t mul_shoup_lazy(uint64_t x, uint64_t w,
                                      uint64_t wpr, uint64_t q) {
    uint64_t t = (wpr * x) >> 32;
    return w * x - t * q;
}

static inline double now_seconds(void) {
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (double)ts.tv_sec + 1e-9 * (double)ts.tv_nsec;
}

/* ------------------------------------------------------------------ */
/* Negacyclic NTT (forward and inverse share one butterfly network)    */
/* ------------------------------------------------------------------ */

static inline void ntt_permute_row(int64_t *a, const int32_t *swap_i,
                                   const int32_t *swap_j, int64_t nswaps) {
    for (int64_t s = 0; s < nswaps; s++) {
        int64_t u = a[swap_i[s]];
        a[swap_i[s]] = a[swap_j[s]];
        a[swap_j[s]] = u;
    }
}

/* One butterfly stage over one row; values stay in [0, 4q). */
static inline void ntt_stage_row(int64_t *a, int64_t n, int64_t m,
                                 const uint64_t *tw, const uint64_t *twpr,
                                 uint64_t q) {
    uint64_t twoq = 2 * q;
    int64_t half = m >> 1;
    for (int64_t block = 0; block < n; block += m) {
        for (int64_t j = 0; j < half; j++) {
            uint64_t x = (uint64_t)a[block + j];
            uint64_t y = (uint64_t)a[block + j + half];
            if (x >= twoq)
                x -= twoq;
            uint64_t t = mul_shoup_lazy(y, tw[j], twpr[j], q);
            a[block + j] = (int64_t)(x + t);
            a[block + j + half] = (int64_t)(x + twoq - t);
        }
    }
}

static inline void ntt_reduce_row(int64_t *a, int64_t n, uint64_t q) {
    uint64_t twoq = 2 * q;
    for (int64_t i = 0; i < n; i++) {
        uint64_t v = (uint64_t)a[i];
        if (v >= twoq)
            v -= twoq;
        if (v >= q)
            v -= q;
        a[i] = (int64_t)v;
    }
}

/* Pointwise multiply by the INTT scaling vector n^-1 * psi^-j, with a
   full reduction to [0, q) (input lazy values are < 4q < 2^32). */
static inline void ntt_scale_row(int64_t *a, int64_t n,
                                 const uint64_t *scale,
                                 const uint64_t *scalepr, uint64_t q) {
    for (int64_t i = 0; i < n; i++) {
        uint64_t v = mul_shoup_lazy((uint64_t)a[i], scale[i],
                                    scalepr[i], q);
        if (v >= q)
            v -= q;
        a[i] = (int64_t)v;
    }
}

/* The full transform over a (nrows, n) block.
 *
 * scale/scalepr == NULL -> forward transform (final conditional-
 * subtraction pass); non-NULL -> inverse transform (the scale pass
 * performs the final reduction itself).
 *
 * stage_seconds == NULL -> fast path: each row runs bitrev + all
 * stages + normalization back to back while it is hot in cache.
 * Non-NULL -> profiled path: phase-major over the whole block with a
 * monotonic-clock timestamp around every phase; layout
 * [0] bitrev, [1..stages] butterfly stages, [stages+1] final
 * reduction, [stages+2] inverse scale.  Both orders perform the exact
 * same arithmetic per row.
 */
void repro_ntt_rows(int64_t *data, int64_t nrows, int64_t n,
                    int64_t stages, uint64_t q,
                    const int32_t *swap_i, const int32_t *swap_j,
                    int64_t nswaps,
                    const uint64_t *tw, const uint64_t *twpr,
                    const uint64_t *scale, const uint64_t *scalepr,
                    double *stage_seconds) {
    if (stage_seconds == 0) {
        for (int64_t r = 0; r < nrows; r++) {
            int64_t *row = data + r * n;
            ntt_permute_row(row, swap_i, swap_j, nswaps);
            int64_t off = 0;
            for (int64_t s = 0; s < stages; s++) {
                int64_t m = (int64_t)2 << s;
                ntt_stage_row(row, n, m, tw + off, twpr + off, q);
                off += m >> 1;
            }
            if (scale == 0)
                ntt_reduce_row(row, n, q);
            else
                ntt_scale_row(row, n, scale, scalepr, q);
        }
        return;
    }
    double t0 = now_seconds();
    for (int64_t r = 0; r < nrows; r++)
        ntt_permute_row(data + r * n, swap_i, swap_j, nswaps);
    double t1 = now_seconds();
    stage_seconds[0] = t1 - t0;
    int64_t off = 0;
    for (int64_t s = 0; s < stages; s++) {
        int64_t m = (int64_t)2 << s;
        for (int64_t r = 0; r < nrows; r++)
            ntt_stage_row(data + r * n, n, m, tw + off, twpr + off, q);
        off += m >> 1;
        t0 = now_seconds();
        stage_seconds[1 + s] = t0 - t1;
        t1 = t0;
    }
    stage_seconds[stages + 1] = 0.0;
    stage_seconds[stages + 2] = 0.0;
    if (scale == 0) {
        for (int64_t r = 0; r < nrows; r++)
            ntt_reduce_row(data + r * n, n, q);
        stage_seconds[stages + 1] = now_seconds() - t1;
    } else {
        for (int64_t r = 0; r < nrows; r++)
            ntt_scale_row(data + r * n, n, scale, scalepr, q);
        stage_seconds[stages + 2] = now_seconds() - t1;
    }
}

/* ------------------------------------------------------------------ */
/* Pointwise arithmetic (exact mod-q, Python % semantics)              */
/* ------------------------------------------------------------------ */

/* op: 0 = mul, 1 = add, 2 = sub.  b_stride = 0 broadcasts one row. */
void repro_pointwise(int32_t op, const int64_t *a, const int64_t *b,
                     int64_t *out, int64_t nrows, int64_t n,
                     int64_t b_stride, uint64_t q) {
    for (int64_t r = 0; r < nrows; r++) {
        const int64_t *arow = a + r * n;
        const int64_t *brow = b + r * b_stride;
        int64_t *orow = out + r * n;
        for (int64_t i = 0; i < n; i++) {
            uint64_t x = reduce_exact(arow[i], q);
            uint64_t y = reduce_exact(brow[i], q);
            uint64_t v;
            if (op == 0) {
                v = (x * y) % q;
            } else if (op == 1) {
                v = x + y;
                if (v >= q)
                    v -= q;
            } else {
                v = x + q - y;
                if (v >= q)
                    v -= q;
            }
            orow[i] = (int64_t)v;
        }
    }
}

/* Per-row key-table gather variant: item r's operand is keys[rows[r]].
   Row indices are validated by the caller. */
void repro_pointwise_gather(int32_t op, const int64_t *a,
                            const int64_t *keys, const int64_t *rows,
                            int64_t nrows, int64_t n, int64_t *out,
                            uint64_t q) {
    for (int64_t r = 0; r < nrows; r++)
        repro_pointwise(op, a + r * n, keys + rows[r] * n, out + r * n,
                        1, n, 0, q);
}

/* ------------------------------------------------------------------ */
/* Knuth-Yao sampling (Alg. 2 + Alg. 1 fallback)                       */
/* ------------------------------------------------------------------ */

/* Bit supply mirroring PrngBitSource over Xorshift128 exactly:
   32-bit words shifted out LSB-first. */
static inline uint32_t xs_next(repro_bits *b) {
    uint32_t t = b->x ^ (b->x << 11);
    b->x = b->y;
    b->y = b->z;
    b->z = b->w;
    b->w = (b->w ^ (b->w >> 19)) ^ (t ^ (t >> 8));
    return b->w;
}

static inline uint32_t bit_next(repro_bits *b) {
    if (b->avail == 0) {
        b->reg = (uint64_t)xs_next(b);
        b->avail = 32;
        b->words_fetched++;
    }
    uint32_t v = (uint32_t)(b->reg & 1);
    b->reg >>= 1;
    b->avail--;
    b->bits_consumed++;
    return v;
}

static inline uint32_t bits_take(repro_bits *b, int count) {
    uint32_t v = 0;
    for (int i = 0; i < count; i++)
        v |= bit_next(b) << i;
    return v;
}

/* Alg. 1 bit-scanning walk from (start_col, d); *resolved = 0 when the
   walk falls off the matrix (Alg. 1 line 11: sample 0, no sign bit). */
static int64_t ky_scan(const repro_ky_tables *t, repro_bits *b,
                       int32_t start_col, int64_t d, int32_t *resolved) {
    for (int32_t col = start_col; col < t->columns; col++) {
        d = 2 * d + (int64_t)bit_next(b);
        int32_t cnt = t->col_off[col + 1] - t->col_off[col];
        if (d < (int64_t)cnt) {
            *resolved = 1;
            return (int64_t)t->set_rows[t->col_off[col] + d];
        }
        d -= (int64_t)cnt;
    }
    *resolved = 0;
    return 0;
}

static inline int64_t ky_signed(const repro_ky_tables *t, repro_bits *b,
                                int64_t row) {
    if (bit_next(b))
        return (int64_t)((t->q - (uint64_t)row) % t->q);
    return row;
}

/* Sequential per-sample order: LUT1, (LUT2), (scan), sign — the bit
   consumption of count successive LutKnuthYaoSampler.sample() calls.
   counters: [0] lut1_hits, [1] lut2_hits, [2] scan_fallbacks. */
void repro_ky_sample_scalar(const repro_ky_tables *t, repro_bits *b,
                            int64_t *out, int64_t count,
                            int64_t *counters) {
    for (int64_t i = 0; i < count; i++) {
        uint32_t e = t->lut1[bits_take(b, 8)];
        int64_t row;
        if (!(e & 0x80u)) {
            counters[0]++;
            out[i] = ky_signed(t, b, (int64_t)(e & 0x7Fu));
            continue;
        }
        int64_t d = (int64_t)(e & 0x7Fu);
        int32_t start_col = 8;
        if (t->use_lut2) {
            uint32_t e2 = t->lut2[d * 32 + bits_take(b, 5)];
            if (!(e2 & 0x80u)) {
                counters[1]++;
                out[i] = ky_signed(t, b, (int64_t)(e2 & 0x7Fu));
                continue;
            }
            d = (int64_t)(e2 & 0x7Fu);
            start_col = 13;
        }
        counters[2]++;
        int32_t resolved;
        row = ky_scan(t, b, start_col, d, &resolved);
        out[i] = resolved ? ky_signed(t, b, row) : 0;
    }
}

/* Phased block order matching LutKnuthYaoSampler.sample_block: all
   LUT1 indices, then LUT2 indices for the failures, then scan walks,
   then one sign bit per resolved sample in sample order.  scratch_idx
   and scratch_d must hold count entries each. */
void repro_ky_sample_block(const repro_ky_tables *t, repro_bits *b,
                           int64_t *out, int64_t count,
                           int64_t *scratch_idx, int64_t *scratch_d,
                           int64_t *counters) {
    int64_t npend = 0;
    for (int64_t i = 0; i < count; i++) {
        uint32_t e = t->lut1[bits_take(b, 8)];
        if (e & 0x80u) {
            scratch_idx[npend] = i;
            scratch_d[npend++] = (int64_t)(e & 0x7Fu);
            out[i] = 0;
        } else {
            out[i] = (int64_t)e;
        }
    }
    counters[0] += count - npend;
    int32_t start_col = 8;
    if (t->use_lut2 && npend) {
        int64_t still = 0;
        for (int64_t p = 0; p < npend; p++) {
            uint32_t e2 = t->lut2[scratch_d[p] * 32 + bits_take(b, 5)];
            if (e2 & 0x80u) {
                scratch_idx[still] = scratch_idx[p];
                scratch_d[still++] = (int64_t)(e2 & 0x7Fu);
            } else {
                out[scratch_idx[p]] = (int64_t)e2;
            }
        }
        counters[1] += npend - still;
        npend = still;
        start_col = 13;
    }
    int64_t nunres = 0;
    for (int64_t p = 0; p < npend; p++) {
        counters[2]++;
        int32_t resolved;
        int64_t row = ky_scan(t, b, start_col, scratch_d[p], &resolved);
        if (resolved)
            out[scratch_idx[p]] = row;
        else
            scratch_idx[nunres++] = scratch_idx[p];
    }
    int64_t u = 0;
    for (int64_t i = 0; i < count; i++) {
        if (u < nunres && scratch_idx[u] == i) {
            u++;
            out[i] = 0;
            continue;
        }
        if (bit_next(b))
            out[i] = (int64_t)((t->q - (uint64_t)out[i]) % t->q);
    }
}
"""


# ----------------------------------------------------------------------
# Build + load
# ----------------------------------------------------------------------

_LOADED: "Optional[Tuple[object, object]]" = None
_LOAD_ERROR: Optional[str] = None


def _source_tag() -> str:
    import hashlib

    digest = hashlib.sha256(
        (_SOURCE + "\x00" + _CDEF).encode("utf-8")
    ).hexdigest()
    return f"{digest[:16]}-py{sys.version_info[0]}{sys.version_info[1]}"


def _cache_dir() -> str:
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return os.path.join(xdg, "repro-rlwe")
    home = os.path.expanduser("~")
    if home and home != "~":
        return os.path.join(home, ".cache", "repro-rlwe")
    return os.path.join(tempfile.gettempdir(), "repro-rlwe-cache")


def _compiler() -> Optional[str]:
    candidates = []
    configured = sysconfig.get_config_var("CC")
    if configured:
        candidates.append(configured.split()[0])
    candidates += ["cc", "gcc", "clang"]
    for cc in candidates:
        from shutil import which

        if which(cc):
            return cc
    return None


def _shared_lib_path() -> str:
    return os.path.join(_cache_dir(), f"ntt_kernel_{_source_tag()}.so")


def _build_shared_lib(cc: str, target: str) -> None:
    """Compile the kernel to ``target`` (atomic rename, race-safe)."""
    os.makedirs(os.path.dirname(target), exist_ok=True)
    fd, c_path = tempfile.mkstemp(
        suffix=".c", dir=os.path.dirname(target)
    )
    so_path = c_path[:-2] + ".so"
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            f.write(_SOURCE)
        cmd = [
            cc,
            "-O3",
            "-std=c11",
            "-fPIC",
            "-shared",
            "-o",
            so_path,
            c_path,
        ]
        proc = subprocess.run(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            timeout=120,
        )
        if proc.returncode != 0:
            output = proc.stdout.decode("utf-8", "replace")[-2000:]
            raise KernelUnavailable(
                f"C compilation failed ({cc}): {output}"
            )
        # Concurrent builders (e.g. pool workers starting together) each
        # compile to a unique temp name; the rename is atomic so the
        # winner's library is always complete.
        os.replace(so_path, target)
    finally:
        for path in (c_path, so_path):
            try:
                os.unlink(path)
            except OSError:
                pass


def accel_unavailable_reason(recheck: bool = False) -> Optional[str]:
    """``None`` when the compiled kernel is usable, else why it is not.

    The first successful/failed load is memoized; pass ``recheck=True``
    to re-probe (tests toggle the environment).
    """
    global _LOADED, _LOAD_ERROR
    if os.environ.get(NO_ACCEL_ENV):
        return f"disabled via {NO_ACCEL_ENV}=1"
    if not recheck:
        if _LOADED is not None:
            return None
        if _LOAD_ERROR is not None:
            return _LOAD_ERROR
    try:
        load_kernel(recheck=recheck)
        return None
    except KernelUnavailable as exc:
        return str(exc)


def load_kernel(recheck: bool = False) -> Tuple[object, object]:
    """Return ``(ffi, lib)`` for the compiled kernel, building if needed.

    Raises :class:`KernelUnavailable` with a human-readable reason when
    the accelerator cannot run here.
    """
    global _LOADED, _LOAD_ERROR
    if os.environ.get(NO_ACCEL_ENV):
        raise KernelUnavailable(f"disabled via {NO_ACCEL_ENV}=1")
    if _LOADED is not None and not recheck:
        return _LOADED
    if _LOAD_ERROR is not None and not recheck:
        raise KernelUnavailable(_LOAD_ERROR)
    try:
        _LOADED = _load_kernel_uncached()
        _LOAD_ERROR = None
        return _LOADED
    except KernelUnavailable as exc:
        _LOADED = None
        _LOAD_ERROR = str(exc)
        raise


def _load_kernel_uncached() -> Tuple[object, object]:
    try:
        import cffi
    except ImportError:
        raise KernelUnavailable(
            "cffi is not installed (pip install repro-rlwe[accel])"
        ) from None
    from repro.numpy_support import have_numpy

    if not have_numpy():
        raise KernelUnavailable(
            "NumPy is not installed (the compiled tier stores batches "
            "as NumPy arrays; pip install repro-rlwe[accel])"
        )
    target = _shared_lib_path()
    if not os.path.exists(target):
        cc = _compiler()
        if cc is None:
            raise KernelUnavailable("no C compiler found on PATH")
        try:
            _build_shared_lib(cc, target)
        except KernelUnavailable:
            raise
        except Exception as exc:  # lint: disable=EXC001(availability probe: any build-environment failure must degrade to the NumPy tier, not crash the registry)
            raise KernelUnavailable(
                f"kernel build failed: {exc!r}"
            ) from exc
    ffi = cffi.FFI()
    ffi.cdef(_CDEF)
    try:
        lib = ffi.dlopen(target)
    except OSError as exc:
        # A stale/corrupt cache entry: rebuild once before giving up.
        try:
            os.unlink(target)
        except OSError:
            pass
        cc = _compiler()
        if cc is None:
            raise KernelUnavailable("no C compiler found on PATH") from exc
        _build_shared_lib(cc, target)
        lib = ffi.dlopen(target)
    return ffi, lib


def default_threads() -> int:
    """Worker-thread count for batched kernels (env override wins)."""
    raw = os.environ.get(THREADS_ENV, "")
    try:
        value = int(raw)
    except ValueError:
        value = 0
    if value > 0:
        return value
    return os.cpu_count() or 1
