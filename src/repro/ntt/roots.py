"""Precomputed twiddle-factor tables for the negative-wrapped NTT.

The paper avoids computing twiddle factors on the fly by storing
"precomputed twiddle factors, and inverse twiddle factors in a lookup
table" (Section III-C).  This module builds those tables once per
parameter set and caches them.

Conventions
-----------
The forward transform implemented by Alg. 3 / Alg. 4 is the
decimation-in-time Cooley-Tukey NTT on bit-reversed input where the stage
of (sub-transform) size ``m`` uses the twiddles

    w_(2m)^(2j+1) = psi^((2j+1) * n/m),   j = 0 .. m/2-1

i.e. the classical cyclic stage twiddles ``w_m^j`` shifted by the half
power ``sqrt(w_m) = psi^(n/m)``.  That half-power shift is exactly what
absorbs the ``psi^j`` pre-scaling of the negative-wrapped convolution into
the transform (Roy et al., CHES 2014).  The inverse transform is the plain
cyclic inverse NTT (stage twiddles ``w_m^-j``) followed by multiplication
with ``n^-1 * psi^-j``, which this module also precomputes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.params import ParameterSet
from repro.ntt.modmath import modinv


@dataclass(frozen=True)
class StageRoots:
    """Roots driving one butterfly stage of sub-transform size ``m``.

    ``wm`` is the per-iteration twiddle multiplier (order-m root) and
    ``w0`` the initial twiddle.  The forward negacyclic transform uses
    ``w0 = sqrt(wm) = psi^(n/m)``; the cyclic inverse uses ``w0 = 1``.
    """

    m: int
    wm: int
    w0: int


@dataclass(frozen=True)
class NttTables:
    """All precomputed constants for one parameter set.

    Attributes mirror what an embedded implementation keeps in flash:

    * ``forward_stages`` / ``inverse_stages``: the (wm, w0) register pairs
      Alg. 3/4 load per stage from the ``primitive_root`` lookup table.
    * ``forward_twiddles`` / ``inverse_twiddles``: fully unrolled per-stage
      twiddle lists (stage s, butterfly j), used by the LUT-driven
      optimized kernels so the ``w <- w * wm`` dependency chain disappears.
    * ``final_scale``: ``n^-1 * psi^-j mod q`` for j = 0..n-1, applied
      after the cyclic inverse stages to complete the negacyclic INTT.
    """

    params: ParameterSet
    forward_stages: Tuple[StageRoots, ...]
    inverse_stages: Tuple[StageRoots, ...]
    forward_twiddles: Tuple[Tuple[int, ...], ...]
    inverse_twiddles: Tuple[Tuple[int, ...], ...]
    final_scale: Tuple[int, ...]

    @property
    def stage_count(self) -> int:
        return len(self.forward_stages)

    def flash_bytes(self) -> int:
        """Bytes of constant storage, coefficients stored as halfwords."""
        per_coeff = self.params.coefficient_bytes
        twiddles = sum(len(t) for t in self.forward_twiddles)
        twiddles += sum(len(t) for t in self.inverse_twiddles)
        return per_coeff * (twiddles + len(self.final_scale))


_TABLE_CACHE: Dict[Tuple[int, int], NttTables] = {}


def ntt_tables(params: ParameterSet) -> NttTables:
    """Return (cached) twiddle tables for ``params``."""
    key = (params.n, params.q)
    if key not in _TABLE_CACHE:
        _TABLE_CACHE[key] = _build_tables(params)
    return _TABLE_CACHE[key]


def _build_tables(params: ParameterSet) -> NttTables:
    if not params.ntt_friendly:
        raise ValueError(f"{params.name} is not NTT-friendly")
    n, q = params.n, params.q
    psi = params.psi
    omega = params.omega
    omega_inv = params.omega_inverse

    forward_stages: List[StageRoots] = []
    inverse_stages: List[StageRoots] = []
    forward_twiddles: List[Tuple[int, ...]] = []
    inverse_twiddles: List[Tuple[int, ...]] = []

    m = 2
    while m <= n:
        exponent = n // m
        wm = pow(omega, exponent, q)
        w0 = pow(psi, exponent, q)  # sqrt(wm) in the negacyclic sense
        forward_stages.append(StageRoots(m=m, wm=wm, w0=w0))

        wm_inv = pow(omega_inv, exponent, q)
        inverse_stages.append(StageRoots(m=m, wm=wm_inv, w0=1))

        fwd_stage = []
        inv_stage = []
        w = w0
        wi = 1
        for _ in range(m // 2):
            fwd_stage.append(w)
            inv_stage.append(wi)
            w = w * wm % q
            wi = wi * wm_inv % q
        forward_twiddles.append(tuple(fwd_stage))
        inverse_twiddles.append(tuple(inv_stage))
        m *= 2

    n_inv = modinv(n, q)
    psi_inv = params.psi_inverse
    scale = []
    acc = n_inv
    for _ in range(n):
        scale.append(acc)
        acc = acc * psi_inv % q

    return NttTables(
        params=params,
        forward_stages=tuple(forward_stages),
        inverse_stages=tuple(inverse_stages),
        forward_twiddles=tuple(forward_twiddles),
        inverse_twiddles=tuple(inverse_twiddles),
        final_scale=tuple(scale),
    )
