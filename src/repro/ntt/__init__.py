"""Negative-wrapped NTT kernels and polynomial arithmetic."""

from repro.ntt.optimized import ntt_forward_packed, ntt_inverse_packed
from repro.ntt.parallel import ntt_forward_parallel3
from repro.ntt.polymul import (
    ntt_multiply,
    pointwise_add,
    pointwise_multiply,
    pointwise_subtract,
    schoolbook_negacyclic,
)
from repro.ntt.reference import (
    negacyclic_dft,
    negacyclic_idft,
    ntt_forward,
    ntt_inverse,
)
from repro.ntt.roots import NttTables, ntt_tables

__all__ = [
    "ntt_forward",
    "ntt_inverse",
    "negacyclic_dft",
    "negacyclic_idft",
    "ntt_forward_packed",
    "ntt_inverse_packed",
    "ntt_forward_parallel3",
    "ntt_multiply",
    "pointwise_add",
    "pointwise_multiply",
    "pointwise_subtract",
    "schoolbook_negacyclic",
    "NttTables",
    "ntt_tables",
]
