"""Coefficient packing: two halfword coefficients per 32-bit word.

Section III-C of the paper observes that on the Cortex-M4F a memory access
costs 2 cycles whether it loads a halfword or a full word, so storing one
13/14-bit coefficient per halfword wastes half of every access.  The
optimized NTT therefore keeps two coefficients in each 32-bit word:

    word = coeff[2*i]  |  coeff[2*i + 1] << 16

These helpers implement that layout and are shared by the functional
optimized NTT (:mod:`repro.ntt.optimized`) and its cycle-model twin.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

HALF_MASK = 0xFFFF
WORD_MASK = 0xFFFFFFFF


def pack_pair(lo: int, hi: int) -> int:
    """Pack two coefficients into one 32-bit word (lo in bits 0..15)."""
    if not (0 <= lo <= HALF_MASK and 0 <= hi <= HALF_MASK):
        raise ValueError(f"coefficients ({lo}, {hi}) exceed halfword range")
    return lo | (hi << 16)


def unpack_pair(word: int) -> Tuple[int, int]:
    """Inverse of :func:`pack_pair`."""
    if not 0 <= word <= WORD_MASK:
        raise ValueError(f"word {word:#x} out of 32-bit range")
    return word & HALF_MASK, word >> 16


def pack_polynomial(coefficients: Sequence[int]) -> List[int]:
    """Pack an even-length coefficient list into n/2 words."""
    if len(coefficients) % 2:
        raise ValueError("coefficient count must be even")
    return [
        pack_pair(coefficients[i], coefficients[i + 1])
        for i in range(0, len(coefficients), 2)
    ]


def unpack_polynomial(words: Sequence[int]) -> List[int]:
    """Inverse of :func:`pack_polynomial`."""
    out: List[int] = []
    for word in words:
        lo, hi = unpack_pair(word)
        out.append(lo)
        out.append(hi)
    return out
