"""Polynomial multiplication in Rq = Z_q[x] / (x^n + 1).

``ntt_multiply`` is the paper's fast path: two forward NTTs, a
coefficient-wise product, and one inverse NTT ("NTT multiplication" in
Table I).  ``schoolbook_negacyclic`` is the quadratic-time baseline the
test-suite uses as an oracle, and also serves as the naive comparator in
the ablation benches.

Kernel selection is delegated to the compute-backend registry
(:mod:`repro.backend`): ``implementation`` accepts any registered
backend name (``"python-reference"``, ``"python-packed"``, ``"numpy"``)
or the legacy kernel aliases ``"reference"`` / ``"packed"``, as well as
a :class:`repro.backend.PolyBackend` instance.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.core.params import ParameterSet
from repro.ntt import optimized, reference

ForwardFn = Callable[[Sequence[int], ParameterSet], List[int]]
InverseFn = Callable[[Sequence[int], ParameterSet], List[int]]

#: The raw pure-Python kernel pairs (kept for callers that need bare
#: functions, e.g. the cycle-model twins); new code should prefer
#: :func:`repro.backend.get_backend`.
_IMPLEMENTATIONS = {
    "reference": (reference.ntt_forward, reference.ntt_inverse),
    "packed": (optimized.ntt_forward_packed, optimized.ntt_inverse_packed),
}


def pointwise_multiply(
    a_hat: Sequence[int], b_hat: Sequence[int], params: ParameterSet
) -> List[int]:
    """Coefficient-wise product of two NTT-domain polynomials."""
    if len(a_hat) != len(b_hat):
        raise ValueError("operand lengths differ")
    q = params.q
    return [x * y % q for x, y in zip(a_hat, b_hat)]


def pointwise_add(
    a: Sequence[int], b: Sequence[int], params: ParameterSet
) -> List[int]:
    """Coefficient-wise sum modulo q (domain-agnostic: NTT is linear)."""
    if len(a) != len(b):
        raise ValueError("operand lengths differ")
    q = params.q
    return [(x + y) % q for x, y in zip(a, b)]


def pointwise_subtract(
    a: Sequence[int], b: Sequence[int], params: ParameterSet
) -> List[int]:
    """Coefficient-wise difference modulo q."""
    if len(a) != len(b):
        raise ValueError("operand lengths differ")
    q = params.q
    return [(x - y) % q for x, y in zip(a, b)]


def ntt_multiply(
    a: Sequence[int],
    b: Sequence[int],
    params: ParameterSet,
    implementation="reference",
) -> List[int]:
    """Negacyclic product a * b mod (x^n + 1, q) via the NTT.

    ``implementation`` selects the compute backend: a registered backend
    name, a legacy kernel alias (``"reference"`` / ``"packed"``), or a
    :class:`~repro.backend.PolyBackend` instance.
    """
    from repro.backend import resolve_backend

    return resolve_backend(implementation).ntt_multiply(a, b, params)


def ntt_implementation(name: str) -> "tuple[ForwardFn, InverseFn]":
    """Return the raw pure-Python (forward, inverse) kernel pair.

    Retained for callers that need bare kernel functions; backend-aware
    code should use :func:`repro.backend.get_backend` instead.
    """
    if name not in _IMPLEMENTATIONS:
        raise KeyError(
            f"unknown NTT implementation {name!r}; "
            f"choose from {sorted(_IMPLEMENTATIONS)}"
        )
    return _IMPLEMENTATIONS[name]


def schoolbook_negacyclic(
    a: Sequence[int], b: Sequence[int], params: ParameterSet
) -> List[int]:
    """Quadratic-time negacyclic product: the correctness oracle.

    Computes c_k = sum_{i+j=k} a_i b_j - sum_{i+j=k+n} a_i b_j mod q,
    i.e. ordinary polynomial multiplication reduced by x^n = -1.
    """
    n, q = params.n, params.q
    if len(a) != n or len(b) != n:
        raise ValueError(f"operands must have {n} coefficients")
    out = [0] * n
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            k = i + j
            term = ai * bj
            if k < n:
                out[k] = (out[k] + term) % q
            else:
                out[k - n] = (out[k - n] - term) % q
    return out
