"""Bit-reversal permutation used by the iterative NTT algorithms.

Alg. 3 and Alg. 4 of the paper both start with ``A <- BitReverse(a)``: the
decimation-in-time butterflies then produce output in natural order.
"""

from __future__ import annotations

from typing import List, Sequence


def bit_reverse_index(index: int, bits: int) -> int:
    """Return ``index`` with its lowest ``bits`` bits reversed."""
    if index < 0 or index >= (1 << bits):
        raise ValueError(f"index {index} out of range for {bits} bits")
    result = 0
    for _ in range(bits):
        result = (result << 1) | (index & 1)
        index >>= 1
    return result


def bit_reverse_table(n: int) -> List[int]:
    """Return the full bit-reversal permutation for a power-of-two ``n``."""
    if n <= 0 or n & (n - 1):
        raise ValueError(f"n = {n} is not a power of two")
    bits = n.bit_length() - 1
    return [bit_reverse_index(i, bits) for i in range(n)]


def bit_reverse_copy(values: Sequence[int]) -> List[int]:
    """Return a new list with ``values`` permuted into bit-reversed order."""
    table = bit_reverse_table(len(values))
    return [values[table[i]] for i in range(len(values))]


def bit_reverse_inplace(values: List[int]) -> None:
    """Permute ``values`` into bit-reversed order in place (swap-based).

    This is the memory-access pattern an embedded implementation uses:
    each pair (i, rev(i)) with i < rev(i) is swapped exactly once.
    """
    n = len(values)
    table = bit_reverse_table(n)
    for i in range(n):
        j = table[i]
        if i < j:
            values[i], values[j] = values[j], values[i]
