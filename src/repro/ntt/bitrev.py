"""Bit-reversal permutation used by the iterative NTT algorithms.

Alg. 3 and Alg. 4 of the paper both start with ``A <- BitReverse(a)``: the
decimation-in-time butterflies then produce output in natural order.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Tuple


def bit_reverse_index(index: int, bits: int) -> int:
    """Return ``index`` with its lowest ``bits`` bits reversed."""
    if index < 0 or index >= (1 << bits):
        raise ValueError(f"index {index} out of range for {bits} bits")
    result = 0
    for _ in range(bits):
        result = (result << 1) | (index & 1)
        index >>= 1
    return result


@lru_cache(maxsize=None)
def _bit_reverse_table_cached(n: int) -> Tuple[int, ...]:
    """The permutation as an immutable (safely shareable) tuple."""
    bits = n.bit_length() - 1
    return tuple(bit_reverse_index(i, bits) for i in range(n))


def bit_reverse_table(n: int) -> List[int]:
    """Return the full bit-reversal permutation for a power-of-two ``n``.

    The permutation is cached per ``n`` (every transform of every
    backend consults it); the returned list is a fresh copy so callers
    may mutate it freely.
    """
    if n <= 0 or n & (n - 1):
        raise ValueError(f"n = {n} is not a power of two")
    return list(_bit_reverse_table_cached(n))


def bit_reverse_copy(values: Sequence[int]) -> List[int]:
    """Return a new list with ``values`` permuted into bit-reversed order."""
    table = bit_reverse_table(len(values))
    return [values[table[i]] for i in range(len(values))]


def bit_reverse_inplace(values: List[int]) -> None:
    """Permute ``values`` into bit-reversed order in place (swap-based).

    This is the memory-access pattern an embedded implementation uses:
    each pair (i, rev(i)) with i < rev(i) is swapped exactly once.
    """
    n = len(values)
    table = bit_reverse_table(n)
    for i in range(n):
        j = table[i]
        if i < j:
            values[i], values[j] = values[j], values[i]
