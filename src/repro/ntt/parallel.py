"""Fused forward NTT over three polynomials ("Parallel NTT").

During encryption three forward NTTs run back to back (on e1, e2 and
e3 + m-bar).  Section III-D of the paper fuses them into one loop nest so
the loop overhead and the ``w <- w * wm`` twiddle recurrence are paid once
instead of three times, an 8.3% saving on the Cortex-M4F.  The paper also
stores the three coefficient sets contiguously, n/2 words apart, so a
single base pointer addresses all three; the cycle model accounts for that
addressing trick, while this functional version simply carries the three
arrays.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.params import ParameterSet
from repro.ntt.bitrev import bit_reverse_copy
from repro.ntt.roots import ntt_tables

Triple = Tuple[List[int], List[int], List[int]]


def ntt_forward_parallel3(
    a: Sequence[int],
    b: Sequence[int],
    c: Sequence[int],
    params: ParameterSet,
) -> Triple:
    """Forward NTT of three polynomials inside one fused loop nest.

    Bit-identical to applying :func:`repro.ntt.reference.ntt_forward`
    to each input separately.
    """
    for poly in (a, b, c):
        if len(poly) != params.n:
            raise ValueError(
                f"expected {params.n} coefficients, got {len(poly)}"
            )
    q = params.q
    tables = ntt_tables(params)
    A = bit_reverse_copy([x % q for x in a])
    B = bit_reverse_copy([x % q for x in b])
    C = bit_reverse_copy([x % q for x in c])
    for stage in tables.forward_stages:
        m, wm = stage.m, stage.wm
        w = stage.w0
        half = m // 2
        for j in range(half):
            for k in range(0, params.n, m):
                lo = j + k
                hi = lo + half
                for poly in (A, B, C):
                    t = w * poly[hi] % q
                    u = poly[lo]
                    poly[lo] = (u + t) % q
                    poly[hi] = (u - t) % q
            w = w * wm % q
    return A, B, C
