"""A key-encapsulation mechanism on top of the encryption scheme.

The paper's scheme encrypts raw bits and (like all LPR-style schemes of
its generation) is used in practice to transport a symmetric key — the
pattern ECIES follows on the other side of Table IV.  This module builds
that usage out: encapsulate a fresh 256-bit shared secret under a
ring-LWE public key, derive the session key with SHA-256, and detect
(the overwhelmingly common case of) decryption failures through a key
confirmation tag.

This is the CPA-secure primitive the paper implies, *not* a
Fujisaki-Okamoto CCA transform; see the README's security notes.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.scheme import (
    Ciphertext,
    PrivateKey,
    PublicKey,
    RlweEncryptionScheme,
)

#: Bytes of raw secret transported inside one ciphertext block.
SECRET_BYTES = 32
#: Bytes of the key-confirmation tag.
TAG_BYTES = 16


class EncapsulationError(Exception):
    """Raised when decapsulation cannot recover a consistent secret."""


@dataclass(frozen=True)
class Encapsulation:
    """Wire object: the ciphertext plus the key-confirmation tag."""

    ciphertext: Ciphertext
    tag: bytes


@dataclass(frozen=True)
class SharedSecret:
    """The derived session key."""

    key: bytes

    def __post_init__(self) -> None:
        if len(self.key) != 32:
            raise ValueError("session keys are 32 bytes")


def _derive(secret: bytes, public: PublicKey) -> "tuple[bytes, bytes]":
    """KDF: bind the raw secret to the recipient key; split key / tag.

    Returns (session_key, confirmation_tag).
    """
    binding = hashlib.sha256()
    binding.update(b"rlwe-repro-kem-v1")
    binding.update(public.params.name.encode())
    for coefficient in public.p_hat:
        binding.update(coefficient.to_bytes(2, "little"))
    material = hashlib.sha256(secret + binding.digest()).digest()
    tag = hmac.new(material, b"confirm", hashlib.sha256).digest()[:TAG_BYTES]
    return material, tag


class RlweKem:
    """Encapsulate/decapsulate 256-bit secrets under ring-LWE keys."""

    def __init__(self, scheme: RlweEncryptionScheme):
        if scheme.params.message_bytes < SECRET_BYTES:
            raise ValueError(
                f"{scheme.params.name} carries only "
                f"{scheme.params.message_bytes} bytes per ciphertext; "
                f"the KEM needs {SECRET_BYTES}"
            )
        self.scheme = scheme

    def _random_secret(self) -> bytes:
        bits = self.scheme.bits
        return bytes(bits.bits(8) for _ in range(SECRET_BYTES))

    def encapsulate(
        self, public: PublicKey
    ) -> "tuple[Encapsulation, SharedSecret]":
        """Generate and transport a fresh shared secret."""
        secret = self._random_secret()
        ciphertext = self.scheme.encrypt(public, secret)
        key, tag = _derive(secret, public)
        return Encapsulation(ciphertext, tag), SharedSecret(key)

    def encapsulate_many(
        self, public: PublicKey, count: int
    ) -> "List[Tuple[Encapsulation, SharedSecret]]":
        """Transport ``count`` fresh shared secrets in one batched call.

        All raw secrets are drawn first (in order), then the whole batch
        is encrypted through the scheme's batched path — the throughput
        API for servers terminating many handshakes at once.  Uses the
        block randomness order, so results differ from ``count``
        sequential :meth:`encapsulate` calls under the same seed (but
        are themselves deterministic and backend-independent).
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        secrets = [self._random_secret() for _ in range(count)]
        ciphertexts = self.scheme.encrypt_batch(public, secrets)
        out: List[Tuple[Encapsulation, SharedSecret]] = []
        for secret, ciphertext in zip(secrets, ciphertexts):
            key, tag = _derive(secret, public)
            out.append((Encapsulation(ciphertext, tag), SharedSecret(key)))
        return out

    def encapsulate_many_multi(
        self,
        publics: "Sequence[PublicKey]",
        key_rows: "Sequence[int]",
    ) -> "List[Tuple[Encapsulation, SharedSecret]]":
        """Transport one fresh secret per row, under per-item keys.

        The fused-window variant of :meth:`encapsulate_many`: item ``i``
        encapsulates under ``publics[key_rows[i]]``, and the whole mixed
        batch is encrypted through the scheme's multi-key batched path.
        Secrets are drawn first in item order — exactly the randomness
        order of :meth:`encapsulate_many` — so a one-key table with
        all-zero rows is bit-identical to the single-key call.
        """
        secrets = [self._random_secret() for _ in key_rows]
        ciphertexts = self.scheme.encrypt_batch_multi(
            publics, key_rows, secrets
        )
        out: List[Tuple[Encapsulation, SharedSecret]] = []
        for secret, ciphertext, row in zip(secrets, ciphertexts, key_rows):
            key, tag = _derive(secret, publics[row])
            out.append((Encapsulation(ciphertext, tag), SharedSecret(key)))
        return out

    def decapsulate_many_multi(
        self,
        privates: "Sequence[PrivateKey]",
        publics: "Sequence[PublicKey]",
        key_rows: "Sequence[int]",
        encapsulations: "Sequence[Encapsulation]",
    ) -> "List[Optional[SharedSecret]]":
        """Decapsulate a mixed-key batch; failures come back as ``None``."""
        if not encapsulations:
            return []
        if len(privates) != len(publics):
            raise ValueError("private/public key table lengths differ")
        secrets = self.scheme.decrypt_batch_multi(
            privates,
            key_rows,
            [e.ciphertext for e in encapsulations],
            length=SECRET_BYTES,
        )
        out: List[Optional[SharedSecret]] = []
        for secret, encapsulation, row in zip(
            secrets, encapsulations, key_rows
        ):
            key, tag = _derive(secret, publics[row])
            if hmac.compare_digest(tag, encapsulation.tag):
                out.append(SharedSecret(key))
            else:
                out.append(None)
        return out

    def decapsulate_many(
        self,
        private: PrivateKey,
        public: PublicKey,
        encapsulations: "Sequence[Encapsulation]",
    ) -> "List[Optional[SharedSecret]]":
        """Decapsulate a batch; failed entries come back as ``None``.

        The decryption half runs through the scheme's batched path (one
        backend batch call for the whole sequence); the per-item tag
        check then turns decryption failures or tampering into ``None``
        rather than an exception, so one bad encapsulation cannot mask
        the rest of the batch — the shape a server terminating many
        handshakes needs.
        """
        if not encapsulations:
            return []
        secrets = self.scheme.decrypt_batch(
            private,
            [e.ciphertext for e in encapsulations],
            length=SECRET_BYTES,
        )
        out: List[Optional[SharedSecret]] = []
        for secret, encapsulation in zip(secrets, encapsulations):
            key, tag = _derive(secret, public)
            if hmac.compare_digest(tag, encapsulation.tag):
                out.append(SharedSecret(key))
            else:
                out.append(None)
        return out

    def decapsulate(
        self,
        private: PrivateKey,
        public: PublicKey,
        encapsulation: Encapsulation,
    ) -> SharedSecret:
        """Recover the shared secret; raises on corrupted transport.

        A ring-LWE decryption failure (~1% at these legacy parameters)
        garbles the recovered secret; the confirmation tag turns that
        silent corruption into an explicit :class:`EncapsulationError`
        so callers can re-encapsulate.
        """
        secret = self.scheme.decrypt(
            private, encapsulation.ciphertext, length=SECRET_BYTES
        )
        key, tag = _derive(secret, public)
        if not hmac.compare_digest(tag, encapsulation.tag):
            raise EncapsulationError(
                "key confirmation failed (decryption failure or "
                "tampered encapsulation)"
            )
        return SharedSecret(key)


def exchange_session_key(
    kem: RlweKem,
    private: PrivateKey,
    public: PublicKey,
    max_attempts: int = 4,
) -> Optional[SharedSecret]:
    """Encapsulate/decapsulate with retry on decryption failure.

    Returns the agreed secret, or None if every attempt failed (the
    probability of which is negligible: ~(1%)^max_attempts).
    """
    for _ in range(max_attempts):
        encapsulation, sender_secret = kem.encapsulate(public)
        try:
            receiver_secret = kem.decapsulate(private, public, encapsulation)
        except EncapsulationError:
            continue
        if receiver_secret.key == sender_secret.key:
            return receiver_secret
    return None
