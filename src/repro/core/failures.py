"""Analytic decryption-failure estimates.

After decryption the decoder sees ``mbar + r1*e1 + r2*e2 + e3`` per
coefficient; a message bit flips when the combined error magnitude
reaches q/4.  Each of the two product terms is a sum of n products of
independent discrete Gaussians (negacyclic convolution coefficients), so
by the central limit theorem the combined error per coefficient is
approximately normal with variance

    var = 2 * n * sigma^4 + sigma^2 .

These estimates are used by the tests (the observed failure rate of the
real scheme must match) and quoted in EXPERIMENTS.md; at P1 the
per-message failure rate is ~1%, an accepted property of these legacy
parameter sets (later schemes add reconciliation/encoding to suppress
it — see the README's security notes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.params import ParameterSet


@dataclass(frozen=True)
class FailureEstimate:
    """Gaussian-approximation failure probabilities for one parameter set."""

    params_name: str
    error_stddev: float
    threshold: int
    per_coefficient: float
    per_message: float

    def __str__(self) -> str:
        return (
            f"{self.params_name}: error sigma = {self.error_stddev:.1f}, "
            f"threshold q/4 = {self.threshold}, "
            f"P[coefficient flips] = {self.per_coefficient:.3e}, "
            f"P[message corrupted] = {self.per_message:.3e}"
        )


def error_variance(params: ParameterSet) -> float:
    """Variance of one decrypted-error coefficient.

    Two negacyclic products of Gaussian polynomials contribute
    ``n * sigma^4`` each (a sum of n independent products of two
    independent Gaussians, each product having variance sigma^4), and the
    additive term e3 contributes sigma^2.
    """
    sigma2 = params.sigma**2
    return 2.0 * params.n * sigma2 * sigma2 + sigma2


def per_coefficient_failure(params: ParameterSet) -> float:
    """P[|error coefficient| >= q/4] under the normal approximation."""
    stddev = math.sqrt(error_variance(params))
    threshold = params.quarter_q
    return math.erfc(threshold / (stddev * math.sqrt(2.0)))


def per_message_failure(params: ParameterSet) -> float:
    """P[at least one of the n coefficients flips]."""
    p = per_coefficient_failure(params)
    return 1.0 - (1.0 - p) ** params.n


def estimate(params: ParameterSet) -> FailureEstimate:
    return FailureEstimate(
        params_name=params.name,
        error_stddev=math.sqrt(error_variance(params)),
        threshold=params.quarter_q,
        per_coefficient=per_coefficient_failure(params),
        per_message=per_message_failure(params),
    )
