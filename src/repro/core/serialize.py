"""Wire formats for keys and ciphertexts.

Coefficients in [0, q) need only 13 bits (q = 7681) or 14 bits
(q = 12289), so polynomials are bit-packed rather than stored as
halfwords: a P1 polynomial costs 416 bytes on the wire instead of 512.
Objects carry a small header identifying the parameter set so that
deserialisation is self-describing.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

from repro.core.params import ParameterSet, get_parameter_set
from repro.core.scheme import Ciphertext, KeyPair, PrivateKey, PublicKey

_MAGIC = b"RLWE"
_VERSION = 1

_KIND_PUBLIC = 1
_KIND_PRIVATE = 2
_KIND_CIPHERTEXT = 3


def pack_coefficients(coefficients: Sequence[int], q: int) -> bytes:
    """Bit-pack coefficients in [0, q) at ceil(log2 q) bits each."""
    width = (q - 1).bit_length()
    acc = 0
    acc_bits = 0
    out = bytearray()
    for c in coefficients:
        if not 0 <= c < q:
            raise ValueError(f"coefficient {c} out of [0, {q})")
        acc |= c << acc_bits
        acc_bits += width
        while acc_bits >= 8:
            out.append(acc & 0xFF)
            acc >>= 8
            acc_bits -= 8
    if acc_bits:
        out.append(acc & 0xFF)
    return bytes(out)


def unpack_coefficients(data: bytes, count: int, q: int) -> List[int]:
    """Inverse of :func:`pack_coefficients`."""
    width = (q - 1).bit_length()
    needed = (count * width + 7) // 8
    if len(data) < needed:
        raise ValueError(f"need {needed} bytes, got {len(data)}")
    acc = 0
    acc_bits = 0
    cursor = 0
    out = []
    mask = (1 << width) - 1
    for _ in range(count):
        while acc_bits < width:
            acc |= data[cursor] << acc_bits
            cursor += 1
            acc_bits += 8
        value = acc & mask
        if value >= q:
            raise ValueError(f"decoded coefficient {value} >= q = {q}")
        out.append(value)
        acc >>= width
        acc_bits -= width
    return out


def polynomial_wire_bytes(params: ParameterSet) -> int:
    """Serialized size of one polynomial."""
    return (params.n * params.coefficient_bits + 7) // 8


def _header(kind: int, params: ParameterSet) -> bytes:
    name = params.name.encode()
    return _MAGIC + struct.pack("<BBB", _VERSION, kind, len(name)) + name


def _parse_header(data: bytes, expect_kind: int) -> Tuple[ParameterSet, int]:
    if data[:4] != _MAGIC:
        raise ValueError("bad magic: not a repro-serialized object")
    version, kind, name_len = struct.unpack_from("<BBB", data, 4)
    if version != _VERSION:
        raise ValueError(f"unsupported version {version}")
    if kind != expect_kind:
        raise ValueError(f"object kind {kind} != expected {expect_kind}")
    offset = 7 + name_len
    params = get_parameter_set(data[7:offset].decode())
    return params, offset


def serialize_public_key(key: PublicKey) -> bytes:
    body = pack_coefficients(key.a_hat, key.params.q)
    body += pack_coefficients(key.p_hat, key.params.q)
    return _header(_KIND_PUBLIC, key.params) + body


def deserialize_public_key(data: bytes) -> PublicKey:
    params, offset = _parse_header(data, _KIND_PUBLIC)
    size = polynomial_wire_bytes(params)
    a_hat = unpack_coefficients(data[offset : offset + size], params.n, params.q)
    p_hat = unpack_coefficients(
        data[offset + size : offset + 2 * size], params.n, params.q
    )
    return PublicKey(params, tuple(a_hat), tuple(p_hat))


def serialize_private_key(key: PrivateKey) -> bytes:
    return _header(_KIND_PRIVATE, key.params) + pack_coefficients(
        key.r2_hat, key.params.q
    )


def deserialize_private_key(data: bytes) -> PrivateKey:
    params, offset = _parse_header(data, _KIND_PRIVATE)
    size = polynomial_wire_bytes(params)
    r2_hat = unpack_coefficients(
        data[offset : offset + size], params.n, params.q
    )
    return PrivateKey(params, tuple(r2_hat))


def serialize_ciphertext(ct: Ciphertext) -> bytes:
    body = pack_coefficients(ct.c1_hat, ct.params.q)
    body += pack_coefficients(ct.c2_hat, ct.params.q)
    return _header(_KIND_CIPHERTEXT, ct.params) + body


def deserialize_ciphertext(data: bytes) -> Ciphertext:
    params, offset = _parse_header(data, _KIND_CIPHERTEXT)
    size = polynomial_wire_bytes(params)
    c1 = unpack_coefficients(data[offset : offset + size], params.n, params.q)
    c2 = unpack_coefficients(
        data[offset + size : offset + 2 * size], params.n, params.q
    )
    return Ciphertext(params, tuple(c1), tuple(c2))


def serialize_keypair(pair: KeyPair) -> "tuple[bytes, bytes]":
    """Convenience: (public bytes, private bytes)."""
    return serialize_public_key(pair.public), serialize_private_key(
        pair.private
    )
