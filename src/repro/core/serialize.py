"""Wire formats for keys, ciphertexts, and KEM encapsulations.

Coefficients in [0, q) need only 13 bits (q = 7681) or 14 bits
(q = 12289), so polynomials are bit-packed rather than stored as
halfwords: a P1 polynomial costs 416 bytes on the wire instead of 512.
Objects carry a small header identifying the parameter set so that
deserialisation is self-describing.

These functions are the trust boundary of the service layer
(:mod:`repro.service`): every byte string a ``deserialize_*`` function
sees may come from an untrusted network peer.  The contract is strict:

* any malformed input — bad magic, truncated header, unknown parameter
  set, truncated body, **surplus trailing bytes**, out-of-range
  coefficients — raises :exc:`ValueError`, never ``struct.error`` /
  ``KeyError`` / ``IndexError``;
* a serialized object deserialises to an equal object (round-trip), and
  deserialisation accepts *exactly* the bytes serialisation produced.

The contract is machine-checked: ``rlwe-repro lint`` (WIRE001, see
README "Developer tooling") flags any ``deserialize_*``/``peek_*``
function here whose ``struct`` unpacks are not dominated by a length
guard, whose parameter-set lookup can leak ``KeyError``, or which
never enforces exact input length.

Bit-packing runs through a vectorized NumPy fast path when NumPy is
available (serialisation is the hot path of a batched server, where the
polynomial arithmetic is already amortised); the pure-Python scalar
path is bit-identical.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

from repro.core.kem import TAG_BYTES, Encapsulation
from repro.core.params import ParameterSet, get_parameter_set
from repro.core.scheme import Ciphertext, KeyPair, PrivateKey, PublicKey
from repro.numpy_support import get_numpy

_MAGIC = b"RLWE"
_VERSION = 1

_KIND_PUBLIC = 1
_KIND_PRIVATE = 2
_KIND_CIPHERTEXT = 3
_KIND_ENCAPSULATION = 4


# ----------------------------------------------------------------------
# Coefficient bit-packing
# ----------------------------------------------------------------------
def _pack_coefficients_scalar(
    coefficients: Sequence[int], q: int, width: int
) -> bytes:
    acc = 0
    acc_bits = 0
    out = bytearray()
    for c in coefficients:
        if not 0 <= c < q:
            raise ValueError(f"coefficient {c} out of [0, {q})")
        acc |= c << acc_bits
        acc_bits += width
        while acc_bits >= 8:
            out.append(acc & 0xFF)
            acc >>= 8
            acc_bits -= 8
    if acc_bits:
        out.append(acc & 0xFF)
    return bytes(out)


def _pack_coefficients_numpy(
    np, coefficients: Sequence[int], q: int, width: int
) -> bytes:
    arr = np.asarray(coefficients, dtype=np.int64)
    if arr.size == 0:
        return b""
    bad = (arr < 0) | (arr >= q)
    if bad.any():
        offender = int(arr[bad][0])
        raise ValueError(f"coefficient {offender} out of [0, {q})")
    bits = (arr[:, None] >> np.arange(width, dtype=np.int64)) & 1
    return np.packbits(
        bits.astype(np.uint8).reshape(-1), bitorder="little"
    ).tobytes()


def pack_coefficients(coefficients: Sequence[int], q: int) -> bytes:
    """Bit-pack coefficients in [0, q) at ceil(log2 q) bits each."""
    width = (q - 1).bit_length()
    np = get_numpy()
    if np is not None:
        return _pack_coefficients_numpy(np, coefficients, q, width)
    return _pack_coefficients_scalar(coefficients, q, width)


def _unpack_coefficients_scalar(
    data: bytes, count: int, q: int, width: int
) -> List[int]:
    acc = 0
    acc_bits = 0
    cursor = 0
    out = []
    mask = (1 << width) - 1
    for _ in range(count):
        while acc_bits < width:
            acc |= data[cursor] << acc_bits
            cursor += 1
            acc_bits += 8
        value = acc & mask
        if value >= q:
            raise ValueError(f"decoded coefficient {value} >= q = {q}")
        out.append(value)
        acc >>= width
        acc_bits -= width
    return out


def _unpack_coefficients_numpy(
    np, data: bytes, count: int, q: int, width: int, needed: int
) -> List[int]:
    raw = np.frombuffer(data[:needed], dtype=np.uint8)
    bits = np.unpackbits(raw, bitorder="little")[: count * width]
    weights = np.int64(1) << np.arange(width, dtype=np.int64)
    values = bits.reshape(count, width).astype(np.int64) @ weights
    bad = values >= q
    if bad.any():
        offender = int(values[bad][0])
        raise ValueError(f"decoded coefficient {offender} >= q = {q}")
    return [int(v) for v in values]


def unpack_coefficients(data: bytes, count: int, q: int) -> List[int]:
    """Inverse of :func:`pack_coefficients`."""
    width = (q - 1).bit_length()
    needed = (count * width + 7) // 8
    if len(data) < needed:
        raise ValueError(f"need {needed} bytes, got {len(data)}")
    np = get_numpy()
    if np is not None:
        return _unpack_coefficients_numpy(np, data, count, q, width, needed)
    return _unpack_coefficients_scalar(data, count, q, width)


def polynomial_wire_bytes(params: ParameterSet) -> int:
    """Serialized size of one polynomial."""
    return (params.n * params.coefficient_bits + 7) // 8


# ----------------------------------------------------------------------
# Headers
# ----------------------------------------------------------------------
def _header(kind: int, params: ParameterSet) -> bytes:
    name = params.name.encode()
    return _MAGIC + struct.pack("<BBB", _VERSION, kind, len(name)) + name


def _parse_header(data: bytes, expect_kind: int) -> Tuple[ParameterSet, int]:
    if len(data) < 7:
        raise ValueError(
            f"buffer of {len(data)} bytes is too short for a header"
        )
    if data[:4] != _MAGIC:
        raise ValueError("bad magic: not a repro-serialized object")
    version, kind, name_len = struct.unpack_from("<BBB", data, 4)
    if version != _VERSION:
        raise ValueError(f"unsupported version {version}")
    if kind != expect_kind:
        raise ValueError(f"object kind {kind} != expected {expect_kind}")
    offset = 7 + name_len
    if len(data) < offset:
        raise ValueError("truncated header: parameter-set name cut short")
    try:
        name = data[7:offset].decode("ascii")
    except UnicodeDecodeError:
        raise ValueError("parameter-set name is not ASCII") from None
    try:
        params = get_parameter_set(name)
    except KeyError as exc:
        raise ValueError(str(exc.args[0])) from None
    return params, offset


def _check_exact_length(data: bytes, expected: int, what: str) -> None:
    """Reject both truncated and trailing-garbage buffers."""
    if len(data) != expected:
        raise ValueError(
            f"{what}: expected exactly {expected} bytes, got {len(data)}"
        )


# ----------------------------------------------------------------------
# Wire objects
# ----------------------------------------------------------------------
def serialize_public_key(key: PublicKey) -> bytes:
    body = pack_coefficients(key.a_hat, key.params.q)
    body += pack_coefficients(key.p_hat, key.params.q)
    return _header(_KIND_PUBLIC, key.params) + body


def deserialize_public_key(data: bytes) -> PublicKey:
    params, offset = _parse_header(data, _KIND_PUBLIC)
    size = polynomial_wire_bytes(params)
    _check_exact_length(data, offset + 2 * size, "public key")
    a_hat = unpack_coefficients(data[offset : offset + size], params.n, params.q)
    p_hat = unpack_coefficients(
        data[offset + size : offset + 2 * size], params.n, params.q
    )
    return PublicKey(params, tuple(a_hat), tuple(p_hat))


def serialize_private_key(key: PrivateKey) -> bytes:
    return _header(_KIND_PRIVATE, key.params) + pack_coefficients(
        key.r2_hat, key.params.q
    )


def deserialize_private_key(data: bytes) -> PrivateKey:
    params, offset = _parse_header(data, _KIND_PRIVATE)
    size = polynomial_wire_bytes(params)
    _check_exact_length(data, offset + size, "private key")
    r2_hat = unpack_coefficients(
        data[offset : offset + size], params.n, params.q
    )
    return PrivateKey(params, tuple(r2_hat))


def serialize_ciphertext(ct: Ciphertext) -> bytes:
    body = pack_coefficients(ct.c1_hat, ct.params.q)
    body += pack_coefficients(ct.c2_hat, ct.params.q)
    return _header(_KIND_CIPHERTEXT, ct.params) + body


def deserialize_ciphertext(data: bytes) -> Ciphertext:
    params, offset = _parse_header(data, _KIND_CIPHERTEXT)
    size = polynomial_wire_bytes(params)
    _check_exact_length(data, offset + 2 * size, "ciphertext")
    c1 = unpack_coefficients(data[offset : offset + size], params.n, params.q)
    c2 = unpack_coefficients(
        data[offset + size : offset + 2 * size], params.n, params.q
    )
    return Ciphertext(params, tuple(c1), tuple(c2))


def serialize_encapsulation(encapsulation: Encapsulation) -> bytes:
    """Serialize a KEM encapsulation: ciphertext + confirmation tag."""
    ct = encapsulation.ciphertext
    if len(encapsulation.tag) != TAG_BYTES:
        raise ValueError(
            f"confirmation tag must be {TAG_BYTES} bytes, "
            f"got {len(encapsulation.tag)}"
        )
    body = pack_coefficients(ct.c1_hat, ct.params.q)
    body += pack_coefficients(ct.c2_hat, ct.params.q)
    body += encapsulation.tag
    return _header(_KIND_ENCAPSULATION, ct.params) + body


def deserialize_encapsulation(data: bytes) -> Encapsulation:
    params, offset = _parse_header(data, _KIND_ENCAPSULATION)
    size = polynomial_wire_bytes(params)
    _check_exact_length(data, offset + 2 * size + TAG_BYTES, "encapsulation")
    c1 = unpack_coefficients(data[offset : offset + size], params.n, params.q)
    c2 = unpack_coefficients(
        data[offset + size : offset + 2 * size], params.n, params.q
    )
    tag = data[offset + 2 * size :]
    return Encapsulation(Ciphertext(params, tuple(c1), tuple(c2)), tag)


# ----------------------------------------------------------------------
# Cheap header validation (service dispatch fast path)
# ----------------------------------------------------------------------
# The service layer validates untrusted bodies *twice*: once at dispatch
# time (so a malformed request is rejected before it occupies a batch
# slot) and once inside the execution engine that actually decodes it —
# possibly in another process.  The dispatch-time check must be cheap,
# so these peek functions verify the header and the exact wire length
# without unpacking any coefficients.  They raise the same ValueError
# messages as the full deserializers for every header/length defect;
# only out-of-range-coefficient errors are deferred to the engine.


def peek_ciphertext_params(data: bytes) -> ParameterSet:
    """Header + exact-length check of a serialized ciphertext."""
    params, offset = _parse_header(data, _KIND_CIPHERTEXT)
    size = polynomial_wire_bytes(params)
    _check_exact_length(data, offset + 2 * size, "ciphertext")
    return params


def peek_encapsulation_params(data: bytes) -> ParameterSet:
    """Header + exact-length check of a serialized encapsulation."""
    params, offset = _parse_header(data, _KIND_ENCAPSULATION)
    size = polynomial_wire_bytes(params)
    _check_exact_length(data, offset + 2 * size + TAG_BYTES, "encapsulation")
    return params


def serialize_keypair(pair: KeyPair) -> "tuple[bytes, bytes]":
    """Convenience: (public bytes, private bytes)."""
    return serialize_public_key(pair.public), serialize_private_key(
        pair.private
    )


def deserialize_keypair(
    public_bytes: bytes, private_bytes: bytes
) -> KeyPair:
    """Strict inverse of :func:`serialize_keypair`.

    Both halves parse under the full strict contract, and must name the
    same parameter set — a mixed pair is rejected here rather than
    failing obscurely at first use.
    """
    public = deserialize_public_key(public_bytes)
    private = deserialize_private_key(private_bytes)
    if public.params.name != private.params.name:
        raise ValueError(
            f"keypair halves disagree on parameters: public is "
            f"{public.params.name}, private is {private.params.name}"
        )
    return KeyPair(public, private)
