"""Message encoding for the ring-LWE encryption scheme.

The scheme encrypts one message bit per polynomial coefficient.  The
encoder maps bit 1 to ``floor(q/2)`` and bit 0 to 0; after decryption the
recovered coefficient equals the encoding plus a small Gaussian-derived
error term, so the decoder declares a 1 whenever the coefficient lies in
the window ``(q/4, 3q/4]`` — the threshold decoder of Section II-A.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.params import ParameterSet
from repro.numpy_support import get_numpy


def bits_from_bytes(data: bytes) -> List[int]:
    """Expand bytes into bits, LSB-first within each byte."""
    out: List[int] = []
    for byte in data:
        for i in range(8):
            out.append((byte >> i) & 1)
    return out


def bytes_from_bits(bits: Sequence[int]) -> bytes:
    """Inverse of :func:`bits_from_bytes`; length must be a multiple of 8."""
    if len(bits) % 8:
        raise ValueError("bit count must be a multiple of 8")
    out = bytearray()
    for i in range(0, len(bits), 8):
        byte = 0
        for j in range(8):
            bit = bits[i + j]
            if bit not in (0, 1):
                raise ValueError(f"non-bit value {bit!r} at index {i + j}")
            byte |= bit << j
        out.append(byte)
    return bytes(out)


def encode_bits(bits: Sequence[int], params: ParameterSet) -> List[int]:
    """Encode a bit vector (length <= n) into a message polynomial.

    Shorter messages are zero-padded to n coefficients.
    """
    if len(bits) > params.n:
        raise ValueError(
            f"message of {len(bits)} bits exceeds n = {params.n}"
        )
    half = params.half_q
    poly = []
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"non-bit value {bit!r} in message")
        poly.append(half if bit else 0)
    poly.extend([0] * (params.n - len(bits)))
    return poly


def decode_bits(poly: Sequence[int], params: ParameterSet) -> List[int]:
    """Threshold-decode a noisy message polynomial back to bits.

    A coefficient decodes to 1 when its distance to ``floor(q/2)`` is
    smaller than its distance to 0 (equivalently, it lies in
    (q/4, 3q/4]).
    """
    if len(poly) != params.n:
        raise ValueError(f"expected {params.n} coefficients")
    q = params.q
    lo = q // 4
    hi = 3 * q // 4
    bits = []
    for c in poly:
        c %= q
        bits.append(1 if lo < c <= hi else 0)
    return bits


def encode_bytes(message: bytes, params: ParameterSet) -> List[int]:
    """Encode up to ``params.message_bytes`` bytes into a polynomial.

    Bit-identical on both paths: the NumPy route (when available) is
    just ``bits_from_bytes`` + ``encode_bits`` as two array ops — this
    sits on the scalar encrypt hot path.
    """
    if len(message) > params.message_bytes:
        raise ValueError(
            f"message of {len(message)} bytes exceeds the "
            f"{params.message_bytes}-byte capacity of {params.name}"
        )
    np = get_numpy()
    if np is None:
        return encode_bits(bits_from_bytes(message), params)
    bits = np.unpackbits(
        np.frombuffer(message, dtype=np.uint8), bitorder="little"
    )
    poly = np.zeros(params.n, dtype=np.int64)
    poly[: bits.size] = bits.astype(np.int64) * params.half_q
    return poly.tolist()


def encode_bytes_batch(
    messages: Sequence[bytes], params: ParameterSet
):
    """Encode many byte messages into message polynomials at once.

    Bit-identical to per-message :func:`encode_bytes`; returns a NumPy
    ``(batch, n)`` ``int64`` array when NumPy is available, else a list
    of coefficient lists.
    """
    capacity = params.message_bytes
    for message in messages:
        if len(message) > capacity:
            raise ValueError(
                f"message of {len(message)} bytes exceeds the "
                f"{capacity}-byte capacity of {params.name}"
            )
    np = get_numpy()
    if np is None:
        return [encode_bytes(message, params) for message in messages]
    batch = len(messages)
    padded = bytearray(batch * capacity)
    for i, message in enumerate(messages):
        padded[i * capacity : i * capacity + len(message)] = message
    bits = np.unpackbits(
        np.frombuffer(bytes(padded), dtype=np.uint8).reshape(
            batch, capacity
        ),
        axis=1,
        bitorder="little",
    )
    return bits.astype(np.int64) * params.half_q


def _decode_bytes_numpy(np, poly, params: ParameterSet):
    """Vectorized threshold decode; ``None`` falls back to scalar."""
    try:
        array = np.asarray(poly, dtype=np.int64)
    except (OverflowError, TypeError, ValueError):
        # Coefficients beyond int64 (or exotic objects): the arbitrary-
        # precision scalar path handles them.
        return None
    if array.ndim != 1:
        return None
    if array.shape[0] != params.n:
        raise ValueError(f"expected {params.n} coefficients")
    q = params.q
    c = array % q
    bits = ((c > q // 4) & (c <= 3 * q // 4)).astype(np.uint8)
    return np.packbits(bits, bitorder="little").tobytes()


def decode_bytes(
    poly: Sequence[int], params: ParameterSet, length: Optional[int] = None
) -> bytes:
    """Decode a polynomial to bytes; ``length`` trims zero padding."""
    np = get_numpy()
    data = _decode_bytes_numpy(np, poly, params) if np is not None else None
    if data is None:
        data = bytes_from_bits(decode_bits(poly, params))
    if length is not None:
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        if length > len(data):
            raise ValueError("requested length exceeds capacity")
        data = data[:length]
    return data
