"""Fujisaki-Okamoto-style CCA-secure KEM over the paper's scheme.

The paper's encryption (like every textbook LPR variant) is only
CPA-secure: an active attacker who can observe decryption behaviour of
chosen ciphertexts can mount reaction attacks.  The standard hardening —
the route Kyber and NewHope-CCA later took — is the Fujisaki-Okamoto
transform:

* **Encapsulation**: pick a random message ``m``; derive *all*
  encryption randomness deterministically as ``G(m, pk)``; send
  ``c = Enc(pk, m; G(m, pk))``; output the session key ``K = H(m, c)``.
* **Decapsulation**: recover ``m' = Dec(sk, c)``, *re-encrypt* it with
  the same derived randomness, and reject unless the re-encryption
  reproduces ``c`` exactly.  Any tampering with ``c`` is caught because
  the attacker cannot produce a matching (message, randomness) pair.

The deterministic re-encryption is exact here because every consumer of
randomness in the scheme (the three Gaussian samplings) runs on the
:class:`repro.trng.drbg.HashDrbgBitSource` seeded from ``G``.

Caveat kept honest: implicit in FO is that decryption is correct; the
scheme's ~1% decryption-failure rate (legacy parameters) surfaces as a
rejection, so callers retry exactly as with the plain KEM.  (Modern
schemes pick failure rates < 2^-128 so this cannot be exploited;
quantifying the gap is part of this reproduction's failure analysis.)
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.core import encoding
from repro.core.params import ParameterSet
from repro.core.scheme import (
    Ciphertext,
    PrivateKey,
    PublicKey,
    RlweEncryptionScheme,
)
from repro.trng.bitsource import BitSource
from repro.trng.drbg import HashDrbgBitSource

#: Random message bytes transported per encapsulation.
MESSAGE_BYTES = 32


class CcaRejection(Exception):
    """Decapsulation rejected the ciphertext (tampering or failure)."""


@dataclass(frozen=True)
class CcaEncapsulation:
    ciphertext: Ciphertext


@dataclass(frozen=True)
class CcaSharedSecret:
    key: bytes


def _public_key_digest(public: PublicKey) -> bytes:
    h = hashlib.sha256()
    h.update(public.params.name.encode())
    for c in public.a_hat:
        h.update(c.to_bytes(2, "little"))
    for c in public.p_hat:
        h.update(c.to_bytes(2, "little"))
    return h.digest()


def _randomness_seed(message: bytes, public: PublicKey) -> bytes:
    """G(m, pk): the seed of the deterministic encryption randomness."""
    return hashlib.sha256(
        b"fo-G|" + message + _public_key_digest(public)
    ).digest()


def _ciphertext_digest(ct: Ciphertext) -> bytes:
    h = hashlib.sha256()
    for c in ct.c1_hat:
        h.update(c.to_bytes(2, "little"))
    for c in ct.c2_hat:
        h.update(c.to_bytes(2, "little"))
    return h.digest()


def _session_key(message: bytes, ct: Ciphertext) -> bytes:
    """H(m, c): the final shared secret."""
    return hashlib.sha256(
        b"fo-H|" + message + _ciphertext_digest(ct)
    ).digest()


def _deterministic_encrypt(
    params: ParameterSet,
    public: PublicKey,
    message: bytes,
    backend=None,
) -> Ciphertext:
    """Enc(pk, m; G(m, pk)) — all sampler bits from the DRBG.

    The backend only changes how fast the arithmetic runs, never its
    result, so re-encryption checks agree across backends.
    """
    drbg = HashDrbgBitSource(_randomness_seed(message, public))
    scheme = RlweEncryptionScheme(params, bits=drbg, backend=backend)
    return scheme.encrypt_polynomial(
        public, encoding.encode_bytes(message, params)
    )


class FujisakiOkamotoKem:
    """CCA-secure KEM via re-encryption checking.

    ``entropy`` supplies only the *message* randomness at encapsulation
    time; everything else is derived.  ``backend`` is a compute-backend
    spec (name or :class:`repro.backend.PolyBackend`) threaded through
    every internal encryption/decryption.
    """

    def __init__(
        self, params: ParameterSet, entropy: BitSource, backend=None
    ):
        if params.message_bytes < MESSAGE_BYTES:
            raise ValueError(
                f"{params.name} cannot carry a {MESSAGE_BYTES}-byte message"
            )
        self.params = params
        self.entropy = entropy
        self.backend = backend

    def encapsulate(
        self, public: PublicKey
    ) -> "tuple[CcaEncapsulation, CcaSharedSecret]":
        message = bytes(
            self.entropy.bits(8) for _ in range(MESSAGE_BYTES)
        )
        ciphertext = _deterministic_encrypt(
            self.params, public, message, backend=self.backend
        )
        return (
            CcaEncapsulation(ciphertext),
            CcaSharedSecret(_session_key(message, ciphertext)),
        )

    def decapsulate(
        self,
        private: PrivateKey,
        public: PublicKey,
        encapsulation: CcaEncapsulation,
    ) -> CcaSharedSecret:
        ct = encapsulation.ciphertext
        # Decryption needs no RNG.
        scheme = RlweEncryptionScheme(self.params, backend=self.backend)
        recovered = scheme.decrypt(private, ct, length=MESSAGE_BYTES)
        # Re-encrypt deterministically and compare bit for bit.
        reencrypted = _deterministic_encrypt(
            self.params, public, recovered, backend=self.backend
        )
        same = hmac.compare_digest(
            _ciphertext_digest(reencrypted), _ciphertext_digest(ct)
        )
        if not same:
            raise CcaRejection(
                "re-encryption mismatch: tampered ciphertext or "
                "decryption failure"
            )
        return CcaSharedSecret(_session_key(recovered, ct))
