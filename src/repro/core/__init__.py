"""Core ring-LWE encryption scheme (paper Section II-A)."""

from repro.core.cca import (
    CcaEncapsulation,
    CcaRejection,
    CcaSharedSecret,
    FujisakiOkamotoKem,
)
from repro.core.kem import (
    Encapsulation,
    EncapsulationError,
    RlweKem,
    SharedSecret,
    exchange_session_key,
)
from repro.core.params import (
    P1,
    P2,
    P3,
    P4,
    PARAMETER_SETS,
    ParameterSet,
    custom_parameter_set,
    get_parameter_set,
)
from repro.core.ring import Domain, RingElement
from repro.core.scheme import (
    Ciphertext,
    KeyPair,
    PrivateKey,
    PublicKey,
    RlweEncryptionScheme,
)

__all__ = [
    "Domain",
    "RingElement",
    "FujisakiOkamotoKem",
    "CcaEncapsulation",
    "CcaRejection",
    "CcaSharedSecret",
    "RlweKem",
    "Encapsulation",
    "EncapsulationError",
    "SharedSecret",
    "exchange_session_key",
    "P1",
    "P2",
    "P3",
    "P4",
    "PARAMETER_SETS",
    "ParameterSet",
    "custom_parameter_set",
    "get_parameter_set",
    "Ciphertext",
    "KeyPair",
    "PrivateKey",
    "PublicKey",
    "RlweEncryptionScheme",
]
