"""Object-oriented view of the ring Rq = Z_q[x] / (x^n + 1).

The scheme code works on bare coefficient lists (mirroring the embedded
implementation); this module offers the ergonomic layer a library user
expects: a :class:`RingElement` with operator overloading, explicit
domain tracking (coefficient domain versus NTT domain), and conversions
that refuse to mix domains silently.

    >>> from repro.core.params import P1
    >>> from repro.core.ring import RingElement
    >>> x = RingElement.monomial(P1, 1)
    >>> (x * x).degree()
    2
    >>> (x ** P1.n).coefficients[0] == P1.q - 1   # x^n = -1
    True
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List, Sequence, Union

from repro.core.params import ParameterSet
from repro.ntt.polymul import schoolbook_negacyclic


class Domain(Enum):
    """Which representation the coefficient vector is in."""

    COEFFICIENT = "coefficient"
    NTT = "ntt"


@dataclass(frozen=True)
class RingElement:
    """An immutable element of Rq with domain tracking."""

    params: ParameterSet
    coefficients: "tuple[int, ...]"
    domain: Domain = Domain.COEFFICIENT

    def __post_init__(self) -> None:
        if len(self.coefficients) != self.params.n:
            raise ValueError(
                f"need {self.params.n} coefficients, "
                f"got {len(self.coefficients)}"
            )
        if any(not 0 <= c < self.params.q for c in self.coefficients):
            raise ValueError("coefficients must lie in [0, q)")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coefficients(
        cls,
        params: ParameterSet,
        values: Iterable[int],
        domain: Domain = Domain.COEFFICIENT,
    ) -> "RingElement":
        q = params.q
        return cls(params, tuple(v % q for v in values), domain)

    @classmethod
    def zero(cls, params: ParameterSet) -> "RingElement":
        return cls(params, (0,) * params.n)

    @classmethod
    def one(cls, params: ParameterSet) -> "RingElement":
        return cls(params, (1,) + (0,) * (params.n - 1))

    @classmethod
    def monomial(
        cls, params: ParameterSet, degree: int, coefficient: int = 1
    ) -> "RingElement":
        """c * x^degree, with x^n = -1 reduction applied."""
        q = params.q
        n = params.n
        coefficient %= q
        # x^(n + k) = -x^k.
        wraps, degree = divmod(degree, n)
        if wraps % 2:
            coefficient = (-coefficient) % q
        values = [0] * n
        values[degree] = coefficient
        return cls(params, tuple(values))

    # ------------------------------------------------------------------
    # Domain conversions
    # ------------------------------------------------------------------
    def to_ntt(self, implementation=None) -> "RingElement":
        """Forward negacyclic NTT; no-op guard against double transform.

        ``implementation`` is a compute-backend spec: a registered name
        (``"python-reference"``, ``"python-packed"``, ``"numpy"``), a
        legacy kernel alias (``"reference"`` / ``"packed"``), or a
        :class:`repro.backend.PolyBackend` instance.  ``None`` resolves
        the session default (``REPRO_BACKEND`` or the pure-Python
        reference kernels) — all backends are bit-identical.
        """
        from repro.backend import resolve_backend

        if self.domain is Domain.NTT:
            raise ValueError("element is already in the NTT domain")
        backend = resolve_backend(implementation)
        return RingElement(
            self.params,
            tuple(backend.ntt_forward(list(self.coefficients), self.params)),
            Domain.NTT,
        )

    def from_ntt(self, implementation=None) -> "RingElement":
        from repro.backend import resolve_backend

        if self.domain is Domain.COEFFICIENT:
            raise ValueError("element is not in the NTT domain")
        backend = resolve_backend(implementation)
        return RingElement(
            self.params,
            tuple(backend.ntt_inverse(list(self.coefficients), self.params)),
            Domain.COEFFICIENT,
        )

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "RingElement") -> None:
        # Compare by value: two equal-valued ParameterSet instances
        # describe the same ring even when they are distinct objects.
        if self.params != other.params:
            raise ValueError("elements belong to different rings")
        if self.domain is not other.domain:
            raise ValueError(
                "cannot mix coefficient-domain and NTT-domain elements"
            )

    def __add__(self, other: "RingElement") -> "RingElement":
        self._check_compatible(other)
        q = self.params.q
        return RingElement(
            self.params,
            tuple(
                (a + b) % q
                for a, b in zip(self.coefficients, other.coefficients)
            ),
            self.domain,
        )

    def __sub__(self, other: "RingElement") -> "RingElement":
        self._check_compatible(other)
        q = self.params.q
        return RingElement(
            self.params,
            tuple(
                (a - b) % q
                for a, b in zip(self.coefficients, other.coefficients)
            ),
            self.domain,
        )

    def __neg__(self) -> "RingElement":
        q = self.params.q
        return RingElement(
            self.params,
            tuple((-a) % q for a in self.coefficients),
            self.domain,
        )

    def __mul__(
        self, other: Union["RingElement", int]
    ) -> "RingElement":
        if isinstance(other, int):
            q = self.params.q
            scalar = other % q
            return RingElement(
                self.params,
                tuple(a * scalar % q for a in self.coefficients),
                self.domain,
            )
        self._check_compatible(other)
        q = self.params.q
        if self.domain is Domain.NTT:
            values = tuple(
                a * b % q
                for a, b in zip(self.coefficients, other.coefficients)
            )
            return RingElement(self.params, values, Domain.NTT)
        product = schoolbook_negacyclic(
            list(self.coefficients), list(other.coefficients), self.params
        )
        return RingElement(self.params, tuple(product), Domain.COEFFICIENT)

    __rmul__ = __mul__

    def __pow__(self, exponent: int) -> "RingElement":
        if exponent < 0:
            raise ValueError("negative powers are not supported")
        result = RingElement.one(self.params)
        if self.domain is Domain.NTT:
            result = result.to_ntt()
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            exponent >>= 1
            if exponent:
                base = base * base
        return result

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def degree(self) -> int:
        """Largest index with a nonzero coefficient (-1 for zero)."""
        for i in range(self.params.n - 1, -1, -1):
            if self.coefficients[i]:
                return i
        return -1

    def is_zero(self) -> bool:
        return all(c == 0 for c in self.coefficients)

    def centered(self) -> List[int]:
        """Coefficients mapped to (-q/2, q/2]."""
        q = self.params.q
        return [c if c <= q // 2 else c - q for c in self.coefficients]

    def infinity_norm(self) -> int:
        """Max |coefficient| over the centered representation."""
        return max((abs(c) for c in self.centered()), default=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        head = ", ".join(str(c) for c in self.coefficients[:4])
        return (
            f"RingElement({self.params.name}, [{head}, ...], "
            f"{self.domain.value})"
        )
