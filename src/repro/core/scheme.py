"""The ring-LWE public-key encryption scheme (Section II-A).

This is the LPR encryption scheme in the NTT-optimised formulation of Roy
et al. (CHES 2014) that the paper implements: keys and ciphertexts live in
the NTT domain, which minimises the number of NTT operations per
encryption (three forward transforms) and decryption (one inverse
transform).

    KeyGen(a_hat):  r1, r2 <- X_sigma
                    r1_hat = NTT(r1);  r2_hat = NTT(r2)
                    p_hat  = r1_hat - a_hat * r2_hat        (pointwise)
                    public key (a_hat, p_hat), private key r2_hat

    Encrypt(a_hat, p_hat, m):
                    e1, e2, e3 <- X_sigma;  mbar = encode(m)
                    e1_hat = NTT(e1);  e2_hat = NTT(e2)
                    c1_hat = a_hat * e1_hat + e2_hat
                    c2_hat = p_hat * e1_hat + NTT(e3 + mbar)

    Decrypt(c1_hat, c2_hat, r2_hat):
                    m' = INTT(c1_hat * r2_hat + c2_hat);  decode(m')

Correctness: in the polynomial domain the decoder sees
``r1*e1 + r2*e2 + e3 + mbar`` — four small terms around the encoded
message; each coefficient decodes correctly unless the combined error
exceeds q/4 (failure probability analysed in
:mod:`repro.core.failures`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core import encoding
from repro.core.params import ParameterSet
from repro.ntt.polymul import (
    ntt_implementation,
    pointwise_add,
    pointwise_multiply,
    pointwise_subtract,
)
from repro.sampler.lut_sampler import LutKnuthYaoSampler
from repro.sampler.pmat import ProbabilityMatrix
from repro.trng.bitsource import BitSource, PrngBitSource
from repro.trng.xorshift import Xorshift128


@dataclass(frozen=True)
class PublicKey:
    """NTT-domain public key (a_hat, p_hat)."""

    params: ParameterSet
    a_hat: "tuple[int, ...]"
    p_hat: "tuple[int, ...]"


@dataclass(frozen=True)
class PrivateKey:
    """NTT-domain private key r2_hat."""

    params: ParameterSet
    r2_hat: "tuple[int, ...]"


@dataclass(frozen=True)
class KeyPair:
    public: PublicKey
    private: PrivateKey


@dataclass(frozen=True)
class Ciphertext:
    """NTT-domain ciphertext (c1_hat, c2_hat)."""

    params: ParameterSet
    c1_hat: "tuple[int, ...]"
    c2_hat: "tuple[int, ...]"


class RlweEncryptionScheme:
    """The paper's encryption scheme over one parameter set.

    Parameters
    ----------
    params:
        One of :data:`repro.core.params.P1` / :data:`~repro.core.params.P2`
        (or a custom NTT-friendly set).
    bits:
        Randomness source; defaults to a fresh xorshift-backed source.
        Pass a seeded source for reproducible keys/ciphertexts.
    ntt:
        Kernel pair name (``"reference"`` or ``"packed"``); both are
        bit-identical, so this only matters for speed.
    """

    def __init__(
        self,
        params: ParameterSet,
        bits: Optional[BitSource] = None,
        ntt: str = "reference",
    ):
        self.params = params
        if bits is None:
            bits = PrngBitSource(Xorshift128())
        self.bits = bits
        self._forward, self._inverse = ntt_implementation(ntt)
        self._sampler = LutKnuthYaoSampler(
            ProbabilityMatrix.for_params(params), params.q, bits
        )

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def sample_error_polynomial(self) -> List[int]:
        """One error polynomial from X_sigma (coefficients in [0, q))."""
        return self._sampler.sample_polynomial(self.params.n)

    def random_public_polynomial(self) -> List[int]:
        """A uniform a_hat (the scheme's global polynomial), NTT domain.

        The polynomial a is uniform in Rq, and the NTT is a bijection on
        Rq, so a_hat may be drawn uniformly directly — standard practice.
        """
        q = self.params.q
        coeff_bits = self.params.coefficient_bits
        out = []
        while len(out) < self.params.n:
            candidate = self.bits.bits(coeff_bits)
            if candidate < q:  # rejection keeps the distribution uniform
                out.append(candidate)
        return out

    # ------------------------------------------------------------------
    # Scheme operations
    # ------------------------------------------------------------------
    def generate_keypair(
        self, a_hat: Optional[Sequence[int]] = None
    ) -> KeyPair:
        """KeyGen(a_hat); draws a fresh a_hat when none is supplied."""
        params = self.params
        if a_hat is None:
            a_hat = self.random_public_polynomial()
        elif len(a_hat) != params.n:
            raise ValueError(f"a_hat must have {params.n} coefficients")
        r1 = self.sample_error_polynomial()
        r2 = self.sample_error_polynomial()
        r1_hat = self._forward(r1, params)
        r2_hat = self._forward(r2, params)
        p_hat = pointwise_subtract(
            r1_hat, pointwise_multiply(a_hat, r2_hat, params), params
        )
        return KeyPair(
            public=PublicKey(params, tuple(a_hat), tuple(p_hat)),
            private=PrivateKey(params, tuple(r2_hat)),
        )

    def encrypt_polynomial(
        self, public: PublicKey, message_poly: Sequence[int]
    ) -> Ciphertext:
        """Encrypt an already-encoded message polynomial."""
        params = self.params
        if public.params is not params:
            raise ValueError("public key belongs to a different parameter set")
        if len(message_poly) != params.n:
            raise ValueError(f"message polynomial must have {params.n} coefficients")
        e1 = self.sample_error_polynomial()
        e2 = self.sample_error_polynomial()
        e3 = self.sample_error_polynomial()
        e3_plus_m = pointwise_add(e3, message_poly, params)
        e1_hat = self._forward(e1, params)
        e2_hat = self._forward(e2, params)
        e3m_hat = self._forward(e3_plus_m, params)
        c1_hat = pointwise_add(
            pointwise_multiply(public.a_hat, e1_hat, params), e2_hat, params
        )
        c2_hat = pointwise_add(
            pointwise_multiply(public.p_hat, e1_hat, params), e3m_hat, params
        )
        return Ciphertext(params, tuple(c1_hat), tuple(c2_hat))

    def decrypt_polynomial(
        self, private: PrivateKey, ciphertext: Ciphertext
    ) -> List[int]:
        """Decrypt to the noisy message polynomial (before thresholding)."""
        params = self.params
        if private.params is not params or ciphertext.params is not params:
            raise ValueError("key/ciphertext parameter set mismatch")
        combined = pointwise_add(
            pointwise_multiply(ciphertext.c1_hat, private.r2_hat, params),
            ciphertext.c2_hat,
            params,
        )
        return self._inverse(combined, params)

    # ------------------------------------------------------------------
    # Byte-level convenience API
    # ------------------------------------------------------------------
    def encrypt(self, public: PublicKey, message: bytes) -> Ciphertext:
        """Encrypt up to ``params.message_bytes`` bytes."""
        return self.encrypt_polynomial(
            public, encoding.encode_bytes(message, self.params)
        )

    def decrypt(
        self,
        private: PrivateKey,
        ciphertext: Ciphertext,
        length: Optional[int] = None,
    ) -> bytes:
        """Decrypt and threshold-decode to bytes."""
        noisy = self.decrypt_polynomial(private, ciphertext)
        return encoding.decode_bytes(noisy, self.params, length)
