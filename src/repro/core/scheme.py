"""The ring-LWE public-key encryption scheme (Section II-A).

This is the LPR encryption scheme in the NTT-optimised formulation of Roy
et al. (CHES 2014) that the paper implements: keys and ciphertexts live in
the NTT domain, which minimises the number of NTT operations per
encryption (three forward transforms) and decryption (one inverse
transform).

    KeyGen(a_hat):  r1, r2 <- X_sigma
                    r1_hat = NTT(r1);  r2_hat = NTT(r2)
                    p_hat  = r1_hat - a_hat * r2_hat        (pointwise)
                    public key (a_hat, p_hat), private key r2_hat

    Encrypt(a_hat, p_hat, m):
                    e1, e2, e3 <- X_sigma;  mbar = encode(m)
                    e1_hat = NTT(e1);  e2_hat = NTT(e2)
                    c1_hat = a_hat * e1_hat + e2_hat
                    c2_hat = p_hat * e1_hat + NTT(e3 + mbar)

    Decrypt(c1_hat, c2_hat, r2_hat):
                    m' = INTT(c1_hat * r2_hat + c2_hat);  decode(m')

Correctness: in the polynomial domain the decoder sees
``r1*e1 + r2*e2 + e3 + mbar`` — four small terms around the encoded
message; each coefficient decodes correctly unless the combined error
exceeds q/4 (failure probability analysed in
:mod:`repro.core.failures`).
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.backend import PolyBackend, resolve_backend
from repro.core import encoding
from repro.core.params import ParameterSet
from repro.sampler.lut_sampler import LutKnuthYaoSampler
from repro.sampler.pmat import ProbabilityMatrix
from repro.trng.bitsource import BitSource, PrngBitSource
from repro.trng.xorshift import Xorshift128

BackendSpec = Union[None, str, PolyBackend]


@dataclass(frozen=True)
class PublicKey:
    """NTT-domain public key (a_hat, p_hat)."""

    params: ParameterSet
    a_hat: "tuple[int, ...]"
    p_hat: "tuple[int, ...]"


@dataclass(frozen=True)
class PrivateKey:
    """NTT-domain private key r2_hat."""

    params: ParameterSet
    r2_hat: "tuple[int, ...]"


@dataclass(frozen=True)
class KeyPair:
    public: PublicKey
    private: PrivateKey


@dataclass(frozen=True)
class Ciphertext:
    """NTT-domain ciphertext (c1_hat, c2_hat)."""

    params: ParameterSet
    c1_hat: "tuple[int, ...]"
    c2_hat: "tuple[int, ...]"


class RlweEncryptionScheme:
    """The paper's encryption scheme over one parameter set.

    Parameters
    ----------
    params:
        One of :data:`repro.core.params.P1` / :data:`~repro.core.params.P2`
        (or a custom NTT-friendly set).
    bits:
        Randomness source; defaults to a fresh xorshift-backed source.
        Pass a seeded source for reproducible keys/ciphertexts.
    ntt:
        Legacy kernel-pair spec (``"reference"`` or ``"packed"``); kept
        for backwards compatibility and now resolved through the
        compute-backend registry.
    backend:
        Compute-backend spec — a registered name
        (``"python-reference"``, ``"python-packed"``, ``"numpy"``) or a
        :class:`repro.backend.PolyBackend` instance.  Takes precedence
        over ``ntt``.  When both are omitted the session default applies
        (the ``REPRO_BACKEND`` environment variable, falling back to the
        pure-Python reference kernels), so behavior without NumPy is
        unchanged from the pre-backend code.

    All backends are bit-identical, so the choice only matters for
    speed.
    """

    def __init__(
        self,
        params: ParameterSet,
        bits: Optional[BitSource] = None,
        ntt: Optional[str] = None,
        backend: BackendSpec = None,
    ):
        self.params = params
        if bits is None:
            bits = PrngBitSource(Xorshift128())
        self.bits = bits
        self.backend = resolve_backend(backend if backend is not None else ntt)
        # Backends may provide an accelerated (bit-identical) sampler —
        # the compiled tier runs the Knuth-Yao loops in C.
        make_sampler = getattr(self.backend, "make_sampler", None)
        if make_sampler is None:
            self._sampler = LutKnuthYaoSampler(
                ProbabilityMatrix.for_params(params), params.q, bits
            )
        else:
            self._sampler = make_sampler(
                ProbabilityMatrix.for_params(params), params.q, bits
            )

    def _forward(self, poly: Sequence[int], params: ParameterSet) -> List[int]:
        return self.backend.ntt_forward(poly, params)

    def _inverse(self, poly: Sequence[int], params: ParameterSet) -> List[int]:
        return self.backend.ntt_inverse(poly, params)

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def sample_error_polynomial(self) -> List[int]:
        """One error polynomial from X_sigma (coefficients in [0, q))."""
        return self._sampler.sample_polynomial(self.params.n)

    def random_public_polynomial(self) -> List[int]:
        """A uniform a_hat (the scheme's global polynomial), NTT domain.

        The polynomial a is uniform in Rq, and the NTT is a bijection on
        Rq, so a_hat may be drawn uniformly directly — standard practice.
        """
        q = self.params.q
        coeff_bits = self.params.coefficient_bits
        out = []
        while len(out) < self.params.n:
            candidate = self.bits.bits(coeff_bits)
            if candidate < q:  # rejection keeps the distribution uniform
                out.append(candidate)
        return out

    # ------------------------------------------------------------------
    # Scheme operations
    # ------------------------------------------------------------------
    def generate_keypair(
        self, a_hat: Optional[Sequence[int]] = None
    ) -> KeyPair:
        """KeyGen(a_hat); draws a fresh a_hat when none is supplied."""
        params = self.params
        if a_hat is None:
            a_hat = self.random_public_polynomial()
        elif len(a_hat) != params.n:
            raise ValueError(f"a_hat must have {params.n} coefficients")
        be = self.backend
        r1 = self.sample_error_polynomial()
        r2 = self.sample_error_polynomial()
        r1_hat = self._forward(r1, params)
        r2_hat = self._forward(r2, params)
        p_hat = be.pointwise_sub(
            r1_hat, be.pointwise_mul(list(a_hat), r2_hat, params), params
        )
        return KeyPair(
            public=PublicKey(params, tuple(a_hat), tuple(p_hat)),
            private=PrivateKey(params, tuple(r2_hat)),
        )

    def encrypt_polynomial(
        self, public: PublicKey, message_poly: Sequence[int]
    ) -> Ciphertext:
        """Encrypt an already-encoded message polynomial."""
        params = self.params
        if public.params != params:
            raise ValueError("public key belongs to a different parameter set")
        if len(message_poly) != params.n:
            raise ValueError(f"message polynomial must have {params.n} coefficients")
        be = self.backend
        # One fused draw: identical bit stream to three sequential
        # sample_error_polynomial() calls on every sampler.
        e_polys = self._sampler.sample_polynomials(params.n, 3)
        fused = getattr(be, "encrypt_polynomial_core", None)
        if fused is not None:
            result = fused(
                public.a_hat, public.p_hat, e_polys,
                list(message_poly), params,
            )
            if result is not None:
                c1_hat, c2_hat = result
                return Ciphertext(params, tuple(c1_hat), tuple(c2_hat))
        e1, e2, e3 = e_polys
        e3_plus_m = be.pointwise_add(e3, list(message_poly), params)
        e1_hat = self._forward(e1, params)
        e2_hat = self._forward(e2, params)
        e3m_hat = self._forward(e3_plus_m, params)
        c1_hat = be.pointwise_add(
            be.pointwise_mul(list(public.a_hat), e1_hat, params),
            e2_hat,
            params,
        )
        c2_hat = be.pointwise_add(
            be.pointwise_mul(list(public.p_hat), e1_hat, params),
            e3m_hat,
            params,
        )
        return Ciphertext(params, tuple(c1_hat), tuple(c2_hat))

    def decrypt_polynomial(
        self, private: PrivateKey, ciphertext: Ciphertext
    ) -> List[int]:
        """Decrypt to the noisy message polynomial (before thresholding)."""
        params = self.params
        if private.params != params or ciphertext.params != params:
            raise ValueError("key/ciphertext parameter set mismatch")
        be = self.backend
        combined = be.pointwise_add(
            be.pointwise_mul(
                list(ciphertext.c1_hat), list(private.r2_hat), params
            ),
            list(ciphertext.c2_hat),
            params,
        )
        return self._inverse(combined, params)

    # ------------------------------------------------------------------
    # Byte-level convenience API
    # ------------------------------------------------------------------
    def encrypt(self, public: PublicKey, message: bytes) -> Ciphertext:
        """Encrypt up to ``params.message_bytes`` bytes."""
        return self.encrypt_polynomial(
            public, encoding.encode_bytes(message, self.params)
        )

    def decrypt(
        self,
        private: PrivateKey,
        ciphertext: Ciphertext,
        length: Optional[int] = None,
    ) -> bytes:
        """Decrypt and threshold-decode to bytes."""
        noisy = self.decrypt_polynomial(private, ciphertext)
        return encoding.decode_bytes(noisy, self.params, length)

    # ------------------------------------------------------------------
    # Batched (throughput) API
    # ------------------------------------------------------------------
    #
    # The batched entry points process many messages per call: error
    # polynomials come from the phased block sampler
    # (:meth:`repro.sampler.lut_sampler.LutKnuthYaoSampler.sample_block`)
    # and all transforms/pointwise arithmetic run as one backend batch
    # call, which the NumPy backend executes as 2-D array programs.
    #
    # Determinism: under a seeded bit source a batch is reproducible and
    # backend-independent, but it consumes randomness in block order
    # (all e1/e2/e3 of the whole batch first), so a batch of size B does
    # NOT produce the same ciphertexts as B sequential ``encrypt`` calls
    # with the same seed.

    def encrypt_polynomial_batch(
        self, public: PublicKey, message_polys: Sequence[Sequence[int]]
    ) -> List[Ciphertext]:
        """Encrypt a batch of already-encoded message polynomials."""
        params = self.params
        if public.params != params:
            raise ValueError("public key belongs to a different parameter set")
        batch = len(message_polys)
        if batch == 0:
            return []
        for poly in message_polys:
            if len(poly) != params.n:
                raise ValueError(
                    f"message polynomial must have {params.n} coefficients"
                )
        be = self.backend
        errors = self._sampler.sample_polynomial_block(3 * batch, params.n)
        e1, e2, e3 = errors[0::3], errors[1::3], errors[2::3]
        e3_plus_m = be.pointwise_add_batch(
            be.matrix(e3), be.matrix(message_polys), params
        )
        transformed = be.ntt_forward_batch(
            be.stack([be.matrix(e1), be.matrix(e2), e3_plus_m]), params
        )
        e1_hat = transformed[:batch]
        e2_hat = transformed[batch : 2 * batch]
        e3m_hat = transformed[2 * batch :]
        a_row = list(public.a_hat)
        p_row = list(public.p_hat)
        c1 = be.pointwise_add_batch(
            be.pointwise_mul_batch(e1_hat, a_row, params), e2_hat, params
        )
        c2 = be.pointwise_add_batch(
            be.pointwise_mul_batch(e1_hat, p_row, params), e3m_hat, params
        )
        return [
            Ciphertext(params, tuple(row1), tuple(row2))
            for row1, row2 in zip(be.rows(c1), be.rows(c2))
        ]

    def decrypt_polynomial_batch(
        self, private: PrivateKey, ciphertexts: Sequence[Ciphertext]
    ) -> List[List[int]]:
        """Decrypt a batch to noisy message polynomials."""
        params = self.params
        if private.params != params:
            raise ValueError("private key belongs to a different parameter set")
        if not ciphertexts:
            return []
        for ct in ciphertexts:
            if ct.params != params:
                raise ValueError("ciphertext parameter set mismatch")
        be = self.backend
        c1 = be.matrix([ct.c1_hat for ct in ciphertexts])
        c2 = be.matrix([ct.c2_hat for ct in ciphertexts])
        combined = be.pointwise_add_batch(
            be.pointwise_mul_batch(c1, list(private.r2_hat), params),
            c2,
            params,
        )
        return be.rows(be.ntt_inverse_batch(combined, params))

    # ------------------------------------------------------------------
    # Multi-key batched API (cross-key fused windows)
    # ------------------------------------------------------------------
    #
    # The ``_multi`` variants carry one small *key table* per call plus a
    # per-item row index into it, so a single fused coalescer window can
    # mix items under different keypairs while still running every NTT
    # and pointwise op as one backend batch call.  Randomness is
    # consumed in exactly the same block order as the single-key batch
    # entry points, and a one-key table with all-zero rows degenerates
    # to the broadcast path — bit-identical by exact mod-q arithmetic.

    #: Per-flush key tables recur window after window (the coalescer
    #: round-robins the same hot keys), so memoize the tuple-to-backend
    #: matrix conversion.  Entries are keyed by the key objects'
    #: *identities* — O(table) per lookup instead of hashing every
    #: coefficient — and guarded by weakrefs: a hit only counts when
    #: every id still names the same live object, so id reuse after GC
    #: can never alias a stale matrix.  Key objects are immutable and
    #: backend ops never mutate operands, so a cached matrix stays
    #: valid for the life of its keys.  Bounded LRU: at the 64-entry
    #: cap the worst case is a few MB of rows.
    _KEY_MATRIX_CACHE: "OrderedDict" = OrderedDict()
    _KEY_MATRIX_CACHE_MAX = 64

    def _key_matrix(self, keys: tuple, attr: str):
        cache = RlweEncryptionScheme._KEY_MATRIX_CACHE
        cache_key = (self.backend.name, attr, tuple(map(id, keys)))
        entry = cache.get(cache_key)
        if entry is not None:
            refs, matrix = entry
            if all(ref() is key for ref, key in zip(refs, keys)):
                cache.move_to_end(cache_key)
                return matrix
            del cache[cache_key]
        matrix = self.backend.matrix(
            [list(getattr(key, attr)) for key in keys]
        )
        cache[cache_key] = (
            tuple(weakref.ref(key) for key in keys),
            matrix,
        )
        while len(cache) > RlweEncryptionScheme._KEY_MATRIX_CACHE_MAX:
            cache.popitem(last=False)
        return matrix

    def _check_key_rows(
        self, keys: Sequence, key_rows: Sequence[int], batch: int
    ) -> None:
        if len(key_rows) != batch:
            raise ValueError("key row count differs from batch size")
        if not keys:
            raise ValueError("key table must not be empty")
        for row in key_rows:
            if not 0 <= row < len(keys):
                raise ValueError(
                    f"key row {row} out of range for a "
                    f"{len(keys)}-key table"
                )

    def encrypt_polynomial_batch_multi(
        self,
        publics: Sequence[PublicKey],
        key_rows: Sequence[int],
        message_polys: Sequence[Sequence[int]],
    ) -> List[Ciphertext]:
        """Encrypt a batch where item ``i`` uses ``publics[key_rows[i]]``."""
        params = self.params
        batch = len(message_polys)
        if batch == 0:
            return []
        self._check_key_rows(publics, key_rows, batch)
        for public in publics:
            if public.params != params:
                raise ValueError(
                    "public key belongs to a different parameter set"
                )
        for poly in message_polys:
            if len(poly) != params.n:
                raise ValueError(
                    f"message polynomial must have {params.n} coefficients"
                )
        be = self.backend
        errors = self._sampler.sample_polynomial_block(3 * batch, params.n)
        e1, e2, e3 = errors[0::3], errors[1::3], errors[2::3]
        e3_plus_m = be.pointwise_add_batch(
            be.matrix(e3), be.matrix(message_polys), params
        )
        transformed = be.ntt_forward_batch(
            be.stack([be.matrix(e1), be.matrix(e2), e3_plus_m]), params
        )
        e1_hat = transformed[:batch]
        e2_hat = transformed[batch : 2 * batch]
        e3m_hat = transformed[2 * batch :]
        key_table = tuple(publics)
        a_matrix = self._key_matrix(key_table, "a_hat")
        p_matrix = self._key_matrix(key_table, "p_hat")
        c1 = be.pointwise_add_batch(
            be.pointwise_mul_rows(e1_hat, a_matrix, key_rows, params),
            e2_hat,
            params,
        )
        c2 = be.pointwise_add_batch(
            be.pointwise_mul_rows(e1_hat, p_matrix, key_rows, params),
            e3m_hat,
            params,
        )
        return [
            Ciphertext(params, tuple(row1), tuple(row2))
            for row1, row2 in zip(be.rows(c1), be.rows(c2))
        ]

    def decrypt_polynomial_batch_multi(
        self,
        privates: Sequence[PrivateKey],
        key_rows: Sequence[int],
        ciphertexts: Sequence[Ciphertext],
    ) -> List[List[int]]:
        """Decrypt a batch where item ``i`` uses ``privates[key_rows[i]]``."""
        params = self.params
        if not ciphertexts:
            return []
        self._check_key_rows(privates, key_rows, len(ciphertexts))
        for private in privates:
            if private.params != params:
                raise ValueError(
                    "private key belongs to a different parameter set"
                )
        for ct in ciphertexts:
            if ct.params != params:
                raise ValueError("ciphertext parameter set mismatch")
        be = self.backend
        c1 = be.matrix([ct.c1_hat for ct in ciphertexts])
        c2 = be.matrix([ct.c2_hat for ct in ciphertexts])
        r2_matrix = self._key_matrix(tuple(privates), "r2_hat")
        combined = be.pointwise_add_batch(
            be.pointwise_mul_rows(c1, r2_matrix, key_rows, params),
            c2,
            params,
        )
        return be.rows(be.ntt_inverse_batch(combined, params))

    def encrypt_batch_multi(
        self,
        publics: Sequence[PublicKey],
        key_rows: Sequence[int],
        messages: Sequence[bytes],
    ) -> List[Ciphertext]:
        """Encrypt many byte messages with per-item public keys."""
        return self.encrypt_polynomial_batch_multi(
            publics,
            key_rows,
            encoding.encode_bytes_batch(messages, self.params),
        )

    def decrypt_batch_multi(
        self,
        privates: Sequence[PrivateKey],
        key_rows: Sequence[int],
        ciphertexts: Sequence[Ciphertext],
        length: Optional[int] = None,
    ) -> List[bytes]:
        """Decrypt a batch to bytes with per-item private keys."""
        return [
            encoding.decode_bytes(noisy, self.params, length)
            for noisy in self.decrypt_polynomial_batch_multi(
                privates, key_rows, ciphertexts
            )
        ]

    def encrypt_batch(
        self, public: PublicKey, messages: Sequence[bytes]
    ) -> List[Ciphertext]:
        """Encrypt many byte messages (each up to ``message_bytes``)."""
        return self.encrypt_polynomial_batch(
            public, encoding.encode_bytes_batch(messages, self.params)
        )

    def decrypt_batch(
        self,
        private: PrivateKey,
        ciphertexts: Sequence[Ciphertext],
        length: Optional[int] = None,
    ) -> List[bytes]:
        """Decrypt and threshold-decode a batch to bytes."""
        return [
            encoding.decode_bytes(noisy, self.params, length)
            for noisy in self.decrypt_polynomial_batch(private, ciphertexts)
        ]
