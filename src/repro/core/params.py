"""Ring-LWE parameter sets used throughout the paper.

The paper evaluates two parameter sets taken from Goettert et al. (CHES
2012):

* ``P1 = (n=256, q=7681,  sigma=11.31/sqrt(2*pi))`` — medium-term security
* ``P2 = (n=512, q=12289, sigma=12.18/sqrt(2*pi))`` — long-term security

Tables III/IV additionally reference parameter sets P3..P5 from related
work; they are provided here so the comparison benches can label their
literature rows consistently.

The Gaussian parameter is given in the paper as ``s`` with
``sigma = s / sqrt(2*pi)``; both are exposed because the sampler literature
uses ``s`` while the failure analysis uses ``sigma``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.modmath import (
    bit_length_of_coefficients,
    is_prime,
    is_primitive_root_of_unity,
    modinv,
    root_of_unity,
)

SQRT_2PI = math.sqrt(2.0 * math.pi)


@dataclass(frozen=True)
class ParameterSet:
    """One (n, q, sigma) ring-LWE parameter set.

    Attributes
    ----------
    name:
        Label used in the paper's tables (``"P1"`` .. ``"P5"``).
    n:
        Ring dimension; polynomials live in Z_q[x] / (x^n + 1).
    q:
        Coefficient modulus, a prime with q = 1 mod 2n for the NTT sets.
    s:
        Gaussian parameter as quoted in the paper (sigma * sqrt(2*pi)).
    security:
        Human-readable security level from the paper.
    ntt_friendly:
        True when q = 1 mod 2n holds, i.e. the negacyclic n-point NTT
        applies.  P4 in Table III (q = 2^32 - 1) is not NTT-friendly in
        this sense and is carried for labelling only.
    """

    name: str
    n: int
    q: int
    s: float
    security: str = ""
    ntt_friendly: bool = True

    def __post_init__(self) -> None:
        if self.n <= 0 or self.n & (self.n - 1):
            raise ValueError(f"n = {self.n} must be a power of two")
        if self.q <= 1:
            raise ValueError(f"q = {self.q} must be > 1")
        if self.ntt_friendly:
            if not is_prime(self.q):
                raise ValueError(f"q = {self.q} must be prime for NTT use")
            if (self.q - 1) % (2 * self.n) != 0:
                raise ValueError(
                    f"q = {self.q} does not satisfy q = 1 mod 2n (n={self.n})"
                )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def sigma(self) -> float:
        """Standard deviation of the error distribution."""
        return self.s / SQRT_2PI

    @property
    def coefficient_bits(self) -> int:
        """Bits required to store one coefficient in [0, q)."""
        return bit_length_of_coefficients(self.q)

    @property
    def coefficient_bytes(self) -> int:
        """Bytes per coefficient when stored as halfwords (paper layout)."""
        return 2 if self.coefficient_bits <= 16 else 4

    @property
    def message_bytes(self) -> int:
        """Payload bytes per ciphertext (one bit per coefficient)."""
        return self.n // 8

    @property
    def psi(self) -> int:
        """A primitive 2n-th root of unity (psi^n = -1 mod q)."""
        return _psi_cache(self)

    @property
    def omega(self) -> int:
        """The primitive n-th root of unity omega = psi^2 used by the NTT."""
        return self.psi * self.psi % self.q

    @property
    def psi_inverse(self) -> int:
        return modinv(self.psi, self.q)

    @property
    def omega_inverse(self) -> int:
        return modinv(self.omega, self.q)

    @property
    def n_inverse(self) -> int:
        """n^-1 mod q, the INTT scaling constant."""
        return modinv(self.n, self.q)

    @property
    def half_q(self) -> int:
        """floor(q/2): the encoding of message bit 1."""
        return self.q // 2

    @property
    def quarter_q(self) -> int:
        """floor(q/4): the decoding threshold radius."""
        return self.q // 4

    def describe(self) -> str:
        """One-line description matching the paper's footnote style."""
        return (
            f"{self.name} = ({self.n}, {self.q}, {self.s:.2f}/sqrt(2*pi))"
            + (f" [{self.security}]" if self.security else "")
        )


_PSI_CACHE: Dict[int, int] = {}


def _psi_cache(params: ParameterSet) -> int:
    key = (params.q << 20) | params.n
    if key not in _PSI_CACHE:
        psi = root_of_unity(2 * params.n, params.q)
        # Sanity: psi^n must equal -1 for the negacyclic embedding.
        if pow(psi, params.n, params.q) != params.q - 1:  # pragma: no cover
            raise ArithmeticError("psi^n != -1; root search is broken")
        if not is_primitive_root_of_unity(psi, 2 * params.n, params.q):
            raise ArithmeticError("psi is not primitive")  # pragma: no cover
        _PSI_CACHE[key] = psi
    return _PSI_CACHE[key]


# ----------------------------------------------------------------------
# The paper's parameter sets
# ----------------------------------------------------------------------
P1 = ParameterSet("P1", 256, 7681, 11.31, security="medium-term")
P2 = ParameterSet("P2", 512, 12289, 12.18, security="long-term")
# P3 appears in Table III rows quoting Oder et al. / Boorghany et al.
# (BLISS-style parameters; sigma quoted as 215 in the paper's footnote).
P3 = ParameterSet("P3", 512, 12289, 215.0 * SQRT_2PI, security="literature")
# P4 is the Bos et al. key-exchange set with a non-NTT-friendly modulus.
P4 = ParameterSet(
    "P4", 1024, (1 << 32) - 1, 8.0, security="literature", ntt_friendly=False
)

PARAMETER_SETS: Dict[str, ParameterSet] = {p.name: p for p in (P1, P2, P3, P4)}


def get_parameter_set(name: str) -> ParameterSet:
    """Look up a parameter set by name (case-insensitive)."""
    key = name.upper()
    if key not in PARAMETER_SETS:
        raise KeyError(
            f"unknown parameter set {name!r}; choose from "
            f"{sorted(PARAMETER_SETS)}"
        )
    return PARAMETER_SETS[key]


def custom_parameter_set(
    n: int, q: int, s: float, name: Optional[str] = None
) -> ParameterSet:
    """Build a validated custom NTT-friendly parameter set."""
    return ParameterSet(name or f"custom-{n}-{q}", n, q, s)
