"""Instruction-level cycle models of every kernel (Tables I and II)."""

from repro.cyclemodel.ntt_cycles import (
    bit_reverse_cycles,
    ntt_forward_alg3,
    ntt_forward_packed,
    ntt_forward_parallel3,
    ntt_inverse_packed,
    pointwise_add_cycles,
    pointwise_multiply_cycles,
    pointwise_subtract_cycles,
)
from repro.cyclemodel.ntt_simd import ntt_forward_simd, ntt_inverse_simd
from repro.cyclemodel.polymul_cycles import ntt_multiply_cycles
from repro.cyclemodel.sampler_cycles import (
    CycleKnuthYaoSampler,
    sample_polynomial_cycles,
)
from repro.cyclemodel.scheme_cycles import (
    OperationCycles,
    decrypt_cycles,
    encrypt_cycles,
    keygen_cycles,
)

__all__ = [
    "bit_reverse_cycles",
    "ntt_forward_alg3",
    "ntt_forward_packed",
    "ntt_forward_parallel3",
    "ntt_inverse_packed",
    "pointwise_add_cycles",
    "pointwise_multiply_cycles",
    "pointwise_subtract_cycles",
    "ntt_forward_simd",
    "ntt_inverse_simd",
    "ntt_multiply_cycles",
    "CycleKnuthYaoSampler",
    "sample_polynomial_cycles",
    "OperationCycles",
    "keygen_cycles",
    "encrypt_cycles",
    "decrypt_cycles",
]
