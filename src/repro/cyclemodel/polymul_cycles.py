"""Cycle model of the full NTT multiplication (Table I's last row).

"NTT multiplication" in the paper is the complete negacyclic product:
two packed forward transforms, one coefficient-wise multiplication, and
one packed inverse transform.  The result is bit-identical to
:func:`repro.ntt.polymul.ntt_multiply`.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.params import ParameterSet
from repro.cyclemodel.ntt_cycles import (
    ntt_forward_packed,
    ntt_inverse_packed,
    pointwise_multiply_cycles,
)
from repro.machine.machine import CortexM4


def ntt_multiply_cycles(
    machine: CortexM4,
    a: Sequence[int],
    b: Sequence[int],
    params: ParameterSet,
) -> List[int]:
    """Negacyclic product with full instruction accounting."""
    with machine.region("ntt_forward"):
        a_hat = ntt_forward_packed(machine, a, params)
        b_hat = ntt_forward_packed(machine, b, params)
    with machine.region("pointwise"):
        c_hat = pointwise_multiply_cycles(machine, a_hat, b_hat, params)
    with machine.region("ntt_inverse"):
        return ntt_inverse_packed(machine, c_hat, params)
