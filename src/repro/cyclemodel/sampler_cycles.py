"""Instruction-level cycle model of the Knuth-Yao samplers (Alg. 1/2).

The model reproduces the paper's entire optimization stack, each step
individually switchable so the ablation bench can quantify it:

* ``scan="bitwise"`` — the naive inner loop of Alg. 1: every matrix bit
  is extracted, subtracted and checked (the paper's "at least 8 cycles"
  per row);
* ``scan="clz"`` — Section III-B4's proposal: ``clz`` jumps straight to
  the next set bit, so zero bits cost nothing;
* ``skip_zero_words`` — Section III-B3: all-zero column words are not
  stored and never touched;
* ``use_hamming_weights`` — the alternative of Roy et al. [6] that
  Section III-B4 contrasts with the clz proposal: per-column Hamming
  weights let the walk skip any column that cannot contain its terminal
  node (``d >= weight`` implies no termination; subtract and move on);
* ``use_lut1`` / ``use_lut2`` — Section III-B5: the 256-entry and
  224-entry lookup tables replacing levels 1-8 and 9-13.

Randomness flows through any :class:`repro.trng.bitsource.BitSource`; in
cycle-accounted runs that is a :class:`repro.trng.bitpool.BitPool` wired
to the same machine, so TRNG stalls and the sentinel bookkeeping are
included exactly as in Section III-E.

Outputs are bit-exact with the functional samplers given the same bit
stream (asserted by tests/test_cyclemodel_sampler.py).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.params import ParameterSet
from repro.machine.machine import CortexM4
from repro.sampler.lut_sampler import (
    FAILURE_FLAG,
    LUT1_LEVELS,
    LUT2_LEVELS,
    SamplerLuts,
    build_luts,
)
from repro.sampler.pmat import ProbabilityMatrix
from repro.trng.bitsource import BitSource

_WORD_BITS = 32


class CycleKnuthYaoSampler:
    """Cycle-accounted Knuth-Yao sampler with switchable optimizations."""

    def __init__(
        self,
        pmat: ProbabilityMatrix,
        q: int,
        machine: CortexM4,
        bits: BitSource,
        scan: str = "clz",
        skip_zero_words: bool = True,
        use_hamming_weights: bool = False,
        use_lut1: bool = True,
        use_lut2: bool = True,
    ):
        if scan not in ("bitwise", "clz"):
            raise ValueError(f"unknown scan mode {scan!r}")
        if use_lut2 and not use_lut1:
            raise ValueError("LUT2 requires LUT1")
        self.pmat = pmat
        self.q = q
        self.machine = machine
        self.bits = bits
        self.scan = scan
        self.skip_zero_words = skip_zero_words
        self.use_hamming_weights = use_hamming_weights
        self.use_lut1 = use_lut1
        self.use_lut2 = use_lut2
        self.columns_skipped = 0
        self.luts: Optional[SamplerLuts] = (
            build_luts(pmat) if use_lut1 else None
        )
        self.samples_drawn = 0
        self.lut1_hits = 0
        self.lut2_hits = 0
        self.scan_fallbacks = 0

    # ------------------------------------------------------------------
    # Column scanning
    # ------------------------------------------------------------------
    def _scan_column(self, col: int, d: int) -> "tuple[Optional[int], int]":
        """Scan one column from MAXROW down to row 0.

        Returns (row, -1) when the terminal node is found, else (None, d).
        """
        machine = self.machine
        pmat = self.pmat
        words = pmat.column_words[col]
        for word_index in range(pmat.words_per_column - 1, -1, -1):
            word = words[word_index]
            if self.skip_zero_words:
                # The stored matrix records how many words each column
                # keeps; skipping an absent word is one bound check.
                machine.alu()
                if word == 0:
                    machine.branch(taken=True)
                    continue
                machine.branch(taken=False)
            machine.alu()  # word pointer
            machine.load()  # fetch the column word
            if self.scan == "clz":
                row, d = self._scan_word_clz(word_index, word, d)
            else:
                row, d = self._scan_word_bitwise(word_index, word, d)
            if row is not None:
                return row, -1
            machine.alu()  # word-loop bookkeeping
            machine.branch(taken=word_index > 0)
        return None, d

    def _scan_word_clz(
        self, word_index: int, word: int, d: int
    ) -> "tuple[Optional[int], int]":
        """Visit only the set bits, high row to low, via clz."""
        machine = self.machine
        register = word
        while register:
            zeros = machine.clz(register)
            position = 31 - zeros
            machine.alu(2)  # shift the processed zeros out; clear the bit
            register &= (1 << position) - 1
            d -= 1
            machine.alu()  # subtract
            machine.branch(taken=d < 0)
            if d < 0:
                return word_index * _WORD_BITS + position, -1
        machine.alu()  # final register == 0 test
        return None, d

    def _scan_word_bitwise(
        self, word_index: int, word: int, d: int
    ) -> "tuple[Optional[int], int]":
        """The naive loop: touch every row bit individually.

        Charged at the paper's observed floor of ~8 cycles per row
        iteration: extract (2 ALU), subtract + sign check (2 ALU), row
        index update + bound check (2 ALU), loop branch.
        """
        machine = self.machine
        pmat = self.pmat
        top = min(_WORD_BITS - 1, pmat.rows - 1 - word_index * _WORD_BITS)
        for bit_pos in range(top, -1, -1):
            machine.alu(6)
            machine.branch(taken=bit_pos > 0)
            if (word >> bit_pos) & 1:
                d -= 1
                if d < 0:
                    return word_index * _WORD_BITS + bit_pos, -1
        return None, d

    # ------------------------------------------------------------------
    # Walk + sign
    # ------------------------------------------------------------------
    def _bit_scan_walk(
        self, start_column: int, start_distance: int
    ) -> Optional[int]:
        machine = self.machine
        d = start_distance
        for col in range(start_column, self.pmat.columns):
            bit = self.bits.bit()
            machine.alu(2)  # d = 2d + bit
            d = 2 * d + bit
            if self.use_hamming_weights:
                weight = self.pmat.hamming_weights[col]
                machine.load()  # fetch the stored column weight
                machine.alu()  # compare d against it
                machine.branch(taken=d >= weight)
                if d >= weight:
                    # No terminal node in this level: consume the whole
                    # column arithmetically and move on ([6]'s method).
                    d -= weight
                    machine.alu()
                    self.columns_skipped += 1
                    machine.alu()
                    machine.branch(taken=col + 1 < self.pmat.columns)
                    continue
            row, d = self._scan_column(col, d)
            if row is not None:
                return row
            machine.alu()  # column loop bookkeeping
            machine.branch(taken=col + 1 < self.pmat.columns)
        return None

    def _apply_sign(self, row: int) -> int:
        machine = self.machine
        sign = self.bits.bit()
        machine.alu()  # test
        machine.branch(taken=bool(sign))
        if sign:
            machine.alu()  # rsb row, q
            return (self.q - row) % self.q
        return row

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def sample(self) -> int:
        """One sample in [0, q) under the configured optimization set."""
        machine = self.machine
        machine.call()
        try:
            self.samples_drawn += 1
            if not self.use_lut1:
                row = self._bit_scan_walk(0, 0)
                if row is None:
                    return 0
                self.scan_fallbacks += 1
                return self._apply_sign(row)

            index = self.bits.bits(LUT1_LEVELS)
            machine.load()  # LUT1 byte
            entry = self.luts.lut1[index]
            machine.alu()  # msb test
            machine.branch(taken=bool(entry & FAILURE_FLAG))
            if not entry & FAILURE_FLAG:
                self.lut1_hits += 1
                return self._apply_sign(entry)
            d = entry & ~FAILURE_FLAG & 0xFF
            machine.alu()  # clear flag

            start_column = LUT1_LEVELS
            if self.use_lut2 and self.luts.lut2:
                r5 = self.bits.bits(LUT2_LEVELS)
                machine.alu()  # build the d-major index
                machine.load()  # LUT2 byte
                entry = self.luts.lut2[d * (1 << LUT2_LEVELS) + r5]
                machine.alu()
                machine.branch(taken=bool(entry & FAILURE_FLAG))
                if not entry & FAILURE_FLAG:
                    self.lut2_hits += 1
                    return self._apply_sign(entry)
                d = entry & ~FAILURE_FLAG & 0xFF
                machine.alu()
                start_column = LUT1_LEVELS + LUT2_LEVELS

            self.scan_fallbacks += 1
            row = self._bit_scan_walk(start_column, d)
            if row is None:
                return 0
            return self._apply_sign(row)
        finally:
            machine.ret()

    def sample_polynomial(self, n: int) -> List[int]:
        return [self.sample() for _ in range(n)]


def sample_polynomial_cycles(
    params: ParameterSet,
    machine: CortexM4,
    bits: BitSource,
    n: Optional[int] = None,
    **options,
) -> "tuple[List[int], int]":
    """Draw one error polynomial; returns (coefficients, cycles)."""
    sampler = CycleKnuthYaoSampler(
        ProbabilityMatrix.for_params(params), params.q, machine, bits,
        **options,
    )
    start = machine.cycles
    poly = sampler.sample_polynomial(n if n is not None else params.n)
    return poly, machine.cycles - start
