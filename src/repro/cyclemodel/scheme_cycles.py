"""Cycle models of the full scheme operations (Table II).

``keygen_cycles`` / ``encrypt_cycles`` / ``decrypt_cycles`` execute the
real cryptographic operations — their outputs satisfy the same
encrypt/decrypt roundtrip as the functional scheme and are bit-identical
to it when fed the same bit stream — while charging the machine for every
modelled instruction, including the Gaussian sampling, the TRNG bit pool,
and the message encode/decode passes.

Per-phase breakdowns are recorded via machine regions ("sampling",
"ntt", "pointwise", "encode"/"decode"), which the cycle-profile example
prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.params import ParameterSet
from repro.core.scheme import Ciphertext, KeyPair, PrivateKey, PublicKey
from repro.cyclemodel.ntt_cycles import (
    ntt_forward_packed,
    ntt_forward_parallel3,
    ntt_inverse_packed,
    pointwise_add_cycles,
    pointwise_multiply_cycles,
    pointwise_subtract_cycles,
)
from repro.cyclemodel.sampler_cycles import CycleKnuthYaoSampler
from repro.machine.machine import CortexM4
from repro.sampler.pmat import ProbabilityMatrix
from repro.trng.bitsource import BitSource


@dataclass(frozen=True)
class OperationCycles:
    """Cycle accounting for one scheme operation."""

    operation: str
    params_name: str
    cycles: int
    regions: Dict[str, int]

    def __str__(self) -> str:
        detail = ", ".join(
            f"{name}={cycles}" for name, cycles in sorted(self.regions.items())
        )
        return (
            f"{self.operation} [{self.params_name}]: {self.cycles} cycles"
            f" ({detail})"
        )


def _sampler(
    params: ParameterSet, machine: CortexM4, bits: BitSource
) -> CycleKnuthYaoSampler:
    return CycleKnuthYaoSampler(
        ProbabilityMatrix.for_params(params), params.q, machine, bits
    )


def _uniform_polynomial_cycles(
    machine: CortexM4, params: ParameterSet, bits: BitSource
) -> List[int]:
    """Uniform a_hat by rejection from coefficient-width bit draws."""
    q = params.q
    width = params.coefficient_bits
    out: List[int] = []
    while len(out) < params.n:
        candidate = bits.bits(width)
        machine.alu()  # compare against q
        machine.branch(taken=candidate >= q)
        if candidate < q:
            machine.store()
            machine.alu(2)  # index bookkeeping
            out.append(candidate)
    return out


def _encode_cycles(
    machine: CortexM4, bits_in: Sequence[int], params: ParameterSet
) -> List[int]:
    """Threshold-encode message bits: bit -> 0 / floor(q/2)."""
    half = params.half_q
    out = []
    for i, bit in enumerate(bits_in):
        machine.load()  # message bit (amortised byte loads kept simple)
        machine.alu(2)  # select constant
        machine.store()
        out.append(half if bit else 0)
    out.extend([0] * (params.n - len(bits_in)))
    machine.store(params.n - len(bits_in))  # zero padding
    return out


def _decode_cycles(
    machine: CortexM4, poly: Sequence[int], params: ParameterSet
) -> List[int]:
    """Threshold-decode: window compare per coefficient."""
    q = params.q
    lo, hi = q // 4, 3 * q // 4
    bits_out = []
    for c in poly:
        machine.load()
        machine.alu(3)  # two compares + bit insert
        machine.branch(taken=False)
        bits_out.append(1 if lo < (c % q) <= hi else 0)
    machine.store(params.n // 32)  # packed bit output
    return bits_out


# ----------------------------------------------------------------------
# Scheme operations
# ----------------------------------------------------------------------
def keygen_cycles(
    machine: CortexM4,
    params: ParameterSet,
    bits: BitSource,
    a_hat: Optional[Sequence[int]] = None,
) -> "tuple[KeyPair, OperationCycles]":
    """KeyGen with cycle accounting; draws a_hat if not supplied."""
    start = machine.cycles
    sampler = _sampler(params, machine, bits)
    if a_hat is None:
        with machine.region("uniform"):
            a_hat = _uniform_polynomial_cycles(machine, params, bits)
    elif len(a_hat) != params.n:
        raise ValueError(f"a_hat must have {params.n} coefficients")
    with machine.region("sampling"):
        r1 = sampler.sample_polynomial(params.n)
        r2 = sampler.sample_polynomial(params.n)
    with machine.region("ntt"):
        r1_hat = ntt_forward_packed(machine, r1, params)
        r2_hat = ntt_forward_packed(machine, r2, params)
    with machine.region("pointwise"):
        prod = pointwise_multiply_cycles(machine, a_hat, r2_hat, params)
        p_hat = pointwise_subtract_cycles(machine, r1_hat, prod, params)
    pair = KeyPair(
        public=PublicKey(params, tuple(a_hat), tuple(p_hat)),
        private=PrivateKey(params, tuple(r2_hat)),
    )
    return pair, OperationCycles(
        "Key Generation", params.name, machine.cycles - start, machine.regions
    )


def encrypt_cycles(
    machine: CortexM4,
    params: ParameterSet,
    public: PublicKey,
    message_bits: Sequence[int],
    bits: BitSource,
) -> "tuple[Ciphertext, OperationCycles]":
    """Encryption with cycle accounting (Section II-A step 2)."""
    start = machine.cycles
    sampler = _sampler(params, machine, bits)
    with machine.region("encode"):
        mbar = _encode_cycles(machine, message_bits, params)
    with machine.region("sampling"):
        e1 = sampler.sample_polynomial(params.n)
        e2 = sampler.sample_polynomial(params.n)
        e3 = sampler.sample_polynomial(params.n)
    with machine.region("pointwise"):
        e3_plus_m = pointwise_add_cycles(machine, e3, mbar, params)
    with machine.region("ntt"):
        e1_hat, e2_hat, e3m_hat = ntt_forward_parallel3(
            machine, e1, e2, e3_plus_m, params
        )
    with machine.region("pointwise"):
        c1_hat = pointwise_add_cycles(
            machine,
            pointwise_multiply_cycles(machine, public.a_hat, e1_hat, params),
            e2_hat,
            params,
        )
        c2_hat = pointwise_add_cycles(
            machine,
            pointwise_multiply_cycles(machine, public.p_hat, e1_hat, params),
            e3m_hat,
            params,
        )
    ct = Ciphertext(params, tuple(c1_hat), tuple(c2_hat))
    return ct, OperationCycles(
        "Encryption", params.name, machine.cycles - start, machine.regions
    )


def decrypt_cycles(
    machine: CortexM4,
    params: ParameterSet,
    private: PrivateKey,
    ciphertext: Ciphertext,
) -> "tuple[List[int], OperationCycles]":
    """Decryption with cycle accounting; returns the decoded bits."""
    start = machine.cycles
    with machine.region("pointwise"):
        combined = pointwise_add_cycles(
            machine,
            pointwise_multiply_cycles(
                machine, ciphertext.c1_hat, private.r2_hat, params
            ),
            ciphertext.c2_hat,
            params,
        )
    with machine.region("ntt"):
        noisy = ntt_inverse_packed(machine, combined, params)
    with machine.region("decode"):
        bits_out = _decode_cycles(machine, noisy, params)
    return bits_out, OperationCycles(
        "Decryption", params.name, machine.cycles - start, machine.regions
    )
