"""Instruction-level cycle models of the paper's NTT kernels.

Each kernel executes the real transform (outputs are tested bit-identical
to the functional kernels in :mod:`repro.ntt`) while charging a
:class:`repro.machine.machine.CortexM4` for every instruction an assembly
implementation would retire:

* ``ntt_forward_alg3`` — Alg. 3 with halfword coefficient storage: one
  memory access per coefficient operand, twiddles maintained by the
  ``w <- w * wm`` recurrence;
* ``ntt_forward_packed`` / ``ntt_inverse_packed`` — the Alg. 4
  optimization: packed 32-bit words (two coefficients per access),
  two-fold unrolled inner loop, LUT-resident twiddles;
* ``ntt_forward_parallel3`` — Section III-D's fused three-polynomial NTT:
  the loop machinery and twiddle recurrence are charged once per
  iteration instead of three times, and only one base pointer is kept
  (the other two coefficient sets sit n/2 words away, paper trick).

The bit-reversal permutation uses the M4's ``rbit`` instruction and is
charged per swap.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.params import ParameterSet
from repro.machine.machine import CortexM4
from repro.machine.reduce import BarrettReducer
from repro.ntt.bitrev import bit_reverse_table
from repro.ntt.roots import ntt_tables


def bit_reverse_cycles(
    machine: CortexM4, values: Sequence[int], params: ParameterSet
) -> List[int]:
    """Swap-based bit-reversal with rbit addressing.

    Per index: rbit + shift + compare + (not-)taken branch; per actual
    swap: two loads and two stores (halfword pairs).
    """
    n = params.n
    table = bit_reverse_table(n)
    out = list(values)
    for i in range(n):
        j = table[i]
        machine.alu(3)  # rbit; lsr to the index width; cmp i, j
        if i < j:
            machine.branch(taken=False)
            machine.load(2)
            machine.store(2)
            out[i], out[j] = out[j], out[i]
        else:
            machine.branch(taken=True)  # skip the swap body
        machine.alu(2)  # index increment + bound check
        machine.branch(taken=i + 1 < n)
    return out


def ntt_forward_alg3(
    machine: CortexM4, a: Sequence[int], params: ParameterSet
) -> List[int]:
    """Alg. 3: reference negative-wrapped forward NTT, halfword storage."""
    q = params.q
    reducer = BarrettReducer(q)
    tables = ntt_tables(params)
    machine.call()
    A = bit_reverse_cycles(machine, [c % q for c in a], params)
    for stage in tables.forward_stages:
        m, wm = stage.m, stage.wm
        machine.load(2)  # fetch (wm, w0) from the primitive-root LUT
        w = stage.w0
        half = m // 2
        for j in range(half):
            for k in range(0, params.n, m):
                lo = j + k
                hi = lo + half
                machine.alu(2)  # two pointer calculations (non-consecutive)
                machine.load()  # A[hi] (halfword)
                t = reducer.mul_mod(machine, w, A[hi])
                machine.load()  # A[lo]
                u = A[lo]
                A[lo] = reducer.add_mod(machine, u, t)
                A[hi] = reducer.sub_mod(machine, u, t)
                machine.store(2)
                machine.alu(2)  # k += m; bounds check
                machine.branch(taken=k + m < params.n)
            w = reducer.mul_mod(machine, w, wm)
            machine.alu(2)  # j++; bounds check
            machine.branch(taken=j + 1 < half)
        machine.alu(2)  # stage bookkeeping (m <<= 1, l update)
        machine.branch(taken=m < params.n)
    machine.ret()
    return A


def _packed_stage_cycles(
    machine: CortexM4,
    A: List[int],
    m: int,
    twiddles: Sequence[int],
    params: ParameterSet,
    reducer: BarrettReducer,
) -> None:
    """One packed butterfly stage (shared by forward and inverse)."""
    n = params.n
    half = m // 2
    if half == 1:
        # Adjacent butterflies: one packed load holds both operands.
        machine.load()  # twiddle (single for the whole stage)
        w = twiddles[0]
        for word in range(n // 2):
            machine.alu()  # pointer
            machine.load()  # packed word: both operands
            u, t = A[2 * word], A[2 * word + 1]
            machine.alu(2)  # unpack (uxth / lsr)
            t = reducer.mul_mod(machine, w, t)
            s = reducer.add_mod(machine, u, t)
            d = reducer.sub_mod(machine, u, t)
            machine.alu(2)  # pack
            machine.store()  # packed word back
            A[2 * word], A[2 * word + 1] = s, d
            machine.alu(2)  # index; bound
            machine.branch(taken=word + 1 < n // 2)
        return
    for j in range(0, half, 2):
        machine.alu()  # twiddle pointer
        machine.load()  # one 32-bit access yields both LUT twiddles
        w0, w1 = twiddles[j], twiddles[j + 1]
        machine.alu()  # split halves
        for k in range(0, n, m):
            lo = j + k
            hi = lo + half
            machine.alu(2)  # two pointer calculations
            machine.load(2)  # two packed words: four coefficients
            u0, u1 = A[lo], A[lo + 1]
            t0, t1 = A[hi], A[hi + 1]
            machine.alu(4)  # unpack both words
            t0 = reducer.mul_mod(machine, w0, t0)
            t1 = reducer.mul_mod(machine, w1, t1)
            s0 = reducer.add_mod(machine, u0, t0)
            s1 = reducer.add_mod(machine, u1, t1)
            d0 = reducer.sub_mod(machine, u0, t0)
            d1 = reducer.sub_mod(machine, u1, t1)
            machine.alu(4)  # pack both result words
            machine.store(2)
            A[lo], A[lo + 1] = s0, s1
            A[hi], A[hi + 1] = d0, d1
            machine.alu(2)  # k += m; bound (one update per TWO butterflies)
            machine.branch(taken=k + m < n)
        machine.alu(2)  # j += 2; bound
        machine.branch(taken=j + 2 < half)


def ntt_forward_packed(
    machine: CortexM4, a: Sequence[int], params: ParameterSet
) -> List[int]:
    """Alg. 4: packed, two-fold-unrolled forward NTT with LUT twiddles."""
    q = params.q
    reducer = BarrettReducer(q)
    tables = ntt_tables(params)
    machine.call()
    A = bit_reverse_cycles(machine, [c % q for c in a], params)
    for stage_index, stage in enumerate(tables.forward_stages):
        _packed_stage_cycles(
            machine,
            A,
            stage.m,
            tables.forward_twiddles[stage_index],
            params,
            reducer,
        )
        machine.alu(2)  # stage bookkeeping
        machine.branch(taken=stage.m < params.n)
    machine.ret()
    return A


def ntt_inverse_packed(
    machine: CortexM4, a_hat: Sequence[int], params: ParameterSet
) -> List[int]:
    """Packed inverse NTT: cyclic inverse stages + n^-1 psi^-j scaling."""
    q = params.q
    reducer = BarrettReducer(q)
    tables = ntt_tables(params)
    machine.call()
    A = bit_reverse_cycles(machine, [c % q for c in a_hat], params)
    for stage_index, stage in enumerate(tables.inverse_stages):
        _packed_stage_cycles(
            machine,
            A,
            stage.m,
            tables.inverse_twiddles[stage_index],
            params,
            reducer,
        )
        machine.alu(2)
        machine.branch(taken=stage.m < params.n)
    # Final scaling pass, packed: one load/store per coefficient pair.
    scale = tables.final_scale
    for word in range(params.n // 2):
        machine.alu()  # pointer
        machine.load(2)  # packed coefficients + packed scale constants
        machine.alu(2)  # unpack
        lo = reducer.mul_mod(machine, A[2 * word], scale[2 * word])
        hi = reducer.mul_mod(machine, A[2 * word + 1], scale[2 * word + 1])
        machine.alu(2)  # pack
        machine.store()
        A[2 * word], A[2 * word + 1] = lo, hi
        machine.alu(2)
        machine.branch(taken=word + 1 < params.n // 2)
    machine.ret()
    return A


def ntt_forward_parallel3(
    machine: CortexM4,
    a: Sequence[int],
    b: Sequence[int],
    c: Sequence[int],
    params: ParameterSet,
) -> Tuple[List[int], List[int], List[int]]:
    """Fused three-polynomial forward NTT (Section III-D).

    The three coefficient sets are stored contiguously, so one base
    pointer plus fixed offsets addresses all of them; the loop overhead
    and twiddle recurrence are charged once per iteration for all three
    butterflies.
    """
    q = params.q
    reducer = BarrettReducer(q)
    tables = ntt_tables(params)
    machine.call()
    A = bit_reverse_cycles(machine, [x % q for x in a], params)
    B = bit_reverse_cycles(machine, [x % q for x in b], params)
    C = bit_reverse_cycles(machine, [x % q for x in c], params)
    for stage in tables.forward_stages:
        m, wm = stage.m, stage.wm
        machine.load(2)  # (wm, w0) pair from the LUT
        w = stage.w0
        half = m // 2
        for j in range(half):
            for k in range(0, params.n, m):
                lo = j + k
                hi = lo + half
                # One pointer pair computed; the second and third sets
                # are reached by fixed offsets from the same registers.
                machine.alu(2)
                for poly in (A, B, C):
                    machine.load(2)
                    t = reducer.mul_mod(machine, w, poly[hi])
                    u = poly[lo]
                    poly[lo] = reducer.add_mod(machine, u, t)
                    poly[hi] = reducer.sub_mod(machine, u, t)
                    machine.store(2)
                    machine.alu()  # offset step to the next set
                machine.alu(2)  # k update + bound (once for all three)
                machine.branch(taken=k + m < params.n)
            w = reducer.mul_mod(machine, w, wm)
            machine.alu(2)
            machine.branch(taken=j + 1 < half)
        machine.alu(2)
        machine.branch(taken=m < params.n)
    machine.ret()
    return A, B, C


def pointwise_multiply_cycles(
    machine: CortexM4,
    a: Sequence[int],
    b: Sequence[int],
    params: ParameterSet,
) -> List[int]:
    """Coefficient-wise product with per-element load/store accounting."""
    q = params.q
    reducer = BarrettReducer(q)
    out = []
    for i in range(params.n):
        machine.alu()  # pointer
        machine.load(2)
        out.append(reducer.mul_mod(machine, a[i] % q, b[i] % q))
        machine.store()
        machine.alu(2)
        machine.branch(taken=i + 1 < params.n)
    return out


def pointwise_add_cycles(
    machine: CortexM4,
    a: Sequence[int],
    b: Sequence[int],
    params: ParameterSet,
) -> List[int]:
    q = params.q
    reducer = BarrettReducer(q)
    out = []
    for i in range(params.n):
        machine.alu()
        machine.load(2)
        out.append(reducer.add_mod(machine, a[i] % q, b[i] % q))
        machine.store()
        machine.alu(2)
        machine.branch(taken=i + 1 < params.n)
    return out


def pointwise_subtract_cycles(
    machine: CortexM4,
    a: Sequence[int],
    b: Sequence[int],
    params: ParameterSet,
) -> List[int]:
    q = params.q
    reducer = BarrettReducer(q)
    out = []
    for i in range(params.n):
        machine.alu()
        machine.load(2)
        out.append(reducer.sub_mod(machine, a[i] % q, b[i] % q))
        machine.store()
        machine.alu(2)
        machine.branch(taken=i + 1 < params.n)
    return out
