"""SIMD NTT — modelling the paper's future-work direction.

Section V: "For future work we plan to create an efficient
implementation for a Single Instruction Multiple Data (SIMD)
processor."  The Cortex-M4F itself already has the ARMv7E-M DSP
extension (the paper's Section III-A notes its "16-bit SIMD
arithmetic"), which the packed layout of Alg. 4 is one small step away
from exploiting:

* ``SADD16``/``SSUB16`` add/subtract both packed halfword coefficients
  in one cycle;
* the modular correction of both lanes costs one packed compare-style
  subtract plus one ``SEL`` (lane select via the GE flags) — three
  cycles for *two* modular additions instead of six scalar ones;
* ``SMULBB``/``SMULTB`` multiply a halfword lane without explicit
  unpacking, removing the unpack/pack ALU work around every butterfly.

This module implements that kernel against the cost model, bit-identical
to the scalar transforms (asserted by tests), and quantifies the gain in
``benchmarks/bench_future_work.py``.  The reduction after each lane
multiply remains scalar Barrett (products exceed 16 bits).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.params import ParameterSet
from repro.cyclemodel.ntt_cycles import bit_reverse_cycles
from repro.machine.machine import CortexM4
from repro.machine.reduce import BarrettReducer
from repro.ntt.roots import ntt_tables


def _packed_mod_add(
    machine: CortexM4, reducer: BarrettReducer, a0: int, a1: int,
    b0: int, b1: int,
) -> "tuple[int, int]":
    """Two modular additions in one SIMD lane operation.

    SADD16 (1) computes both raw sums; USUB16 against packed (q, q)
    sets the GE flags per lane (1); SEL picks sum or sum - q per lane
    (1).  Three cycles total for both lanes.
    """
    machine.alu(3)
    q = reducer.q
    s0 = a0 + b0
    s1 = a1 + b1
    return (s0 - q if s0 >= q else s0, s1 - q if s1 >= q else s1)


def _packed_mod_sub(
    machine: CortexM4, reducer: BarrettReducer, a0: int, a1: int,
    b0: int, b1: int,
) -> "tuple[int, int]":
    """Two modular subtractions: SSUB16 + SADD16(q) + SEL = 3 cycles."""
    machine.alu(3)
    q = reducer.q
    d0 = a0 - b0
    d1 = a1 - b1
    return (d0 + q if d0 < 0 else d0, d1 + q if d1 < 0 else d1)


def _lane_mul_mod(
    machine: CortexM4, reducer: BarrettReducer, w: int, lane: int
) -> int:
    """SMULBB/SMULTB lane multiply (no unpack) + scalar Barrett."""
    machine.mul()  # smulbb/smultb
    return reducer.reduce(machine, w * lane)


def ntt_forward_simd(
    machine: CortexM4, a: Sequence[int], params: ParameterSet
) -> List[int]:
    """Forward negacyclic NTT with DSP-SIMD butterflies.

    Bit-identical to :func:`repro.ntt.reference.ntt_forward`.
    """
    q = params.q
    reducer = BarrettReducer(q)
    tables = ntt_tables(params)
    machine.call()
    A = bit_reverse_cycles(machine, [c % q for c in a], params)
    n = params.n
    for stage_index, stage in enumerate(tables.forward_stages):
        twiddles = tables.forward_twiddles[stage_index]
        m = stage.m
        half = m // 2
        if half == 1:
            machine.load()
            w = twiddles[0]
            for word in range(n // 2):
                machine.alu()  # pointer
                machine.load()  # packed operand pair
                u, t = A[2 * word], A[2 * word + 1]
                t = _lane_mul_mod(machine, reducer, w, t)
                # One lane add + one lane sub, but scalar here (the two
                # results go to the same word): 2 ALU + selects.
                machine.alu(4)
                s = u + t
                s = s - q if s >= q else s
                d = u - t
                d = d + q if d < 0 else d
                machine.store()
                A[2 * word], A[2 * word + 1] = s, d
                machine.alu(2)
                machine.branch(taken=word + 1 < n // 2)
            machine.alu(2)
            machine.branch(taken=m < n)
            continue
        for j in range(0, half, 2):
            machine.alu()
            machine.load()  # both twiddles in one packed constant
            w0, w1 = twiddles[j], twiddles[j + 1]
            for k in range(0, n, m):
                lo = j + k
                hi = lo + half
                machine.alu(2)  # two pointers
                machine.load(2)  # two packed words, four coefficients
                u0, u1 = A[lo], A[lo + 1]
                t0, t1 = A[hi], A[hi + 1]
                # Lane multiplies read halfwords directly (no unpack).
                t0 = _lane_mul_mod(machine, reducer, w0, t0)
                t1 = _lane_mul_mod(machine, reducer, w1, t1)
                machine.alu(2)  # re-pack the reduced products (pkhbt)
                s0, s1 = _packed_mod_add(
                    machine, reducer, u0, u1, t0, t1
                )
                d0, d1 = _packed_mod_sub(
                    machine, reducer, u0, u1, t0, t1
                )
                machine.store(2)
                A[lo], A[lo + 1] = s0, s1
                A[hi], A[hi + 1] = d0, d1
                machine.alu(2)
                machine.branch(taken=k + m < n)
            machine.alu(2)
            machine.branch(taken=j + 2 < half)
        machine.alu(2)
        machine.branch(taken=m < n)
    machine.ret()
    return A


def ntt_inverse_simd(
    machine: CortexM4, a_hat: Sequence[int], params: ParameterSet
) -> List[int]:
    """Inverse transform with the same SIMD butterfly treatment."""
    q = params.q
    reducer = BarrettReducer(q)
    tables = ntt_tables(params)
    machine.call()
    A = bit_reverse_cycles(machine, [c % q for c in a_hat], params)
    n = params.n
    for stage_index, stage in enumerate(tables.inverse_stages):
        twiddles = tables.inverse_twiddles[stage_index]
        m = stage.m
        half = m // 2
        if half == 1:
            machine.load()
            w = twiddles[0]
            for word in range(n // 2):
                machine.alu()
                machine.load()
                u, t = A[2 * word], A[2 * word + 1]
                t = _lane_mul_mod(machine, reducer, w, t)
                machine.alu(4)
                s = u + t
                s = s - q if s >= q else s
                d = u - t
                d = d + q if d < 0 else d
                machine.store()
                A[2 * word], A[2 * word + 1] = s, d
                machine.alu(2)
                machine.branch(taken=word + 1 < n // 2)
            machine.alu(2)
            machine.branch(taken=m < n)
            continue
        for j in range(0, half, 2):
            machine.alu()
            machine.load()
            w0, w1 = twiddles[j], twiddles[j + 1]
            for k in range(0, n, m):
                lo = j + k
                hi = lo + half
                machine.alu(2)
                machine.load(2)
                u0, u1 = A[lo], A[lo + 1]
                t0, t1 = A[hi], A[hi + 1]
                t0 = _lane_mul_mod(machine, reducer, w0, t0)
                t1 = _lane_mul_mod(machine, reducer, w1, t1)
                machine.alu(2)
                s0, s1 = _packed_mod_add(machine, reducer, u0, u1, t0, t1)
                d0, d1 = _packed_mod_sub(machine, reducer, u0, u1, t0, t1)
                machine.store(2)
                A[lo], A[lo + 1] = s0, s1
                A[hi], A[hi + 1] = d0, d1
                machine.alu(2)
                machine.branch(taken=k + m < n)
            machine.alu(2)
            machine.branch(taken=j + 2 < half)
        machine.alu(2)
        machine.branch(taken=m < n)
    # Final scaling with lane multiplies.
    scale = tables.final_scale
    for word in range(n // 2):
        machine.alu()
        machine.load(2)
        lo = _lane_mul_mod(machine, reducer, A[2 * word], scale[2 * word])
        hi = _lane_mul_mod(
            machine, reducer, A[2 * word + 1], scale[2 * word + 1]
        )
        machine.alu()  # re-pack
        machine.store()
        A[2 * word], A[2 * word + 1] = lo, hi
        machine.alu(2)
        machine.branch(taken=word + 1 < n // 2)
    machine.ret()
    return A
