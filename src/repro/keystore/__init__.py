"""Multi-tenant keystore: named keypairs, rotation, per-key routing.

The subsystem behind the service layer's key-addressed operations (and
the session facade's ``session.key("tenant")`` handles):

* :class:`KeyStore` — named slots with generation counters, a
  create/rotate/retire/evict lifecycle, deterministic per-slot seed
  derivation (:func:`key_seed`, domain-separated from the keygen and
  serving streams), and an LRU of hot materialized keys;
* :class:`KeyMaterial` — one generation's keypair in serving form
  (NTT-domain keys plus their serialized wire bytes);
* :class:`KeyInfo` — the metadata one slot reports over the wire.

See :mod:`repro.keystore.store` for the full design notes.
"""

from repro.keystore.store import (
    DEFAULT_KEY_NAME,
    KEYSTORE_SEED_DELTA,
    KeyInfo,
    KeyMaterial,
    KeyStore,
    key_seed,
)

__all__ = [
    "DEFAULT_KEY_NAME",
    "KEYSTORE_SEED_DELTA",
    "KeyInfo",
    "KeyMaterial",
    "KeyStore",
    "key_seed",
]
