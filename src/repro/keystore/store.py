"""The multi-tenant keystore: named keypairs with lifecycle.

The service layer grew up single-key: one keypair chosen at server
construction, shared by every client.  This module is the subsystem
that turns it into a key-*distribution* service — many named keypairs,
each with its own lifecycle, addressed per request:

* **Named slots.**  Every key has a DNS-label-ish name (the tenant id)
  and a **generation counter** that increments on rotation.  Requests
  pin ``(name, generation)``; a request pinned to a generation the key
  has rotated past fails with ``stale_key_generation`` instead of
  silently computing under a key the client never saw.
* **Deterministic derivation.**  A slot's keypair at generation ``g``
  is a pure function of ``(base_seed, name, g)`` via
  :func:`key_seed` — domain-separated from both the keygen stream
  (``base_seed`` itself) and the serving stream
  (:func:`~repro.service.executor.serving_seed`), so ``--seed S``
  replay still holds: the default key and the serving noise are
  bit-identical to a keystore-free server, and every named key is
  reproducible regardless of creation order or traffic.
* **Hot LRU.**  Key material (the NTT-domain keypair — keys live in
  the NTT domain in this scheme, so the stored form *is* the
  precomputed hot form — plus its serialized wire bytes) is cached for
  the ``hot_capacity`` most recently used keys.  Evicted material
  regenerates on demand from the derived seed; slot *metadata*
  (name, generation, state) is tiny and never evicted.
* **The default key.**  Slot name ``""`` holds the keypair the server
  was constructed with — pinned hot forever, never rotated or retired,
  and never drawing from any keystore stream — which is what keeps the
  unnamed-key path bit-identical to the pre-keystore service.

Failures speak the service vocabulary (:class:`ServiceError` with
``key_not_found`` / ``stale_key_generation`` / ``bad_request``
statuses); the :mod:`repro.api.errors` boundary maps them onto
:class:`~repro.api.errors.KeyNotFoundError` /
:class:`~repro.api.errors.StaleKeyGenerationError` for facade callers,
the same protocol-boundary pattern every other service error follows.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core import serialize
from repro.core.params import ParameterSet
from repro.core.scheme import KeyPair, RlweEncryptionScheme
from repro.service.executor import _SEED_MASK, _mix32
from repro.service.protocol import (
    GENERATION_CURRENT,
    STATUS_BAD_REQUEST,
    STATUS_KEY_NOT_FOUND,
    STATUS_STALE_KEY_GENERATION,
    ServiceError,
    validate_key_name,
)
from repro.trng.bitsource import PrngBitSource
from repro.trng.xorshift import Xorshift128

__all__ = [
    "DEFAULT_KEY_NAME",
    "KeyInfo",
    "KeyMaterial",
    "KeyStore",
    "key_seed",
]

#: The reserved name of the default (unnamed) key slot.
DEFAULT_KEY_NAME = ""

#: Domain separator for keystore-derived streams.  Distinct from
#: :data:`~repro.service.executor.SERVING_SEED_DELTA` so a named key's
#: stream never lands on the serving stream of the same base seed by
#: construction (in the 32-bit simulated-TRNG space collisions can
#: only be made non-adjacent, not impossible — same caveat as the
#: per-shard derivation).
KEYSTORE_SEED_DELTA = 0x85EBCA6B

_FNV_OFFSET = 0x811C9DC5
_FNV_PRIME = 0x01000193


def _fnv1a32(data: bytes) -> int:
    """FNV-1a: a stable, dependency-free 32-bit string hash."""
    value = _FNV_OFFSET
    for byte in data:
        value = ((value ^ byte) * _FNV_PRIME) & _SEED_MASK
    return value


def key_seed(seed: int, name: str, generation: int) -> int:
    """The randomness-stream seed for key ``name`` at ``generation``.

    A pure function of its inputs, so a keystore seeded ``S`` yields
    the same keypair for ``(name, g)`` no matter when the key was
    created, how traffic interleaved, or whether the material was
    evicted and regenerated in between.  Each input passes through the
    non-linear :func:`~repro.service.executor._mix32` finalizer before
    combining, so related names/generations/seeds do not land on
    adjacent streams.
    """
    base = _mix32((seed + KEYSTORE_SEED_DELTA) & _SEED_MASK)
    return _mix32(base ^ _mix32(_fnv1a32(name.encode("utf-8")) ^ _mix32(generation)))


@dataclass(frozen=True)
class KeyInfo:
    """One slot's public metadata (what ``list_keys`` reports)."""

    name: str
    generation: int
    state: str  # "active" | "retired"
    params: str
    hot: bool

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "generation": self.generation,
            "state": self.state,
            "params": self.params,
            "hot": self.hot,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "KeyInfo":
        try:
            return cls(
                name=str(data["name"]),
                generation=int(data["generation"]),
                state=str(data["state"]),
                params=str(data["params"]),
                hot=bool(data["hot"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed key info: {exc}") from None


@dataclass(frozen=True)
class KeyMaterial:
    """One generation's full key material, in hot (serving) form."""

    name: str
    generation: int
    keypair: KeyPair
    public_bytes: bytes
    private_bytes: bytes


class _Slot:
    """Mutable per-name lifecycle state (metadata only, never evicted)."""

    __slots__ = ("name", "generation", "state")

    def __init__(self, name: str):
        self.name = name
        self.generation = 0
        self.state = "active"


def _material_for(
    name: str, generation: int, keypair: KeyPair
) -> KeyMaterial:
    public_bytes, private_bytes = serialize.serialize_keypair(keypair)
    return KeyMaterial(
        name=name,
        generation=generation,
        keypair=keypair,
        public_bytes=public_bytes,
        private_bytes=private_bytes,
    )


class KeyStore:
    """Named keypairs with create/rotate/retire lifecycle and a hot LRU.

    Parameters
    ----------
    params:
        The parameter set every stored key uses (one keystore serves
        one ring, like one server serves one ring).
    seed:
        Base seed of the derivation tree; see :func:`key_seed`.
    backend:
        Compute backend for key generation (``None`` honours the
        session default, like the scheme constructor).
    hot_capacity:
        How many *named* keys keep materialized keypairs resident
        (>= 1).  The default key is pinned outside this budget.
    default_keypair:
        The server's own keypair, installed as the reserved default
        slot.  ``None`` builds a store with named slots only.
    """

    def __init__(
        self,
        params: ParameterSet,
        *,
        seed: int = 0,
        backend=None,
        hot_capacity: int = 8,
        default_keypair: Optional[KeyPair] = None,
    ):
        if hot_capacity < 1:
            raise ValueError(
                f"hot_capacity must be >= 1, got {hot_capacity}"
            )
        self.params = params
        self.seed = seed & _SEED_MASK
        self.backend = backend
        self.hot_capacity = hot_capacity
        self._slots: "OrderedDict[str, _Slot]" = OrderedDict()
        self._hot: "OrderedDict[str, KeyMaterial]" = OrderedDict()
        #: name -> pin count.  A pinned name is exempt from LRU
        #: eviction: a fused window pins its whole key table for the
        #: duration of the flush, so an eviction racing the flush can
        #: never regenerate a key under a running batch.
        self._pins: Dict[str, int] = {}
        self._default: Optional[KeyMaterial] = None
        if default_keypair is not None:
            if default_keypair.public.params != params:
                raise ValueError(
                    f"default keypair is for "
                    f"{default_keypair.public.params.name}, "
                    f"this keystore holds {params.name}"
                )
            self._default = _material_for(
                DEFAULT_KEY_NAME, 0, default_keypair
            )
        self.stats_counters: Dict[str, int] = {
            "created": 0,
            "rotated": 0,
            "retired": 0,
            "materializations": 0,
            "hot_hits": 0,
            "evictions": 0,
        }

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def _checked_name(self, name: str) -> str:
        try:
            return validate_key_name(name)
        except ValueError as exc:
            raise ServiceError(STATUS_BAD_REQUEST, str(exc)) from None

    def _live_slot(self, name: str) -> _Slot:
        slot = self._slots.get(name)
        if slot is None:
            raise ServiceError(
                STATUS_KEY_NOT_FOUND, f"key {name!r} does not exist"
            )
        if slot.state != "active":
            raise ServiceError(
                STATUS_KEY_NOT_FOUND, f"key {name!r} is retired"
            )
        return slot

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create(self, name: str) -> KeyInfo:
        """Create ``name`` at generation 0; error if it already exists."""
        self._checked_name(name)
        existing = self._slots.get(name)
        if existing is not None:
            state = (
                "exists" if existing.state == "active" else "is retired"
            )
            raise ServiceError(
                STATUS_BAD_REQUEST, f"key {name!r} already {state}"
            )
        self._slots[name] = _Slot(name)
        self.stats_counters["created"] += 1
        return self.info(name)

    def rotate(self, name: str) -> KeyInfo:
        """Advance ``name`` to the next generation (fresh keypair)."""
        if name == DEFAULT_KEY_NAME:
            raise ServiceError(
                STATUS_BAD_REQUEST,
                "the default key is the server's identity and cannot "
                "be rotated; rotate a named key instead",
            )
        self._checked_name(name)
        slot = self._live_slot(name)
        slot.generation += 1
        # The hot entry (if any) holds the superseded generation.
        self._hot.pop(name, None)
        self.stats_counters["rotated"] += 1
        return self.info(name)

    def retire(self, name: str) -> KeyInfo:
        """Retire ``name``: requests fail with ``key_not_found``."""
        if name == DEFAULT_KEY_NAME:
            raise ServiceError(
                STATUS_BAD_REQUEST,
                "the default key is the server's identity and cannot "
                "be retired",
            )
        self._checked_name(name)
        slot = self._live_slot(name)
        slot.state = "retired"
        self._hot.pop(name, None)
        self.stats_counters["retired"] += 1
        return self.info(name)

    def evict(self, name: str) -> bool:
        """Drop ``name``'s hot material (metadata survives); was it hot?"""
        return self._hot.pop(name, None) is not None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def info(self, name: str) -> KeyInfo:
        """Metadata for one slot (including the default, name ``""``)."""
        if name == DEFAULT_KEY_NAME:
            if self._default is None:
                raise ServiceError(
                    STATUS_KEY_NOT_FOUND, "this keystore has no default key"
                )
            return KeyInfo(
                name=DEFAULT_KEY_NAME,
                generation=0,
                state="active",
                params=self.params.name,
                hot=True,
            )
        slot = self._slots.get(name)
        if slot is None:
            raise ServiceError(
                STATUS_KEY_NOT_FOUND, f"key {name!r} does not exist"
            )
        return KeyInfo(
            name=slot.name,
            generation=slot.generation,
            state=slot.state,
            params=self.params.name,
            hot=name in self._hot,
        )

    def list(self) -> List[KeyInfo]:
        """Every slot, default first, then named slots in creation order."""
        infos = []
        if self._default is not None:
            infos.append(self.info(DEFAULT_KEY_NAME))
        infos.extend(self.info(name) for name in self._slots)
        return infos

    def __contains__(self, name: str) -> bool:
        if name == DEFAULT_KEY_NAME:
            return self._default is not None
        return name in self._slots

    def __len__(self) -> int:
        return len(self._slots) + (1 if self._default is not None else 0)

    # ------------------------------------------------------------------
    # Material
    # ------------------------------------------------------------------
    def resolve_generation(self, name: str, generation: int) -> int:
        """Map ``generation`` (or the CURRENT sentinel) to a concrete one.

        Raises ``key_not_found`` for unknown/retired names and
        ``stale_key_generation`` for any pinned generation that is not
        the slot's current one.
        """
        if name == DEFAULT_KEY_NAME:
            if self._default is None:
                raise ServiceError(
                    STATUS_KEY_NOT_FOUND, "this keystore has no default key"
                )
            current = 0
        else:
            current = self._live_slot(name).generation
        if generation == GENERATION_CURRENT:
            return current
        if generation != current:
            raise ServiceError(
                STATUS_STALE_KEY_GENERATION,
                f"key {name!r} is at generation {current}; the request "
                f"pinned generation {generation}",
            )
        return generation

    def _generate(self, name: str, generation: int) -> KeyMaterial:
        scheme = RlweEncryptionScheme(
            self.params,
            bits=PrngBitSource(
                Xorshift128(key_seed(self.seed, name, generation))
            ),
            backend=self.backend,
        )
        self.stats_counters["materializations"] += 1
        return _material_for(name, generation, scheme.generate_keypair())

    def materialize(
        self, name: str, generation: int = GENERATION_CURRENT
    ) -> KeyMaterial:
        """Key material for ``(name, generation)``, via the hot LRU.

        The staleness contract of :meth:`resolve_generation` applies;
        a cache miss regenerates deterministically and may evict the
        least recently used hot key.
        """
        resolved = self.resolve_generation(name, generation)
        if name == DEFAULT_KEY_NAME:
            return self._default  # type: ignore[return-value] - resolved above
        material = self._hot.get(name)
        if material is not None and material.generation == resolved:
            self._hot.move_to_end(name)
            self.stats_counters["hot_hits"] += 1
            return material
        material = self._generate(name, resolved)
        self._hot[name] = material
        self._hot.move_to_end(name)
        self._shrink()
        return material

    def _shrink(self) -> None:
        """Evict unpinned LRU entries until within ``hot_capacity``.

        Pinned names are skipped, so the hot set may transiently exceed
        capacity while a wide fused window holds its key table; the
        overshoot drains on :meth:`unpin`.
        """
        while len(self._hot) > self.hot_capacity:
            victim = next(
                (name for name in self._hot if name not in self._pins),
                None,
            )
            if victim is None:
                return
            self._hot.pop(victim)
            self.stats_counters["evictions"] += 1

    # ------------------------------------------------------------------
    # Flush pinning (fused windows)
    # ------------------------------------------------------------------
    def pin(self, name: str) -> None:
        """Exempt ``name`` from eviction until the matching unpin."""
        if name == DEFAULT_KEY_NAME:
            return  # the default key is pinned by construction
        self._pins[name] = self._pins.get(name, 0) + 1

    def unpin(self, name: str) -> None:
        """Release one pin; eviction pressure re-applies at zero pins."""
        if name == DEFAULT_KEY_NAME:
            return
        count = self._pins.get(name, 0)
        if count <= 1:
            self._pins.pop(name, None)
        else:
            self._pins[name] = count - 1
        self._shrink()

    def hot_names(self) -> List[str]:
        """Named keys currently materialized, least recently used first."""
        return list(self._hot)

    def stats(self) -> Dict:
        """Keystore counters for the server's stats op."""
        active = sum(
            1 for slot in self._slots.values() if slot.state == "active"
        )
        return dict(
            self.stats_counters,
            keys=len(self._slots),
            active=active,
            retired=len(self._slots) - active,
            hot=len(self._hot),
            hot_capacity=self.hot_capacity,
            pinned=len(self._pins),
            has_default=self._default is not None,
        )
