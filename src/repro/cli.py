"""Command-line interface: ``rlwe-repro`` (or ``python -m repro``).

Subcommands
-----------
``tables``
    Regenerate every paper table and figure from the cycle models.
``keygen`` / ``encrypt`` / ``decrypt``
    File-based encryption round trip using the functional scheme.
``sample``
    Draw discrete Gaussian samples and print summary statistics.
``profile``
    Per-phase cycle breakdown of one encryption/decryption.
``bench-backends``
    Encrypt/decrypt throughput per compute backend and batch size.
``serve``
    The micro-batching key-transport server (encrypt / decrypt /
    encapsulate / decapsulate over length-prefixed frames).
    ``--engine local|pool[:N]`` picks the execution engine in the
    facade's unified notation (the older ``--executor``/``--workers``
    pair still works): inline on the event loop, or a sharded
    multi-process worker pool.
``keys``
    Manage a running server's multi-tenant keystore:
    ``keys create/rotate/retire <name>`` drive one named key's
    lifecycle and ``keys list`` shows every slot with its generation
    and state (``--json`` for machine-readable output).
``loadgen``
    Closed-/open-loop load generation against a running server
    (``--engine tcp://host:port`` or ``--host``/``--port``).
``stats``
    One-shot dump of a running server's per-op batch/latency counters
    (default key plus per-key nesting), keystore counters, and
    executor-shard counters (the wire ``stats`` op); ``--json`` prints
    the raw JSON.
``metrics``
    Scrape a server started with ``serve --metrics-port`` and print
    the Prometheus text exposition (``--validate`` round-trips it
    through the parser and the naming contract; ``--json`` prints the
    parsed families).
``smoke``
    The cross-transport equivalence check: opens
    :class:`~repro.api.RlweSession` instances on each listed engine
    and verifies byte-identity, round-trips, and exception-type parity
    against a fresh local reference (the CI ``facade-smoke`` job).

The file-based commands accept ``--backend`` (also settable session-wide
via the ``REPRO_BACKEND`` environment variable) to pick the
polynomial-arithmetic engine; all backends are bit-identical.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__, get_parameter_set, seeded_scheme
from repro.core import serialize
from repro.machine.machine import CortexM4
from repro.trng.bitpool import BitPool
from repro.trng.trng import SimulatedTrng
from repro.trng.xorshift import Xorshift128


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rlwe-repro",
        description=(
            "Reproduction of 'Efficient Software Implementation of "
            "Ring-LWE Encryption' (DATE 2015)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    tables = sub.add_parser("tables", help="regenerate paper tables/figures")
    tables.add_argument("--seed", type=int, default=2015)
    tables.add_argument(
        "--only",
        choices=["1", "2", "3", "4", "fig1", "fig2"],
        help="render a single table/figure",
    )

    def add_backend_flag(command_parser) -> None:
        command_parser.add_argument(
            "--backend",
            default=None,
            help=(
                "compute backend (python-reference, python-packed, "
                "numpy, compiled); default honours REPRO_BACKEND"
            ),
        )

    keygen = sub.add_parser("keygen", help="generate a key pair")
    keygen.add_argument("--params", default="P1", help="P1 or P2")
    keygen.add_argument("--seed", type=int, default=None)
    keygen.add_argument("--public", required=True, help="public key output")
    keygen.add_argument("--private", required=True, help="private key output")
    add_backend_flag(keygen)

    encrypt = sub.add_parser("encrypt", help="encrypt a small message")
    encrypt.add_argument("--public", required=True)
    encrypt.add_argument("--in", dest="infile", required=True)
    encrypt.add_argument("--out", required=True)
    encrypt.add_argument("--seed", type=int, default=None)
    add_backend_flag(encrypt)

    decrypt = sub.add_parser("decrypt", help="decrypt a ciphertext")
    decrypt.add_argument("--private", required=True)
    decrypt.add_argument("--in", dest="infile", required=True)
    decrypt.add_argument("--out", required=True)
    decrypt.add_argument("--length", type=int, default=None)
    add_backend_flag(decrypt)

    bench = sub.add_parser(
        "bench-backends",
        help="encrypt/decrypt throughput per backend and batch size",
    )
    bench.add_argument(
        "--params",
        default="P1",
        help="comma-separated parameter sets (e.g. P1,P2)",
    )
    bench.add_argument(
        "--backends",
        default=None,
        help="comma-separated backends (default: all available)",
    )
    bench.add_argument(
        "--batch-sizes",
        default="1,16,64,256",
        help="comma-separated batch sizes",
    )
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--seed", type=int, default=2015)
    bench.add_argument(
        "--json", default=None, help="also write the report as JSON here"
    )

    serve = sub.add_parser(
        "serve", help="run the micro-batching key-transport server"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8470)
    serve.add_argument("--params", default="P1", help="P1 or P2")
    serve.add_argument("--seed", type=int, default=None)
    serve.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="coalescer window size (1 disables batching)",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="max milliseconds a partial window waits before flushing",
    )
    serve.add_argument(
        "--engine",
        default=None,
        help=(
            "execution engine in the session-facade notation: 'local' "
            "(inline on the event loop) or 'pool[:N]' (N worker "
            "processes); replaces --executor/--workers"
        ),
    )
    serve.add_argument(
        "--executor",
        choices=["inline", "pool"],
        default=None,
        help=(
            "execution engine: inline (batches compute on the event "
            "loop) or pool (sharded across worker processes); default "
            "inline, or pool when --workers is given"
        ),
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for the pool executor "
            "(default: the CPU count)"
        ),
    )
    serve.add_argument(
        "--hot-keys",
        type=int,
        default=8,
        help=(
            "named keys kept materialized in the keystore's hot LRU "
            "(evicted keys regenerate on demand from their derived "
            "seeds)"
        ),
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help=(
            "also serve a Prometheus /metrics HTTP listener on this "
            "port (0 picks a free port; on the same --host); also "
            "enables the compiled backend's per-stage NTT profiling"
        ),
    )
    add_backend_flag(serve)

    keys = sub.add_parser(
        "keys",
        help="manage a running server's named keys (multi-tenant keystore)",
    )
    keys_sub = keys.add_subparsers(dest="keys_command", required=True)

    def add_endpoint_flags(command_parser) -> None:
        command_parser.add_argument("--host", default="127.0.0.1")
        command_parser.add_argument("--port", type=int, default=8470)
        command_parser.add_argument(
            "--engine",
            default=None,
            help="tcp://host:port of the server (overrides --host/--port)",
        )
        command_parser.add_argument(
            "--connect-timeout",
            type=float,
            default=5.0,
            help="seconds to retry the connection",
        )
        command_parser.add_argument(
            "--json", action="store_true", help="print raw JSON instead"
        )

    for action, description in (
        ("create", "create a named key at generation 0"),
        ("rotate", "advance a named key to its next generation"),
        ("retire", "retire a named key"),
    ):
        action_parser = keys_sub.add_parser(action, help=description)
        action_parser.add_argument("name", help="the key name (tenant id)")
        add_endpoint_flags(action_parser)
    keys_list = keys_sub.add_parser(
        "list", help="list every key slot with its generation and state"
    )
    add_endpoint_flags(keys_list)

    stats = sub.add_parser(
        "stats", help="dump a running server's live counters"
    )
    stats.add_argument("--host", default="127.0.0.1")
    stats.add_argument("--port", type=int, default=8470)
    stats.add_argument(
        "--engine",
        default=None,
        help="tcp://host:port of the server (overrides --host/--port)",
    )
    stats.add_argument(
        "--connect-timeout",
        type=float,
        default=5.0,
        help="seconds to retry the connection",
    )
    stats.add_argument(
        "--json", action="store_true", help="print raw JSON instead"
    )

    metrics = sub.add_parser(
        "metrics",
        help=(
            "scrape a running server's Prometheus /metrics listener "
            "(see serve --metrics-port)"
        ),
    )
    metrics.add_argument("--host", default="127.0.0.1")
    metrics.add_argument(
        "--port",
        type=int,
        required=True,
        help="the --metrics-port the server printed at startup",
    )
    metrics.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="seconds before the scrape gives up",
    )
    metrics.add_argument(
        "--validate",
        action="store_true",
        help=(
            "round-trip the exposition through the parser and check "
            "types, HELP lines, histogram invariants, and the "
            "repro_* naming contract; non-zero exit on any problem"
        ),
    )
    metrics.add_argument(
        "--json",
        action="store_true",
        help="print the parsed families as JSON instead of raw text",
    )

    loadgen = sub.add_parser(
        "loadgen", help="drive a running server and measure latency"
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8470)
    loadgen.add_argument(
        "--engine",
        default=None,
        help="tcp://host:port of the server (overrides --host/--port)",
    )
    loadgen.add_argument(
        "--op",
        default="encapsulate",
        choices=[
            "ping",
            "get_public_key",
            "encrypt",
            "decrypt",
            "encapsulate",
            "decapsulate",
        ],
    )
    loadgen.add_argument("--mode", default="closed", choices=["closed", "open"])
    loadgen.add_argument("--concurrency", type=int, default=32)
    loadgen.add_argument("--requests", type=int, default=256)
    loadgen.add_argument(
        "--rate", type=float, default=200.0, help="open-loop offered ops/s"
    )
    loadgen.add_argument("--connections", type=int, default=1)
    loadgen.add_argument(
        "--message-bytes", type=int, default=32, help="encrypt payload size"
    )
    loadgen.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        help="seconds to retry the initial connection",
    )
    loadgen.add_argument(
        "--json", default=None, help="also write the result as JSON here"
    )

    smoke = sub.add_parser(
        "smoke",
        help="cross-transport equivalence check of the session facade",
    )
    smoke.add_argument(
        "--engines",
        default="local,pool:1",
        help=(
            "comma-separated engine strings to verify against a fresh "
            "local reference (local, pool[:N], tcp://host:port)"
        ),
    )
    smoke.add_argument("--params", default="P1", help="parameter set")
    smoke.add_argument("--seed", type=int, default=7)
    smoke.add_argument(
        "--batch", type=int, default=8, help="batched-op batch size"
    )
    smoke.add_argument(
        "--fresh-remote",
        action="store_true",
        help=(
            "tcp:// engines were just started with this --seed and have "
            "served no traffic: also verify randomized-op byte-identity "
            "(the server needs --max-batch >= --batch and a generous "
            "--max-wait-ms for batched identity)"
        ),
    )

    lint = sub.add_parser(
        "lint",
        help=(
            "static invariant checks over the repo's own source "
            "(randomness, constant-time, wire, IPC, asyncio, excepts)"
        ),
    )
    from repro.lint.cli import add_arguments as add_lint_arguments

    add_lint_arguments(lint)

    sample = sub.add_parser("sample", help="draw Gaussian samples")
    sample.add_argument("--params", default="P1")
    sample.add_argument("--count", type=int, default=10000)
    sample.add_argument("--seed", type=int, default=0)

    profile = sub.add_parser("profile", help="cycle breakdown of one enc/dec")
    profile.add_argument("--params", default="P1")
    profile.add_argument("--seed", type=int, default=2015)
    return parser


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.analysis import experiments

    if args.only is None:
        print(experiments.all_experiments(args.seed))
        return 0
    renderers = {
        "1": lambda: experiments.table1(args.seed),
        "2": lambda: experiments.table2(args.seed),
        "3": lambda: experiments.table3(args.seed),
        "4": lambda: experiments.table4(args.seed),
        "fig1": experiments.fig1,
        "fig2": experiments.fig2,
    }
    print(renderers[args.only]())
    return 0


def _scheme(
    params_name: str, seed: Optional[int], backend: Optional[str] = None
):
    params = get_parameter_set(params_name)
    try:
        return seeded_scheme(
            params, seed if seed is not None else 0, backend=backend
        )
    except KeyError as exc:
        # Unknown or unavailable backend: a clean CLI error, no traceback.
        raise SystemExit(f"error: {exc.args[0]}")


def _cmd_keygen(args: argparse.Namespace) -> int:
    scheme = _scheme(args.params, args.seed, args.backend)
    pair = scheme.generate_keypair()
    pub, prv = serialize.serialize_keypair(pair)
    with open(args.public, "wb") as f:
        f.write(pub)
    with open(args.private, "wb") as f:
        f.write(prv)
    print(
        f"wrote {len(pub)}-byte public key and {len(prv)}-byte private key "
        f"[{scheme.params.name}]"
    )
    return 0


def _read_wire_object(path: str, deserializer, what: str):
    """Deserialize an untrusted file with a clean CLI error, no traceback."""
    with open(path, "rb") as f:
        data = f.read()
    try:
        return deserializer(data)
    except ValueError as exc:
        raise SystemExit(f"error: {path} is not a valid {what}: {exc}")


def _cmd_encrypt(args: argparse.Namespace) -> int:
    public = _read_wire_object(
        args.public, serialize.deserialize_public_key, "public key"
    )
    with open(args.infile, "rb") as f:
        message = f.read()
    scheme = _scheme(public.params.name, args.seed, args.backend)
    capacity = scheme.params.message_bytes
    if len(message) > capacity:
        print(
            f"error: message is {len(message)} bytes; one "
            f"{scheme.params.name} ciphertext carries at most {capacity}",
            file=sys.stderr,
        )
        return 1
    ct = scheme.encrypt(public, message)
    data = serialize.serialize_ciphertext(ct)
    with open(args.out, "wb") as f:
        f.write(data)
    print(f"wrote {len(data)}-byte ciphertext [{scheme.params.name}]")
    return 0


def _cmd_decrypt(args: argparse.Namespace) -> int:
    private = _read_wire_object(
        args.private, serialize.deserialize_private_key, "private key"
    )
    ct = _read_wire_object(
        args.infile, serialize.deserialize_ciphertext, "ciphertext"
    )
    scheme = _scheme(private.params.name, None, args.backend)
    try:
        message = scheme.decrypt(private, ct, length=args.length)
    except ValueError as exc:
        # Out-of-range --length (negative or beyond capacity).
        raise SystemExit(f"error: {exc}")
    with open(args.out, "wb") as f:
        f.write(message)
    print(f"wrote {len(message)} plaintext bytes")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run as run_lint_cli

    return run_lint_cli(args)


def _cmd_sample(args: argparse.Namespace) -> int:
    from repro.analysis.stats import empirical_moments, centered
    from repro.sampler.lut_sampler import LutKnuthYaoSampler
    from repro.sampler.pmat import ProbabilityMatrix
    from repro.trng.bitsource import PrngBitSource

    params = get_parameter_set(args.params)
    sampler = LutKnuthYaoSampler(
        ProbabilityMatrix.for_params(params),
        params.q,
        PrngBitSource(Xorshift128(args.seed)),
    )
    samples = [
        centered(sampler.sample(), params.q) for _ in range(args.count)
    ]
    moments = empirical_moments(samples)
    print(f"{args.count} samples from X_sigma [{params.name}]")
    print(f"  target sigma^2   = {params.sigma ** 2:.4f}")
    print(f"  observed mean    = {moments['mean']:+.4f}")
    print(f"  observed var     = {moments['variance']:.4f}")
    print(
        f"  LUT1/LUT2/scan   = {sampler.lut1_hits}/"
        f"{sampler.lut2_hits}/{sampler.scan_fallbacks}"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.cyclemodel.scheme_cycles import (
        decrypt_cycles,
        encrypt_cycles,
        keygen_cycles,
    )
    from repro.trng.stream import DeterministicRng

    params = get_parameter_set(args.params)
    # Routed through repro.trng (RND001): the profiled message replays
    # bit-identically under --seed, like every other draw in the run.
    rng = DeterministicRng(args.seed)

    machine = CortexM4()
    pool = BitPool(SimulatedTrng(Xorshift128(args.seed), machine=machine), machine=machine)
    pair, keygen = keygen_cycles(machine, params, pool)
    print(keygen)

    message = rng.message_bits(params.n)
    machine = CortexM4()
    pool = BitPool(SimulatedTrng(Xorshift128(args.seed + 1), machine=machine), machine=machine)
    ct, encrypt = encrypt_cycles(machine, params, pair.public, message, pool)
    print(encrypt)

    machine = CortexM4()
    decoded, decrypt = decrypt_cycles(machine, params, pair.private, ct)
    print(decrypt)
    print("roundtrip:", "OK" if decoded == message else "FAILED")
    return 0


def _cmd_bench_backends(args: argparse.Namespace) -> int:
    import json

    from repro.backend.bench import render_report, run_throughput_bench

    backends = (
        [b.strip() for b in args.backends.split(",") if b.strip()]
        if args.backends
        else None
    )
    try:
        report = run_throughput_bench(
            params_names=[
                p.strip() for p in args.params.split(",") if p.strip()
            ],
            backends=backends,
            batch_sizes=[
                int(b) for b in args.batch_sizes.split(",") if b.strip()
            ],
            repeats=args.repeats,
            seed=args.seed,
        )
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}")
    print(render_report(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
        print(f"\nwrote {args.json}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os
    import signal

    from repro.service.executor import pool_executor_for, serving_seed
    from repro.service.server import start_server

    if args.max_batch < 1:
        raise SystemExit("error: --max-batch must be >= 1")
    if args.max_wait_ms < 0:
        raise SystemExit("error: --max-wait-ms must be >= 0")
    if args.hot_keys < 1:
        raise SystemExit("error: --hot-keys must be >= 1")
    if args.engine is not None:
        # The unified facade notation subsumes --executor/--workers.
        if args.executor is not None or args.workers is not None:
            raise SystemExit(
                "error: --engine replaces --executor/--workers; "
                "pass only one form"
            )
        from repro.api.engine import parse_engine
        from repro.api.errors import EngineUnavailableError

        try:
            spec = parse_engine(args.engine)
        except EngineUnavailableError as exc:
            raise SystemExit(f"error: {exc}")
        if spec.kind == "remote":
            raise SystemExit(
                "error: serve hosts an engine; tcp:// engines are "
                "client-side (see loadgen/smoke)"
            )
        executor_kind = "inline" if spec.kind == "local" else "pool"
        workers = spec.workers if spec.kind == "pool" else None
    else:
        executor_kind = args.executor
        if executor_kind is None:
            executor_kind = "pool" if args.workers is not None else "inline"
        if executor_kind == "inline" and args.workers is not None:
            raise SystemExit("error: --workers requires --executor pool")
        workers = args.workers
    if executor_kind == "pool":
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise SystemExit("error: --workers must be >= 1")
    # Keygen draws from stream --seed; serving noise (inline scheme and
    # pool shard 0 alike) draws from the domain-separated
    # serving_seed(--seed) stream.  Separate streams keep the public
    # a_hat from leaking the serving stream's prefix, and starting the
    # serving stream at position 0 is what lets a pool worker replay it
    # — inline and pool(1) serving stay bit-identical per --seed.
    base_seed = args.seed if args.seed is not None else 0
    scheme = _scheme(args.params, serving_seed(base_seed), args.backend)

    async def serve() -> None:
        keypair = _scheme(
            args.params, base_seed, args.backend
        ).generate_keypair()
        executor = None
        if executor_kind == "pool":
            executor = pool_executor_for(
                scheme,
                keypair,
                seed=serving_seed(base_seed),
                workers=workers,
                direct=args.max_batch == 1,
                backend=args.backend,
            )
        server = await start_server(
            scheme,
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            max_wait=args.max_wait_ms / 1e3,
            keypair=keypair,
            executor=executor,
            keystore_seed=base_seed,
            hot_keys=args.hot_keys,
        )
        metrics_server = None
        if args.metrics_port is not None:
            from repro.metrics import MetricsHttpServer

            # Scrapes are cheap; the per-stage kernel profile is the
            # one instrument with hot-path cost, so it rides the same
            # opt-in instead of a flag of its own.
            enable_stages = getattr(
                scheme.backend, "enable_stage_profiling", None
            )
            if enable_stages is not None:
                enable_stages()
            metrics_server = MetricsHttpServer(
                server.service.metrics.registry,
                host=args.host,
                port=args.metrics_port,
            )
            await metrics_server.start()
            print(
                f"metrics on http://{args.host}:{metrics_server.port}"
                f"/metrics",
                flush=True,
            )
        mode = (
            "direct single-message path (batching off)"
            if args.max_batch == 1
            else f"max_batch={args.max_batch}, "
            f"max_wait={args.max_wait_ms:g}ms"
        )
        engine = (
            f"pool({workers} workers)"
            if executor_kind == "pool"
            else "inline"
        )
        print(
            f"serving {scheme.params.name} on {args.host}:{server.port} "
            f"[backend={scheme.backend.name}, executor={engine}, {mode}]",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        try:
            await stop.wait()
        finally:
            if metrics_server is not None:
                await metrics_server.close()
            await server.close()
            stats = server.service.stats()
            ops = stats["ops"]
            busiest = max(ops.values(), key=lambda s: s["items"])
            print(
                f"shutdown: {server.connections_served} connection(s), "
                f"{sum(s['items'] for s in ops.values())} request(s), "
                f"busiest op mean batch "
                f"{busiest['mean_batch_size']:.1f}",
                flush=True,
            )

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    return 0


def _resolve_endpoint(args: argparse.Namespace) -> "tuple[str, int]":
    """``--engine tcp://host:port`` overrides ``--host``/``--port``."""
    if getattr(args, "engine", None) is None:
        return args.host, args.port
    from repro.api.engine import parse_engine
    from repro.api.errors import EngineUnavailableError

    try:
        spec = parse_engine(args.engine)
    except EngineUnavailableError as exc:
        raise SystemExit(f"error: {exc}")
    if spec.kind != "remote":
        raise SystemExit(
            f"error: {args.engine!r} is not a server address; "
            f"expected tcp://host:port"
        )
    return spec.host, spec.port


def _render_key_name(name: str) -> str:
    """The default key's empty name, made visible."""
    return name if name else "(default)"


def render_key_list(keys: "list[dict]") -> str:
    """Human-readable table of list_keys infos."""
    lines = [f"{'NAME':<22} {'GEN':>5}  {'STATE':<8} {'PARAMS':<7} HOT"]
    for info in keys:
        lines.append(
            f"{_render_key_name(info['name']):<22} "
            f"{int(info['generation']):>5}  "
            f"{info['state']:<8} {info['params']:<7} "
            f"{'yes' if info['hot'] else 'no'}"
        )
    return "\n".join(lines)


def render_stats(stats: dict) -> str:
    """Human-readable dump of the server's stats response."""
    lines = ["per-op coalescing (default key):"]
    for name, op in stats.get("ops", {}).items():
        lines.append(
            f"  {name:<12} items {int(op['items']):>8}  "
            f"flushes {int(op['flushes']):>6}  "
            f"mean batch {op['mean_batch_size']:>6.1f}  "
            f"mean flush {op['mean_flush_ms']:>7.2f}ms  "
            f"max batch {int(op['max_batch_seen']):>4}"
        )
    fused = stats.get("fused", {})
    if any(op.get("windows") for op in fused.values()):
        lines.append("fused coalescing (cross-key windows):")
        for name, op in fused.items():
            if not op.get("windows"):
                continue
            lines.append(
                f"  {name:<12} windows {int(op['windows']):>6}  "
                f"rows {int(op['fused_rows']):>8}  "
                f"mean rows {op['mean_rows_per_window']:>6.1f}"
                f"/{int(op['max_batch'])}  "
                f"keys/window {op['keys_per_window']:>5.1f}  "
                f"max keys {int(op['max_keys_in_window']):>4}"
            )
    keys = stats.get("keys", {})
    if keys:
        lines.append("per-key coalescing:")
        for key_name in sorted(keys):
            for op_name, op in keys[key_name].items():
                lines.append(
                    f"  {_render_key_name(key_name):<20} "
                    f"{op_name:<12} gen {int(op['generation']):>3}  "
                    f"items {int(op['items']):>8}  "
                    f"windows {int(op['windows']):>6}"
                )
    keystore = stats.get("keystore")
    if keystore:
        lines.append(
            f"keystore: {keystore['keys']} named key(s) "
            f"({keystore['active']} active), "
            f"hot {keystore['hot']}/{keystore['hot_capacity']}, "
            f"{keystore['materializations']} materialization(s), "
            f"{keystore['evictions']} eviction(s), "
            f"{keystore['rotated']} rotation(s)"
        )
    executor = stats.get("executor", {})
    kind = executor.get("kind", "?")
    if kind == "pool":
        lines.append(
            f"executor: pool, {executor['alive']}/{executor['workers']} "
            f"workers alive, {executor['respawns']} respawn(s)"
        )
        for shard in executor.get("shards", []):
            state = "up" if shard["alive"] else "down"
            lines.append(
                f"  shard {shard['index']} [{state:>4}] "
                f"pid {shard['pid']}  jobs {shard['jobs']:>6}  "
                f"items {shard['items']:>8}  "
                f"outstanding {shard['outstanding_items']:>4}  "
                f"keys {shard.get('cached_keys', 0):>3}"
            )
    else:
        lines.append(
            f"executor: {kind}, {executor.get('batches', 0)} batch(es), "
            f"{executor.get('items', 0)} item(s)"
        )
    return "\n".join(lines)


def _cmd_stats(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.service.loadgen import connect_with_retry
    from repro.service.protocol import ServiceError

    host, port = _resolve_endpoint(args)

    async def fetch() -> dict:
        client = await connect_with_retry(
            host, port, args.connect_timeout
        )
        try:
            return await client.stats()
        finally:
            await client.close()

    try:
        stats = asyncio.run(fetch())
    except (OSError, ValueError, ConnectionError, ServiceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(stats, indent=2))
    else:
        print(render_stats(stats))
    return 0


def _cmd_keys(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.service.loadgen import connect_with_retry
    from repro.service.protocol import ServiceError

    host, port = _resolve_endpoint(args)

    async def go():
        client = await connect_with_retry(
            host, port, args.connect_timeout
        )
        try:
            if args.keys_command == "list":
                return await client.list_keys()
            action = {
                "create": client.create_key,
                "rotate": client.rotate_key,
                "retire": client.retire_key,
            }[args.keys_command]
            return await action(args.name)
        finally:
            await client.close()

    try:
        result = asyncio.run(go())
    except (OSError, ValueError, ConnectionError, ServiceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(result, indent=2))
    elif args.keys_command == "list":
        print(render_key_list(result))
    else:
        past = {
            "create": "created",
            "rotate": "rotated",
            "retire": "retired",
        }[args.keys_command]
        print(
            f"{past} key {result['name']!r} "
            f"(generation {result['generation']}, {result['state']}, "
            f"{result['params']})"
        )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.metrics import (
        ScrapeError,
        parse_exposition,
        scrape,
        validate_families,
    )

    try:
        text = asyncio.run(
            scrape(args.host, args.port, timeout=args.timeout)
        )
    except ScrapeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not (args.validate or args.json):
        sys.stdout.write(text)
        return 0
    try:
        families = parse_exposition(text)
    except ValueError as exc:
        print(f"error: unparseable exposition: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "name": family.name,
                        "type": family.kind,
                        "help": family.documentation,
                        "samples": [
                            {
                                "name": sample.name,
                                "labels": sample.labels,
                                "value": sample.value,
                            }
                            for sample in family.samples
                        ],
                    }
                    for family in families.values()
                ],
                indent=2,
            )
        )
    if args.validate:
        problems = validate_families(families, require_naming=True)
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
        samples = sum(
            len(family.samples) for family in families.values()
        )
        print(
            f"exposition OK: {len(families)} families, "
            f"{samples} samples, naming contract satisfied"
        )
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.service.loadgen import render_result, run_load
    from repro.service.protocol import ServiceError

    host, port = _resolve_endpoint(args)
    try:
        result = asyncio.run(
            run_load(
                host,
                port,
                op=args.op,
                mode=args.mode,
                concurrency=args.concurrency,
                requests=args.requests,
                rate=args.rate,
                connections=args.connections,
                message=bytes(
                    i % 256 for i in range(max(0, args.message_bytes))
                ),
                connect_timeout=args.connect_timeout,
            )
        )
    except (OSError, ValueError, ServiceError) as exc:
        # ServiceError surfaces when the op's fixture setup (e.g. the
        # ciphertext a decrypt run replays) is rejected by the server.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(render_result(result))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(result, f, indent=2)
        print(f"wrote {args.json}")
    return 0 if result["errors"] == 0 else 1


def _cmd_smoke(args: argparse.Namespace) -> int:
    from repro.api.errors import EngineUnavailableError, RlweError
    from repro.api.smoke import run_smoke

    engines = [e.strip() for e in args.engines.split(",") if e.strip()]
    if not engines:
        raise SystemExit("error: --engines lists no engines")
    if args.batch < 1:
        raise SystemExit("error: --batch must be >= 1")
    try:
        return run_smoke(
            engines,
            params_name=args.params,
            seed=args.seed,
            batch=args.batch,
            fresh_remote=args.fresh_remote,
        )
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}")
    except (EngineUnavailableError, RlweError, OSError) as exc:
        raise SystemExit(f"error: {exc}")


_COMMANDS = {
    "tables": _cmd_tables,
    "keygen": _cmd_keygen,
    "encrypt": _cmd_encrypt,
    "decrypt": _cmd_decrypt,
    "lint": _cmd_lint,
    "sample": _cmd_sample,
    "profile": _cmd_profile,
    "bench-backends": _cmd_bench_backends,
    "serve": _cmd_serve,
    "keys": _cmd_keys,
    "loadgen": _cmd_loadgen,
    "metrics": _cmd_metrics,
    "stats": _cmd_stats,
    "smoke": _cmd_smoke,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
