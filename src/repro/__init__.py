"""repro — reproduction of *Efficient Software Implementation of
Ring-LWE Encryption* (De Clercq, Sinha Roy, Vercauteren, Verbauwhede;
DATE 2015), grown into a batched, multi-process, networked serving
stack behind one facade.

The package provides:

* :mod:`repro.api` — the unified :class:`~repro.api.RlweSession`
  facade: one transport-agnostic API (sync and async) over direct
  in-process calls, a multi-process worker pool, and the remote
  key-transport service, with one typed exception hierarchy and one
  wire-format currency;
* :mod:`repro.core` — the ring-LWE encryption scheme (KeyGen / Encrypt /
  Decrypt) over the paper's parameter sets P1 and P2;
* :mod:`repro.ntt` — negative-wrapped NTT kernels (reference Alg. 3,
  packed/unrolled Alg. 4, fused parallel NTT) and polynomial products;
* :mod:`repro.sampler` — the Knuth-Yao discrete Gaussian sampler with the
  paper's full optimization stack, plus CDT and rejection baselines;
* :mod:`repro.trng` — the simulated STM32F4 TRNG, the register bit pool,
  and a NIST SP800-22 subset;
* :mod:`repro.machine` — the Cortex-M4F instruction-cost model;
* :mod:`repro.cyclemodel` — instruction-level twins of every kernel,
  regenerating the paper's cycle-count tables;
* :mod:`repro.baselines` — binary-field ECC and the ECIES estimate of
  Table IV;
* :mod:`repro.analysis` — the experiment drivers for every paper table
  and figure.

Quickstart::

    from repro import P1, RlweSession

    with RlweSession.open("local", params=P1, seed=42) as session:
        ct = session.encrypt(b"post-quantum hello")
        assert session.decrypt(ct, length=18) == b"post-quantum hello"

Swap ``"local"`` for ``"pool:4"`` or ``"tcp://host:8470"`` and the same
code runs on a worker-process pool or against a remote ``rlwe-repro
serve`` — same methods, same bytes, same exceptions.  The lower-level
building blocks remain public::

    from repro import P1, seeded_scheme

    scheme = seeded_scheme(P1, seed=42)
    keys = scheme.generate_keypair()
    ct = scheme.encrypt(keys.public, b"post-quantum hello")
    assert scheme.decrypt(keys.private, ct, length=18) == b"post-quantum hello"
"""

from repro.core.params import (
    P1,
    P2,
    P3,
    P4,
    PARAMETER_SETS,
    ParameterSet,
    custom_parameter_set,
    get_parameter_set,
)
from repro.core.scheme import (
    Ciphertext,
    KeyPair,
    PrivateKey,
    PublicKey,
    RlweEncryptionScheme,
)
from repro.trng.bitsource import BitSource, PrngBitSource, QueueBitSource
from repro.trng.xorshift import Xorshift128

__version__ = "1.0.0"

__all__ = [
    "P1",
    "P2",
    "P3",
    "P4",
    "PARAMETER_SETS",
    "ParameterSet",
    "custom_parameter_set",
    "get_parameter_set",
    "Ciphertext",
    "KeyPair",
    "PrivateKey",
    "PublicKey",
    "RlweEncryptionScheme",
    "BitSource",
    "PrngBitSource",
    "QueueBitSource",
    "Xorshift128",
    "seeded_scheme",
    "__version__",
    # Session facade (lazy — see __getattr__):
    "RlweSession",
    "AsyncRlweSession",
    "KeyHandle",
    "AsyncKeyHandle",
    "KeyInfo",
    "RlweError",
    "WireFormatError",
    "CapacityError",
    "DecryptionError",
    "EngineUnavailableError",
    "SessionClosedError",
    "KeyNotFoundError",
    "StaleKeyGenerationError",
    "RemoteError",
]

#: Facade names re-exported lazily so that ``import repro`` stays light
#: (the api package pulls in asyncio and the whole service stack).
_API_EXPORTS = frozenset(
    [
        "RlweSession",
        "AsyncRlweSession",
        "KeyHandle",
        "AsyncKeyHandle",
        "KeyInfo",
        "RlweError",
        "WireFormatError",
        "CapacityError",
        "DecryptionError",
        "EngineUnavailableError",
        "SessionClosedError",
        "KeyNotFoundError",
        "StaleKeyGenerationError",
        "RemoteError",
    ]
)


def __getattr__(name: str):
    if name in _API_EXPORTS:
        import repro.api as _api

        return getattr(_api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def seeded_scheme(
    params: ParameterSet,
    seed: int = 0,
    ntt: "str | None" = None,
    backend=None,
) -> RlweEncryptionScheme:
    """A scheme instance with deterministic randomness (for tests/demos).

    ``backend`` (or the legacy ``ntt`` kernel name) selects the compute
    backend; the default honours ``REPRO_BACKEND``.
    """
    return RlweEncryptionScheme(
        params, bits=PrngBitSource(Xorshift128(seed)), ntt=ntt, backend=backend
    )
