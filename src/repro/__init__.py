"""repro — reproduction of *Efficient Software Implementation of
Ring-LWE Encryption* (De Clercq, Sinha Roy, Vercauteren, Verbauwhede;
DATE 2015).

The package provides:

* :mod:`repro.core` — the ring-LWE encryption scheme (KeyGen / Encrypt /
  Decrypt) over the paper's parameter sets P1 and P2;
* :mod:`repro.ntt` — negative-wrapped NTT kernels (reference Alg. 3,
  packed/unrolled Alg. 4, fused parallel NTT) and polynomial products;
* :mod:`repro.sampler` — the Knuth-Yao discrete Gaussian sampler with the
  paper's full optimization stack, plus CDT and rejection baselines;
* :mod:`repro.trng` — the simulated STM32F4 TRNG, the register bit pool,
  and a NIST SP800-22 subset;
* :mod:`repro.machine` — the Cortex-M4F instruction-cost model;
* :mod:`repro.cyclemodel` — instruction-level twins of every kernel,
  regenerating the paper's cycle-count tables;
* :mod:`repro.baselines` — binary-field ECC and the ECIES estimate of
  Table IV;
* :mod:`repro.analysis` — the experiment drivers for every paper table
  and figure.

Quickstart::

    from repro import P1, seeded_scheme

    scheme = seeded_scheme(P1, seed=42)
    keys = scheme.generate_keypair()
    ct = scheme.encrypt(keys.public, b"post-quantum hello")
    assert scheme.decrypt(keys.private, ct, length=18) == b"post-quantum hello"
"""

from repro.core.params import (
    P1,
    P2,
    P3,
    P4,
    PARAMETER_SETS,
    ParameterSet,
    custom_parameter_set,
    get_parameter_set,
)
from repro.core.scheme import (
    Ciphertext,
    KeyPair,
    PrivateKey,
    PublicKey,
    RlweEncryptionScheme,
)
from repro.trng.bitsource import BitSource, PrngBitSource, QueueBitSource
from repro.trng.xorshift import Xorshift128

__version__ = "1.0.0"

__all__ = [
    "P1",
    "P2",
    "P3",
    "P4",
    "PARAMETER_SETS",
    "ParameterSet",
    "custom_parameter_set",
    "get_parameter_set",
    "Ciphertext",
    "KeyPair",
    "PrivateKey",
    "PublicKey",
    "RlweEncryptionScheme",
    "BitSource",
    "PrngBitSource",
    "QueueBitSource",
    "Xorshift128",
    "seeded_scheme",
    "__version__",
]


def seeded_scheme(
    params: ParameterSet,
    seed: int = 0,
    ntt: "str | None" = None,
    backend=None,
) -> RlweEncryptionScheme:
    """A scheme instance with deterministic randomness (for tests/demos).

    ``backend`` (or the legacy ``ntt`` kernel name) selects the compute
    backend; the default honours ``REPRO_BACKEND``.
    """
    return RlweEncryptionScheme(
        params, bits=PrngBitSource(Xorshift128(seed)), ntt=ntt, backend=backend
    )
