"""Modular arithmetic primitives with instruction-level cost accounting.

The NTT inner loop performs one twiddle multiply plus a modular reduction
per butterfly operand, and modular add/sub for the butterfly outputs.  On
the Cortex-M4F the standard implementation is Barrett reduction:

    t = (value * K) >> 32          ; umull (1 cy) + register pick (free)
    r = value - t * q              ; mls (1 cy)
    if r >= q: r -= q              ; cmp (1 cy) + conditional sub (1 cy)

with K = floor(2^32 / q) kept in a register.  These helpers execute the
real arithmetic and charge the corresponding categories, so the cycle
models stay bit-exact *and* cost-faithful.
"""

from __future__ import annotations

from repro.machine.machine import CortexM4
from repro.ntt.modmath import barrett_constant


class BarrettReducer:
    """Barrett reduction mod q for 32-bit inputs, with cost accounting."""

    def __init__(self, q: int, width: int = 32):
        self.q = q
        self.width = width
        self.constant = barrett_constant(q, width)

    def reduce(self, machine: CortexM4, value: int) -> int:
        """Reduce ``value`` (< 2^width) modulo q."""
        if not 0 <= value < (1 << self.width):
            raise ValueError(f"value {value} out of Barrett input range")
        t = (value * self.constant) >> self.width
        machine.mul()  # umull rlo, rhi, value, K  (rhi is t)
        r = value - t * self.q
        machine.mul()  # mls r, t, q, value
        machine.alu()  # cmp r, q
        if r >= self.q:
            machine.alu()  # conditional sub (IT + sub, charged as one ALU)
            r -= self.q
        if not 0 <= r < self.q:  # pragma: no cover - Barrett bound proof
            raise ArithmeticError(
                f"Barrett reduction out of range: {value} -> {r}"
            )
        return r

    def mul_mod(self, machine: CortexM4, a: int, b: int) -> int:
        """a * b mod q: one multiply feeding one Barrett reduction."""
        machine.mul()  # mul a, b
        return self.reduce(machine, a * b)

    def add_mod(self, machine: CortexM4, a: int, b: int) -> int:
        """a + b mod q for operands already in [0, q)."""
        r = a + b
        machine.alu()  # add
        machine.alu()  # cmp
        if r >= self.q:
            machine.alu()  # conditional sub
            r -= self.q
        return r

    def sub_mod(self, machine: CortexM4, a: int, b: int) -> int:
        """a - b mod q for operands already in [0, q)."""
        r = a - b
        machine.alu()  # sub
        machine.alu()  # cmp against zero (flags come free, keep symmetric)
        if r < 0:
            machine.alu()  # conditional add q
            r += self.q
        return r
