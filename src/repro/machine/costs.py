"""Instruction-category cycle costs for the modelled target CPUs.

The reproduction replaces the paper's STM32F407 (ARM Cortex-M4F) with an
instruction-category cost model: every kernel in :mod:`repro.cyclemodel`
executes its algorithm on real data while charging these per-category
costs to a :class:`repro.machine.machine.CortexM4` instance.

The M4 numbers follow the ARM Cortex-M4 Technical Reference Manual and
the facts the paper itself states:

* single-cycle 32-bit multiply (including MLA/UMULL) — paper Section III-A;
* memory access costs 2 cycles "regardless of whether it is to a halfword
  or a full word" — paper Section III-C;
* hardware divide takes 2 to 12 cycles "depending on the input
  parameters" — paper Section III-A;
* ``clz`` is a single-cycle ALU operation.

Deliberate simplifications (documented, applied uniformly so *relative*
comparisons stay meaningful): no load pipelining credit for back-to-back
LDRs, a flat 3-cycle charge for taken branches (pipeline refill), and no
flash wait-state modelling.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostTable:
    """Cycle cost per instruction category."""

    name: str
    alu: int = 1  # add/sub/shift/logic/mov/cmp
    mul: int = 1  # mul/mla/umull/smull
    div_min: int = 2  # udiv/sdiv best case
    div_max: int = 12  # udiv/sdiv worst case
    load: int = 2  # ldr/ldrh/ldrb
    store: int = 2  # str/strh/strb
    branch_taken: int = 3  # pipeline refill
    branch_not_taken: int = 1
    clz: int = 1
    call: int = 3  # bl
    ret: int = 3  # bx lr

    def div(self, dividend: int, divisor: int) -> int:
        """Data-dependent divide cost.

        The Cortex-M4 divider early-terminates based on the leading-zero
        difference of the operands; we charge roughly one cycle per four
        quotient bits, clamped to the documented [div_min, div_max] range.
        """
        if divisor == 0:
            return self.div_max
        quotient_bits = max(
            0, dividend.bit_length() - divisor.bit_length() + 1
        )
        cost = self.div_min + (quotient_bits + 3) // 4
        return min(self.div_max, max(self.div_min, cost))


#: The paper's target: STM32F407 at 168 MHz.
CORTEX_M4F = CostTable(name="ARM Cortex-M4F")

#: The Cortex-M0+ used by the ECC comparison point [19]: two-cycle
#: (32x32->32) multiply, no hardware divide (div costs model a software
#: routine), slightly cheaper branches (shorter pipeline).
CORTEX_M0PLUS = CostTable(
    name="ARM Cortex-M0+",
    mul=2,
    div_min=20,
    div_max=40,
    branch_taken=2,
    clz=8,  # no CLZ instruction: emulated in software
)

COST_TABLES = {t.name: t for t in (CORTEX_M4F, CORTEX_M0PLUS)}
