"""Flash/RAM footprint accounting for Table II.

Table II reports, per operation, the flash and RAM consumption on the
STM32F407.  A Python reproduction cannot measure compiled code size, so
the model splits the footprint the way an embedded linker map would:

* **constant tables (flash)** — the probability matrix (trimmed words),
  the sampler LUTs, and the NTT twiddle/scale tables;
* **working RAM** — the polynomial buffers each operation keeps live
  simultaneously (two coefficients per word where the paper packs), plus
  a small fixed stack allowance.

The paper's flash numbers (1552/1506/516 bytes, identical across P1/P2)
are dominated by code and are carried as literature constants in the
Table II bench; RAM numbers are genuinely reproduced by this model
(e.g. encryption at P1: six n-coefficient buffers = 3 KiB + stack, paper
says 3128 B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import ParameterSet
from repro.ntt.roots import ntt_tables
from repro.sampler.lut_sampler import build_luts
from repro.sampler.pmat import ProbabilityMatrix

#: Per-function stack frames (saved registers + locals).  These decompose
#: the paper's Table II RAM figures exactly: every reported number equals
#: buffers * n * 2 bytes + the frame below (e.g. encryption P1:
#: 6*256*2 + 56 = 3128 B; decryption P2: 4*512*2 + 52 = 4148 B).
KEYGEN_STACK_BYTES = 60
ENCRYPT_STACK_BYTES = 56
DECRYPT_STACK_BYTES = 52


@dataclass(frozen=True)
class Footprint:
    """Byte counts for one scheme operation."""

    operation: str
    params_name: str
    table_flash_bytes: int
    ram_bytes: int

    def __str__(self) -> str:
        return (
            f"{self.operation} [{self.params_name}]: "
            f"{self.table_flash_bytes} B tables, {self.ram_bytes} B RAM"
        )


def polynomial_buffer_bytes(params: ParameterSet, count: int) -> int:
    """RAM for ``count`` packed polynomial buffers."""
    return count * params.n * params.coefficient_bytes


def sampler_table_bytes(params: ParameterSet) -> int:
    """Flash for the trimmed probability matrix plus both LUTs."""
    pmat = ProbabilityMatrix.for_params(params)
    luts = build_luts(pmat)
    return pmat.storage_bytes() + luts.lut1_bytes + luts.lut2_bytes


def ntt_table_bytes(params: ParameterSet) -> int:
    """Flash for forward/inverse twiddles and the INTT scale table."""
    return ntt_tables(params).flash_bytes()


def keygen_footprint(params: ParameterSet) -> Footprint:
    """KeyGen keeps r1, r2 and the output p live: three buffers.

    (r1 is overwritten in place by its NTT; p = r1_hat - a_hat*r2_hat
    reuses the r1 buffer in a tight implementation, so three buffers is
    the high-water mark: r1/p, r2, and the public polynomial a.)
    """
    ram = polynomial_buffer_bytes(params, 3) + KEYGEN_STACK_BYTES
    flash = sampler_table_bytes(params) + ntt_table_bytes(params)
    return Footprint("Key Generation", params.name, flash, ram)


def encryption_footprint(params: ParameterSet) -> Footprint:
    """Encryption's high-water mark is six buffers.

    e1, e2, e3+m (the parallel NTT requires all three resident — the
    paper stores them contiguously n/2 words apart), the two ciphertext
    polynomials c1 and c2, and the public key polynomial being combined.
    """
    ram = polynomial_buffer_bytes(params, 6) + ENCRYPT_STACK_BYTES
    flash = sampler_table_bytes(params) + ntt_table_bytes(params)
    return Footprint("Encryption", params.name, flash, ram)


def decryption_footprint(params: ParameterSet) -> Footprint:
    """Decryption holds c1, c2, the key r2, and the working product."""
    ram = polynomial_buffer_bytes(params, 4) + DECRYPT_STACK_BYTES
    # Decryption needs no Gaussian tables: only the inverse NTT constants.
    flash = ntt_table_bytes(params)
    return Footprint("Decryption", params.name, flash, ram)


def operation_footprints(params: ParameterSet) -> "tuple[Footprint, ...]":
    return (
        keygen_footprint(params),
        encryption_footprint(params),
        decryption_footprint(params),
    )
