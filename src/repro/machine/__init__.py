"""Cortex-M4F instruction-cost model (the hardware substitution)."""

from repro.machine.costs import CORTEX_M0PLUS, CORTEX_M4F, CostTable
from repro.machine.footprint import (
    Footprint,
    decryption_footprint,
    encryption_footprint,
    keygen_footprint,
    operation_footprints,
)
from repro.machine.machine import CortexM4, NullMachine
from repro.machine.reduce import BarrettReducer

__all__ = [
    "CORTEX_M4F",
    "CORTEX_M0PLUS",
    "CostTable",
    "CortexM4",
    "NullMachine",
    "BarrettReducer",
    "Footprint",
    "keygen_footprint",
    "encryption_footprint",
    "decryption_footprint",
    "operation_footprints",
]
