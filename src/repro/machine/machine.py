"""Cycle-accounting machine model for the Cortex-M4F substitution.

A :class:`CortexM4` instance is threaded through every kernel in
:mod:`repro.cyclemodel`.  The kernel performs its real computation in
Python and, alongside each step, charges the instruction categories an
assembly implementation would execute.  ``machine.cycles`` at the end is
the modelled cycle count — the reproduction's stand-in for the paper's
``DWT_CYCCNT`` measurements.

The :meth:`CortexM4.region` context manager mirrors how the paper brackets
routines with cycle-counter reads, and keeps per-routine tallies so one
modelled encryption can report its NTT/sampling/arithmetic breakdown.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.machine.costs import CORTEX_M4F, CostTable

_MASK32 = 0xFFFFFFFF


class CortexM4:
    """Instruction-category cycle counter with a small helper ALU."""

    def __init__(self, costs: CostTable = CORTEX_M4F):
        self.costs = costs
        self._cycles = 0
        self._region_totals: Dict[str, int] = {}
        self._region_stack: List[str] = []

    # ------------------------------------------------------------------
    # Counter
    # ------------------------------------------------------------------
    @property
    def cycles(self) -> int:
        """Modelled cycles elapsed since construction or :meth:`reset`."""
        return self._cycles

    def reset(self) -> None:
        self._cycles = 0
        self._region_totals.clear()
        self._region_stack.clear()

    def tick(self, cycles: int) -> None:
        """Charge an explicit number of cycles (e.g. a peripheral stall)."""
        if cycles < 0:
            raise ValueError("cannot charge negative cycles")
        self._cycles += cycles

    # ------------------------------------------------------------------
    # Instruction categories
    # ------------------------------------------------------------------
    def alu(self, count: int = 1) -> None:
        """add/sub/shift/logic/mov/cmp — ``count`` of them."""
        self._cycles += self.costs.alu * count

    def mul(self, count: int = 1) -> None:
        """32-bit multiply (mul/mla/umull) — single cycle on the M4F."""
        self._cycles += self.costs.mul * count

    def div(self, dividend: int, divisor: int) -> int:
        """Hardware divide; returns the quotient, charges 2-12 cycles."""
        self._cycles += self.costs.div(dividend, divisor)
        if divisor == 0:
            return 0  # M4 returns 0 on divide-by-zero (DIV_0_TRP clear)
        return dividend // divisor

    def load(self, count: int = 1) -> None:
        """Memory read (word or halfword — same cost, per the paper)."""
        self._cycles += self.costs.load * count

    def store(self, count: int = 1) -> None:
        self._cycles += self.costs.store * count

    def branch(self, taken: bool = True) -> None:
        self._cycles += (
            self.costs.branch_taken if taken else self.costs.branch_not_taken
        )

    def call(self) -> None:
        self._cycles += self.costs.call

    def ret(self) -> None:
        self._cycles += self.costs.ret

    def clz(self, value: int) -> int:
        """Count leading zeros of a 32-bit value; charges one cycle."""
        if not 0 <= value <= _MASK32:
            raise ValueError(f"clz operand {value:#x} not a 32-bit value")
        self._cycles += self.costs.clz
        return 32 - value.bit_length()

    # ------------------------------------------------------------------
    # Region profiling
    # ------------------------------------------------------------------
    @contextmanager
    def region(self, name: str) -> Iterator[None]:
        """Attribute the cycles of a ``with`` block to ``name``.

        Regions nest; a nested region's cycles also count toward its
        enclosing regions (matching how bracketed DWT reads behave).
        """
        self._region_stack.append(name)
        start = self._cycles
        try:
            yield
        finally:
            self._region_stack.pop()
            elapsed = self._cycles - start
            self._region_totals[name] = (
                self._region_totals.get(name, 0) + elapsed
            )

    def region_cycles(self, name: str) -> int:
        return self._region_totals.get(name, 0)

    @property
    def regions(self) -> Dict[str, int]:
        return dict(self._region_totals)

    # ------------------------------------------------------------------
    # Measurement helper
    # ------------------------------------------------------------------
    def measure(self, fn, *args, **kwargs):
        """Run ``fn(self, *args)`` and return (result, cycles_elapsed)."""
        start = self._cycles
        result = fn(self, *args, **kwargs)
        return result, self._cycles - start


class NullMachine(CortexM4):
    """A machine whose charges are all free — lets cycle-model kernels be
    reused as plain functional kernels in tests without cost bookkeeping
    overhead mattering semantically."""

    def tick(self, cycles: int) -> None:  # noqa: D102 - trivially free
        pass

    def alu(self, count: int = 1) -> None:
        pass

    def mul(self, count: int = 1) -> None:
        pass

    def load(self, count: int = 1) -> None:
        pass

    def store(self, count: int = 1) -> None:
        pass

    def branch(self, taken: bool = True) -> None:
        pass

    def call(self) -> None:
        pass

    def ret(self) -> None:
        pass

    def div(self, dividend: int, divisor: int) -> int:
        return dividend // divisor if divisor else 0

    def clz(self, value: int) -> int:
        if not 0 <= value <= _MASK32:
            raise ValueError(f"clz operand {value:#x} not a 32-bit value")
        return 32 - value.bit_length()
