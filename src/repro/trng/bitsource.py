"""Bit sources feeding the Knuth-Yao samplers.

Alg. 1/2 consume random bits one at a time, LSB-first out of a 32-bit
register (``r & 1`` then ``r >>= 1``).  Every consumer in this package is
written against the :class:`BitSource` interface so tests can feed exact
bit strings (:class:`QueueBitSource`) while production sampling draws from
the simulated TRNG (:class:`PrngBitSource`, or the cycle-model
:class:`repro.trng.bitpool.BitPool`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List

from repro.trng.xorshift import Xorshift128


class RandomnessExhausted(Exception):
    """Raised when a finite bit source runs out of bits."""


class BitSource(ABC):
    """Source of random bits with consumption accounting."""

    def __init__(self) -> None:
        self.bits_consumed = 0

    @abstractmethod
    def _next_bit(self) -> int:
        """Return the next raw bit (0 or 1)."""

    def bit(self) -> int:
        """Return the next bit and account for it."""
        value = self._next_bit()
        if value not in (0, 1):
            raise ValueError(f"bit source produced non-bit {value!r}")
        self.bits_consumed += 1
        return value

    def bits(self, count: int) -> int:
        """Return ``count`` bits as an integer, first-consumed bit at LSB.

        This matches the register semantics of Alg. 2: ``index = r & 255``
        takes the low 8 bits, whose LSB is the next bit the shift-out
        ``r >>= 1`` would have produced.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        value = 0
        for position in range(count):
            value |= self.bit() << position
        return value


class QueueBitSource(BitSource):
    """Deterministic bit source over an explicit bit sequence (testing)."""

    def __init__(self, bits: Iterable[int]):
        super().__init__()
        self._queue: List[int] = list(bits)
        self._cursor = 0

    @classmethod
    def from_integer(cls, value: int, width: int) -> "QueueBitSource":
        """Bits of ``value`` LSB-first, ``width`` of them (Alg. 2 index)."""
        return cls((value >> i) & 1 for i in range(width))

    @property
    def remaining(self) -> int:
        return len(self._queue) - self._cursor

    def _next_bit(self) -> int:
        if self._cursor >= len(self._queue):
            raise RandomnessExhausted(
                f"queue exhausted after {self._cursor} bits"
            )
        value = self._queue[self._cursor]
        self._cursor += 1
        return value


class PrngBitSource(BitSource):
    """Bit source over 32-bit PRNG words, shifted out LSB-first."""

    def __init__(self, prng: Xorshift128):
        super().__init__()
        self._prng = prng
        self._register = 0
        self._available = 0
        self.words_fetched = 0

    def _next_bit(self) -> int:
        if self._available == 0:
            self._register = self._prng.next_u32()
            self._available = 32
            self.words_fetched += 1
        value = self._register & 1
        self._register >>= 1
        self._available -= 1
        return value
