"""Bit sources feeding the Knuth-Yao samplers.

Alg. 1/2 consume random bits one at a time, LSB-first out of a 32-bit
register (``r & 1`` then ``r >>= 1``).  Every consumer in this package is
written against the :class:`BitSource` interface so tests can feed exact
bit strings (:class:`QueueBitSource`) while production sampling draws from
the simulated TRNG (:class:`PrngBitSource`, or the cycle-model
:class:`repro.trng.bitpool.BitPool`).
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod
from typing import Iterable, List

from repro.numpy_support import get_numpy
from repro.trng.xorshift import Xorshift128


class RandomnessExhausted(Exception):
    """Raised when a finite bit source runs out of bits."""


class BitSource(ABC):
    """Source of random bits with consumption accounting."""

    def __init__(self) -> None:
        self.bits_consumed = 0

    @abstractmethod
    def _next_bit(self) -> int:
        """Return the next raw bit (0 or 1)."""

    def bit(self) -> int:
        """Return the next bit and account for it."""
        value = self._next_bit()
        if value not in (0, 1):
            raise ValueError(f"bit source produced non-bit {value!r}")
        self.bits_consumed += 1
        return value

    def bits(self, count: int) -> int:
        """Return ``count`` bits as an integer, first-consumed bit at LSB.

        This matches the register semantics of Alg. 2: ``index = r & 255``
        takes the low 8 bits, whose LSB is the next bit the shift-out
        ``r >>= 1`` would have produced.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        value = 0
        for position in range(count):
            value |= self.bit() << position
        return value

    def bit_chunks(self, count: int, width: int) -> List[int]:
        """Return ``count`` draws of :meth:`bits`\\ ``(width)`` as a list.

        The bit stream consumed is exactly the one ``count`` sequential
        ``bits(width)`` calls would consume; subclasses may override this
        with a bulk implementation but must preserve that equivalence
        (the block sampler's cross-path determinism depends on it).
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.bits(width) for _ in range(count)]

    def bit_chunk_array(self, count: int, width: int):
        """Like :meth:`bit_chunks` but may return a NumPy array.

        Vectorized consumers call this to skip a list round-trip; the
        default simply returns the list.
        """
        return self.bit_chunks(count, width)


class QueueBitSource(BitSource):
    """Deterministic bit source over an explicit bit sequence (testing)."""

    def __init__(self, bits: Iterable[int]):
        super().__init__()
        self._queue: List[int] = list(bits)
        self._cursor = 0

    @classmethod
    def from_integer(cls, value: int, width: int) -> "QueueBitSource":
        """Bits of ``value`` LSB-first, ``width`` of them (Alg. 2 index)."""
        return cls((value >> i) & 1 for i in range(width))

    @property
    def remaining(self) -> int:
        return len(self._queue) - self._cursor

    def _next_bit(self) -> int:
        if self._cursor >= len(self._queue):
            raise RandomnessExhausted(
                f"queue exhausted after {self._cursor} bits"
            )
        value = self._queue[self._cursor]
        self._cursor += 1
        return value


class PrngBitSource(BitSource):
    """Bit source over 32-bit PRNG words, shifted out LSB-first."""

    def __init__(self, prng: Xorshift128):
        super().__init__()
        self._prng = prng
        self._register = 0
        self._available = 0
        self.words_fetched = 0

    def _next_bit(self) -> int:
        if self._available == 0:
            self._register = self._prng.next_u32()
            self._available = 32
            self.words_fetched += 1
        value = self._register & 1
        self._register >>= 1
        self._available -= 1
        return value

    def bits(self, count: int) -> int:
        """Bulk register extraction, one mask per word instead of per bit.

        Consumes exactly the stream of ``count`` sequential :meth:`bit`
        calls: the low ``count`` bits of the register (refilled from the
        PRNG as it drains), first-consumed bit at the LSB.  This is the
        samplers' hot path — every LUT index is a ``bits(8)``/``bits(5)``
        draw.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        value = 0
        position = 0
        while position < count:
            if self._available == 0:
                self._register = self._prng.next_u32()
                self._available = 32
                self.words_fetched += 1
            take = min(self._available, count - position)
            value |= (self._register & ((1 << take) - 1)) << position
            self._register >>= take
            self._available -= take
            position += take
        self.bits_consumed += count
        return value

    # ------------------------------------------------------------------
    # Bulk extraction
    # ------------------------------------------------------------------
    def _chunk_block(self, count: int, width: int):
        """Vectorized chunk extraction; ``None`` falls back to scalar.

        Consumes exactly the bit stream of ``count`` sequential
        ``bits(width)`` calls: leftover register bits first, then fresh
        PRNG words LSB-first, with the unused high bits of the final word
        pushed back into the register.
        """
        np = get_numpy()
        total = count * width
        if np is None or count < 0 or width <= 0 or total < 512:
            return None
        prefix: List[int] = []
        while self._available:
            prefix.append(self._register & 1)
            self._register >>= 1
            self._available -= 1
        word_count = (total - len(prefix) + 31) // 32
        words = self._prng.next_words(word_count)
        self.words_fetched += word_count
        data = struct.pack(f"<{word_count}I", *words)
        self.bits_consumed += total
        if width == 8 and not prefix:
            # Byte-aligned 8-bit chunks are exactly the stream's bytes.
            raw = np.frombuffer(data, dtype=np.uint8)
            leftover_bits = np.unpackbits(
                raw[count:], bitorder="little"
            ).tolist()
            chunks = raw[:count].astype(np.int64)
        else:
            bits = np.unpackbits(
                np.frombuffer(data, dtype=np.uint8), bitorder="little"
            )
            if prefix:
                bits = np.concatenate(
                    [np.asarray(prefix, dtype=np.uint8), bits]
                )
            leftover_bits = bits[total:].tolist()
            packed = bits[:total].astype(np.int64).reshape(count, width)
            if width == 1:
                chunks = packed[:, 0]
            else:
                weights = np.left_shift(
                    np.int64(1), np.arange(width, dtype=np.int64)
                )
                chunks = packed @ weights
        # All leftover bits come from the last fetched word (< 32 of them).
        register = 0
        for position, bit in enumerate(leftover_bits):
            register |= bit << position
        self._register = register
        self._available = len(leftover_bits)
        return chunks

    def bit_chunks(self, count: int, width: int) -> List[int]:
        block = self._chunk_block(count, width)
        if block is None:
            return super().bit_chunks(count, width)
        return block.tolist()

    def bit_chunk_array(self, count: int, width: int):
        block = self._chunk_block(count, width)
        if block is None:
            return super().bit_chunks(count, width)
        return block
