"""Simulated TRNG, register bit pool, and randomness validation."""

from repro.trng.bitpool import BitPool
from repro.trng.drbg import HashDrbgBitSource
from repro.trng.stream import DeterministicRng
from repro.trng.bitsource import (
    BitSource,
    PrngBitSource,
    QueueBitSource,
    RandomnessExhausted,
)
from repro.trng.trng import (
    DEFAULT_CYCLES_PER_WORD,
    PESSIMISTIC_CYCLES_PER_WORD,
    SimulatedTrng,
    core_cycles_per_word,
)
from repro.trng.xorshift import Xorshift128

__all__ = [
    "BitPool",
    "DeterministicRng",
    "HashDrbgBitSource",
    "BitSource",
    "PrngBitSource",
    "QueueBitSource",
    "RandomnessExhausted",
    "SimulatedTrng",
    "DEFAULT_CYCLES_PER_WORD",
    "PESSIMISTIC_CYCLES_PER_WORD",
    "core_cycles_per_word",
    "Xorshift128",
]
