"""A subset of the NIST SP800-22 statistical test suite.

The paper validates its TRNG by citing ST's AN4230 application note, which
runs the NIST SP800-22 suite.  This module implements six of the suite's
tests — enough to catch constant, biased, periodic, and over-regular
streams — and is used both to validate the xorshift substitution and in
the TRNG test-suite's negative controls.

Each test returns a :class:`TestResult` with the test statistic and
p-value; a stream passes at significance ``alpha`` (NIST uses 0.01) when
``p_value >= alpha``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from scipy.special import erfc, gammaincc


@dataclass(frozen=True)
class TestResult:
    name: str
    statistic: float
    p_value: float

    def passed(self, alpha: float = 0.01) -> bool:
        return self.p_value >= alpha


def _as_bits(bits: Sequence[int]) -> List[int]:
    out = list(bits)
    if any(b not in (0, 1) for b in out):
        raise ValueError("bit stream must contain only 0/1")
    if not out:
        raise ValueError("bit stream is empty")
    return out


def monobit(bits: Sequence[int]) -> TestResult:
    """Frequency (monobit) test: #ones ~ #zeros."""
    b = _as_bits(bits)
    s = sum(2 * x - 1 for x in b)
    statistic = abs(s) / math.sqrt(len(b))
    p = erfc(statistic / math.sqrt(2.0))
    return TestResult("monobit", statistic, float(p))


def block_frequency(bits: Sequence[int], block: int = 128) -> TestResult:
    """Frequency within non-overlapping blocks."""
    b = _as_bits(bits)
    blocks = len(b) // block
    if blocks < 1:
        raise ValueError("stream shorter than one block")
    chi = 0.0
    for i in range(blocks):
        ones = sum(b[i * block : (i + 1) * block])
        pi = ones / block
        chi += (pi - 0.5) ** 2
    chi *= 4.0 * block
    p = gammaincc(blocks / 2.0, chi / 2.0)
    return TestResult("block_frequency", chi, float(p))


def runs(bits: Sequence[int]) -> TestResult:
    """Runs test: number of maximal same-bit runs."""
    b = _as_bits(bits)
    n = len(b)
    pi = sum(b) / n
    # Prerequisite of SP800-22: monobit must not fail catastrophically.
    if abs(pi - 0.5) >= 2.0 / math.sqrt(n):
        return TestResult("runs", math.inf, 0.0)
    v = 1 + sum(1 for i in range(n - 1) if b[i] != b[i + 1])
    num = abs(v - 2.0 * n * pi * (1 - pi))
    den = 2.0 * math.sqrt(2.0 * n) * pi * (1 - pi)
    statistic = num / den
    p = erfc(statistic / math.sqrt(2.0))
    return TestResult("runs", statistic, float(p))


_LONGEST_RUN_PI = (0.2148, 0.3672, 0.2305, 0.1875)  # M=8, K=3 table


def longest_run_of_ones(bits: Sequence[int]) -> TestResult:
    """Longest run of ones in 8-bit blocks (SP800-22 table for M=8)."""
    b = _as_bits(bits)
    block = 8
    blocks = len(b) // block
    if blocks < 16:
        raise ValueError("need at least 128 bits")
    counts = [0, 0, 0, 0]  # longest run <=1, 2, 3, >=4
    for i in range(blocks):
        longest = current = 0
        for bit in b[i * block : (i + 1) * block]:
            current = current + 1 if bit else 0
            longest = max(longest, current)
        counts[min(max(longest - 1, 0), 3)] += 1
    chi = sum(
        (counts[k] - blocks * _LONGEST_RUN_PI[k]) ** 2
        / (blocks * _LONGEST_RUN_PI[k])
        for k in range(4)
    )
    p = gammaincc(3 / 2.0, chi / 2.0)
    return TestResult("longest_run_of_ones", chi, float(p))


def cumulative_sums(bits: Sequence[int]) -> TestResult:
    """Cumulative sums (forward) test."""
    b = _as_bits(bits)
    n = len(b)
    acc = 0
    z = 0
    for bit in b:
        acc += 2 * bit - 1
        z = max(z, abs(acc))
    if z == 0:
        return TestResult("cumulative_sums", 0.0, 0.0)
    total = 0.0
    from scipy.stats import norm

    for k in range((-n // z + 1) // 4, (n // z - 1) // 4 + 1):
        total += norm.cdf((4 * k + 1) * z / math.sqrt(n)) - norm.cdf(
            (4 * k - 1) * z / math.sqrt(n)
        )
    for k in range((-n // z - 3) // 4, (n // z - 1) // 4 + 1):
        total -= norm.cdf((4 * k + 3) * z / math.sqrt(n)) - norm.cdf(
            (4 * k + 1) * z / math.sqrt(n)
        )
    p = 1.0 - total
    return TestResult("cumulative_sums", float(z), float(min(max(p, 0.0), 1.0)))


def approximate_entropy(bits: Sequence[int], m: int = 2) -> TestResult:
    """Approximate entropy test comparing m and m+1 block statistics."""
    b = _as_bits(bits)
    n = len(b)

    def phi(block_len: int) -> float:
        if block_len == 0:
            return 0.0
        padded = b + b[: block_len - 1]
        counts: Dict[int, int] = {}
        for i in range(n):
            value = 0
            for j in range(block_len):
                value = (value << 1) | padded[i + j]
            counts[value] = counts.get(value, 0) + 1
        return sum(c * math.log(c / n) for c in counts.values()) / n

    ap_en = phi(m) - phi(m + 1)
    chi = 2.0 * n * (math.log(2.0) - ap_en)
    p = gammaincc(2 ** (m - 1), chi / 2.0)
    return TestResult("approximate_entropy", chi, float(p))


def serial(bits: Sequence[int], m: int = 3) -> TestResult:
    """Serial test: uniformity of overlapping m-bit patterns."""
    b = _as_bits(bits)
    n = len(b)
    if n < 16:
        raise ValueError("stream too short for the serial test")

    def psi_sq(block_len: int) -> float:
        if block_len <= 0:
            return 0.0
        padded = b + b[: block_len - 1]
        counts: Dict[int, int] = {}
        for i in range(n):
            value = 0
            for j in range(block_len):
                value = (value << 1) | padded[i + j]
            counts[value] = counts.get(value, 0) + 1
        return (
            (1 << block_len) / n * sum(c * c for c in counts.values()) - n
        )

    d1 = psi_sq(m) - psi_sq(m - 1)
    d2 = psi_sq(m) - 2 * psi_sq(m - 1) + psi_sq(m - 2)
    p1 = gammaincc(2 ** (m - 2), d1 / 2.0)
    p2 = gammaincc(2 ** (m - 3), d2 / 2.0)
    # Report the worse of the two sub-statistics (NIST reports both).
    if p2 < p1:
        return TestResult("serial", d2, float(p2))
    return TestResult("serial", d1, float(p1))


def spectral(bits: Sequence[int]) -> TestResult:
    """Discrete Fourier transform (spectral) test: hidden periodicity."""
    import numpy as np

    b = _as_bits(bits)
    n = len(b)
    if n < 128:
        raise ValueError("stream too short for the spectral test")
    x = np.array(b, dtype=float) * 2.0 - 1.0
    magnitudes = np.abs(np.fft.rfft(x))[: n // 2]
    threshold = math.sqrt(math.log(1.0 / 0.05) * n)
    expected_below = 0.95 * n / 2.0
    observed_below = float(np.count_nonzero(magnitudes < threshold))
    d = (observed_below - expected_below) / math.sqrt(
        n * 0.95 * 0.05 / 4.0
    )
    p = erfc(abs(d) / math.sqrt(2.0))
    return TestResult("spectral", float(d), float(p))


#: The suite in run order.
ALL_TESTS: "tuple[Callable[[Sequence[int]], TestResult], ...]" = (
    monobit,
    block_frequency,
    runs,
    longest_run_of_ones,
    cumulative_sums,
    approximate_entropy,
    serial,
    spectral,
)


def run_suite(
    bits: Sequence[int], alpha: float = 0.01
) -> Dict[str, TestResult]:
    """Run every test; returns results keyed by test name."""
    b = _as_bits(bits)
    return {t.__name__: t(b) for t in ALL_TESTS}


def suite_passes(bits: Sequence[int], alpha: float = 0.01) -> bool:
    return all(r.passed(alpha) for r in run_suite(bits, alpha).values())


def bits_from_bytes(data: bytes) -> List[int]:
    """Expand bytes into bits, LSB-first per byte (word-shift order)."""
    out: List[int] = []
    for byte in data:
        for i in range(8):
            out.append((byte >> i) & 1)
    return out
