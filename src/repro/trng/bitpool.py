"""The paper's register bit-pool with the `clz` sentinel trick.

Section III-E: random bits are kept in a register and shifted out as they
are consumed.  Rather than spending a second register on a fresh-bit
counter, the implementation sets the *most significant bit of every fresh
word to one* as a sentinel; ``clz`` on the register then reveals how many
bits have been consumed, and when the register collapses to exactly 1
(only the sentinel left) a new word is fetched from the TRNG.  The cost is
one sacrificed random bit per word — 31 usable bits per 32-bit fetch.

When a multi-bit request (e.g. Alg. 2's 8-bit LUT index) finds fewer fresh
bits than needed, the remaining fresh bits are discarded and a whole new
word is fetched — the simple policy a register implementation uses, and
harmless for the distribution since the discarded bits are independent.
"""

from __future__ import annotations

from typing import Optional

from repro.machine.machine import CortexM4
from repro.trng.bitsource import BitSource
from repro.trng.trng import SimulatedTrng

_SENTINEL = 1 << 31
_MASK31 = _SENTINEL - 1


class BitPool(BitSource):
    """Register-resident pool of TRNG bits with sentinel bookkeeping."""

    def __init__(
        self, trng: SimulatedTrng, machine: Optional[CortexM4] = None
    ):
        super().__init__()
        self.trng = trng
        self.machine = machine if machine is not None else trng.machine
        self._register = 1  # "empty": only the sentinel remains
        self.refills = 0
        self.discarded_bits = 0

    # ------------------------------------------------------------------
    # Register mechanics
    # ------------------------------------------------------------------
    @property
    def fresh_bits(self) -> int:
        """Fresh bits left in the register (via the clz identity)."""
        return self._register.bit_length() - 1

    def _refill(self) -> None:
        word = self.trng.read_word()
        # Force the MSB to one: bit 31 becomes the sentinel.
        self._register = word | _SENTINEL
        self.refills += 1
        if self.machine is not None:
            self.machine.alu()  # orr register, word, #0x80000000

    def _charge_check(self) -> None:
        """Cost of the emptiness check before each extraction.

        An implementation compares the register against 1 (or uses the
        flags from the preceding shift); charge one ALU plus the
        (mostly not-taken) refill branch.
        """
        if self.machine is not None:
            self.machine.alu()
            self.machine.branch(taken=self._register == 1)

    def _next_bit(self) -> int:
        self._charge_check()
        if self._register == 1:
            self._refill()
        value = self._register & 1
        self._register >>= 1
        if self.machine is not None:
            self.machine.alu(2)  # and rbit, r, #1 ; lsr r, r, #1
        return value

    def bits(self, count: int) -> int:
        """Extract ``count`` bits at once (first-consumed bit at LSB).

        Uses the ``clz`` sentinel to detect a shortfall; on shortfall the
        stale fresh bits are discarded and a new word fetched.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count > 31:
            raise ValueError("the register pool serves at most 31 bits")
        if count == 0:
            return 0
        if self.machine is not None:
            # clz to count consumed bits, subtract, compare with count.
            self.machine.clz(self._register)
            self.machine.alu(2)
            self.machine.branch(taken=self.fresh_bits < count)
        if self.fresh_bits < count:
            self.discarded_bits += self.fresh_bits
            self._refill()
        value = self._register & ((1 << count) - 1)
        self._register >>= count
        if self.machine is not None:
            self.machine.alu(2)  # ubfx / and+lsr
        self.bits_consumed += count
        return value
