"""Hash-based deterministic random bit generator.

The Fujisaki-Okamoto transform (:mod:`repro.core.cca`) needs encryption
to be a *deterministic function of the message and public key*: the
decryptor re-encrypts the recovered message and compares ciphertexts.
That requires replaying the Gaussian sampling bit-for-bit, which this
DRBG provides: a SHA-256 counter-mode generator seeded from the FO
derivation, exposed through the standard :class:`BitSource` interface so
every sampler in the package can run on it unchanged.

(Not an SP800-90A implementation — a compact hash-counter construction
that is deterministic, domain-separated, and collision-resistant in the
seed, which is all the transform requires.)
"""

from __future__ import annotations

import hashlib

from repro.trng.bitsource import BitSource


class HashDrbgBitSource(BitSource):
    """SHA-256 counter-mode bit source, LSB-first within each byte."""

    def __init__(self, seed: bytes, domain: bytes = b"repro-drbg-v1"):
        super().__init__()
        if not seed:
            raise ValueError("seed must be non-empty")
        self._key = hashlib.sha256(domain + b"|" + seed).digest()
        self._counter = 0
        self._buffer = b""
        self._bit_index = 0

    def _refill(self) -> None:
        block = hashlib.sha256(
            self._key + self._counter.to_bytes(8, "little")
        ).digest()
        self._counter += 1
        self._buffer = block
        self._bit_index = 0

    def _next_bit(self) -> int:
        if self._bit_index >= len(self._buffer) * 8:
            self._refill()
        byte = self._buffer[self._bit_index >> 3]
        bit = (byte >> (self._bit_index & 7)) & 1
        self._bit_index += 1
        return bit
