"""A stdlib-``random`` replacement backed by the repo's seeded stream.

``rlwe-repro lint`` (RND001) bans ``random``/``secrets``/``os.urandom``
outside this package: anything drawn from them is invisible to
``--seed`` replay.  Code that needs generic test vectors — random
polynomials, message bits, benchmark inputs — uses
:class:`DeterministicRng` instead, which draws every value from one
:class:`~repro.trng.xorshift.Xorshift128` bit stream and is therefore
bit-identical for a given seed on every machine, Python version, and
transport.

The draw discipline mirrors the samplers' (LSB-first bits out of 32-bit
words via :class:`~repro.trng.bitsource.PrngBitSource`) with rejection
sampling for :meth:`randrange`, so the stream position depends only on
the sequence of requests — never on hash seeds or platform word size.
"""

from __future__ import annotations

from typing import List

from repro.trng.bitsource import PrngBitSource
from repro.trng.xorshift import Xorshift128


class DeterministicRng:
    """Seeded, replayable utility randomness for everything non-crypto.

    Not a drop-in ``random.Random`` (different stream, smaller API);
    the point is that every consumer in the repo shares one auditable
    notion of seeded randomness.
    """

    def __init__(self, seed: int):
        self._bits = PrngBitSource(Xorshift128(seed))

    @property
    def bits_consumed(self) -> int:
        return self._bits.bits_consumed

    def randbit(self) -> int:
        """One uniform bit."""
        return self._bits.bit()

    def randbits(self, width: int) -> int:
        """``width`` uniform bits, first-drawn bit at the LSB."""
        return self._bits.bits(width)

    def randrange(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` by rejection sampling."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        if bound == 1:
            return 0
        width = (bound - 1).bit_length()
        while True:
            value = self._bits.bits(width)
            if value < bound:
                return value

    def randbytes(self, count: int) -> bytes:
        """``count`` uniform bytes."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return bytes(self._bits.bits(8) for _ in range(count))

    def poly(self, n: int, q: int) -> List[int]:
        """A uniform polynomial: ``n`` coefficients in ``[0, q)``."""
        return [self.randrange(q) for _ in range(n)]

    def message_bits(self, n: int) -> List[int]:
        """``n`` uniform bits as a list (an NTRU-style bit message)."""
        return [self._bits.bit() for _ in range(n)]
