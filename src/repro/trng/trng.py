"""Model of the STM32F4 hardware true random number generator.

Section III-E of the paper: the TRNG runs from a 48 MHz clock and delivers
a fresh 32-bit word every 40 TRNG-clock cycles while the core runs at
168 MHz — i.e. one word every 140 core cycles.  A read polls the status
register and then reads the data register; if software consumes words
faster than the generation cadence, it stalls until the next word is
ready.  The entropy itself is substituted by the deterministic
:class:`repro.trng.xorshift.Xorshift128` generator (see DESIGN.md).
"""

from __future__ import annotations

from typing import Optional

from repro.machine.machine import CortexM4
from repro.trng.xorshift import Xorshift128

#: Core and TRNG clock frequencies of the paper's STM32F407 setup.
CORE_HZ = 168_000_000
TRNG_HZ = 48_000_000
#: TRNG-clock cycles per fresh 32-bit word (STM32F4 reference manual).
TRNG_CYCLES_PER_WORD = 40

#: Default word cadence in *core* cycles.  The paper's Section III-E
#: describes the TRNG as effectively rate-matched — "other computations
#: while waiting 12 cycles between each random number request" — and its
#: measured 28.5 cycles/sample is only reachable if fresh words arrive
#: about every 40 core cycles.  We therefore default to the datasheet's
#: 40-cycle figure read against the core clock, as the paper does.
DEFAULT_CYCLES_PER_WORD = 40
#: The conservative alternative: 40 cycles of the 48 MHz PLL48 clock
#: translated to 168 MHz core cycles.  Selecting this shows how a
#: strictly supply-limited TRNG would add ~20 stall cycles per Gaussian
#: sample (explored in the sampler ablation bench).
PESSIMISTIC_CYCLES_PER_WORD = 140


def core_cycles_per_word(
    core_hz: int = CORE_HZ,
    trng_hz: int = TRNG_HZ,
    trng_cycles: int = TRNG_CYCLES_PER_WORD,
) -> int:
    """Core cycles between fresh TRNG words under the PLL48 reading."""
    return (trng_cycles * core_hz + trng_hz - 1) // trng_hz


class SimulatedTrng:
    """Rate-limited 32-bit random word source with stall accounting.

    When constructed with a machine, every :meth:`read_word` charges the
    status poll + data-register loads, and stalls the machine if the
    request arrives before the generation cadence has produced a fresh
    word.  Without a machine it is a plain deterministic word source.
    """

    def __init__(
        self,
        prng: Optional[Xorshift128] = None,
        machine: Optional[CortexM4] = None,
        cycles_per_word: Optional[int] = None,
    ):
        self._prng = prng if prng is not None else Xorshift128()
        self.machine = machine
        self.cycles_per_word = (
            cycles_per_word
            if cycles_per_word is not None
            else DEFAULT_CYCLES_PER_WORD
        )
        self.words_read = 0
        self.stall_cycles = 0
        self._next_ready = 0  # machine cycle at which a fresh word exists

    def read_word(self) -> int:
        """Read one 32-bit word (status poll + data read, maybe a stall)."""
        machine = self.machine
        if machine is not None:
            machine.load()  # RNG->SR status poll
            if machine.cycles < self._next_ready:
                stall = self._next_ready - machine.cycles
                self.stall_cycles += stall
                machine.tick(stall)
            machine.load()  # RNG->DR data read
            self._next_ready = machine.cycles + self.cycles_per_word
        self.words_read += 1
        return self._prng.next_u32()

    def random_bytes(self, count: int) -> bytes:
        """Convenience: ``count`` bytes via successive word reads."""
        out = bytearray()
        while len(out) < count:
            out += self.read_word().to_bytes(4, "little")
        return bytes(out[:count])
