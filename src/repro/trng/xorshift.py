"""Deterministic 32-bit PRNG used as the simulated entropy source.

The paper uses the STM32F407's hardware TRNG.  For a reproducible software
model we substitute Marsaglia's xorshift128 generator: it is fast, has a
2^128 - 1 period, passes the small NIST SP800-22 subset implemented in
:mod:`repro.trng.nist`, and — crucially for testing — is deterministic
under a seed.  (It is of course not cryptographically secure; the point of
the substitution is to reproduce *consumption patterns and statistics*,
not to provide security.)
"""

from __future__ import annotations

from typing import Iterator

_MASK32 = 0xFFFFFFFF


def _splitmix32(state: int) -> "tuple[int, int]":
    """One step of a splitmix-style seed expander; returns (state, output)."""
    state = (state + 0x9E3779B9) & _MASK32
    z = state
    z = ((z ^ (z >> 16)) * 0x85EBCA6B) & _MASK32
    z = ((z ^ (z >> 13)) * 0xC2B2AE35) & _MASK32
    z ^= z >> 16
    return state, z


class Xorshift128:
    """Marsaglia xorshift128: 32-bit outputs, period 2^128 - 1."""

    def __init__(self, seed: int = 0x12345678):
        if seed < 0:
            raise ValueError("seed must be non-negative")
        state = seed & _MASK32
        words = []
        # Expand the seed into four nonzero state words.
        while len(words) < 4:
            state, word = _splitmix32(state)
            if word:
                words.append(word)
        self._x, self._y, self._z, self._w = words

    def next_u32(self) -> int:
        """Return the next 32-bit output."""
        t = (self._x ^ ((self._x << 11) & _MASK32)) & _MASK32
        self._x, self._y, self._z = self._y, self._z, self._w
        self._w = (self._w ^ (self._w >> 19)) ^ (t ^ (t >> 8))
        self._w &= _MASK32
        return self._w

    def words(self, count: int) -> Iterator[int]:
        """Yield ``count`` successive 32-bit outputs."""
        for _ in range(count):
            yield self.next_u32()

    def next_words(self, count: int) -> "list[int]":
        """Return ``count`` successive 32-bit outputs as a list.

        Identical stream to ``count`` calls of :meth:`next_u32`; the loop
        keeps the state in locals so bulk consumers (the block sampler's
        bit supply) do not pay per-word attribute traffic.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        x, y, z, w = self._x, self._y, self._z, self._w
        out = []
        append = out.append
        mask = _MASK32
        for _ in range(count):
            t = (x ^ ((x << 11) & mask)) & mask
            x, y, z = y, z, w
            w = ((w ^ (w >> 19)) ^ (t ^ (t >> 8))) & mask
            append(w)
        self._x, self._y, self._z, self._w = x, y, z, w
        return out

    def bytes(self, count: int) -> bytes:
        """Return ``count`` pseudo-random bytes (little-endian words)."""
        out = bytearray()
        while len(out) < count:
            out += self.next_u32().to_bytes(4, "little")
        return bytes(out[:count])
