"""LUT-accelerated Knuth-Yao sampler — Alg. 2 of the paper.

For s = 11.31 the DDG walk terminates within the first 8 levels with
probability 97.27% and within 13 levels with 99.87% (Fig. 2).  Alg. 2
exploits this: a 256-entry lookup table (LUT1) resolves the first 8
levels with a single table access, and a second table (LUT2) resolves
levels 9-13 after a LUT1 miss.  Only on the remaining ~0.13% of samples
does the expensive bit-scanning loop of Alg. 1 run, starting at level 14.

Table construction (Section III-B5): LUT1 entry ``i`` is the result of
running Alg. 1's first 8 levels with the bits of ``i`` (LSB-first) as the
random walk; a clear MSB flags success and the low bits carry the sampled
row, a set MSB flags failure and the low bits carry the walk's distance
``d``.  All LUT1 failures for s = 11.31 leave ``d`` in 0..6, so LUT2 needs
only 7 x 32 = 224 entries, indexed by (d, 5 fresh random bits).  The paper
says the LUT2 index "consists of a 5-bit random number concatenated with
the 3-bit distance d" without fixing the layout; we store d-major
(``index = d * 32 + r5``) so the live entries are contiguous — a
documented, distribution-neutral choice (DESIGN.md section 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.params import ParameterSet
from repro.sampler.knuth_yao import KnuthYaoSampler
from repro.sampler.pmat import ProbabilityMatrix
from repro.trng.bitsource import BitSource

#: MSB flag marking a lookup failure in a table entry.
FAILURE_FLAG = 0x80
#: Levels resolved by LUT1 / LUT2 in the paper.
LUT1_LEVELS = 8
LUT2_LEVELS = 5


def _walk(
    pmat: ProbabilityMatrix,
    bits_value: int,
    levels: int,
    start_column: int,
    start_distance: int,
) -> Tuple[Optional[int], int]:
    """Run ``levels`` DDG levels fed by the bits of ``bits_value``
    (LSB-first).  Returns (row, -) on termination or (None, d) on survival.
    """
    d = start_distance
    for level in range(levels):
        col = start_column + level
        d = 2 * d + ((bits_value >> level) & 1)
        for row in range(pmat.rows - 1, -1, -1):
            d -= pmat.bit(row, col)
            if d == -1:
                return row, -1
    return None, d


@dataclass(frozen=True)
class SamplerLuts:
    """The two lookup tables plus their construction statistics."""

    lut1: Tuple[int, ...]
    lut2: Tuple[int, ...]
    max_failure_distance1: int  # max d over LUT1 failures (paper: 6)
    max_failure_distance2: int  # max d over LUT2 failures (paper: <= 15)

    @property
    def lut1_bytes(self) -> int:
        return len(self.lut1)

    @property
    def lut2_bytes(self) -> int:
        return len(self.lut2)

    @property
    def lut1_failure_entries(self) -> int:
        return sum(1 for e in self.lut1 if e & FAILURE_FLAG)


def build_luts(pmat: ProbabilityMatrix) -> SamplerLuts:
    """Construct LUT1 and LUT2 from the probability matrix."""
    lut1: List[int] = []
    max_d1 = -1
    for index in range(1 << LUT1_LEVELS):
        row, d = _walk(pmat, index, LUT1_LEVELS, 0, 0)
        if row is not None:
            if row & FAILURE_FLAG:
                raise ValueError(
                    f"row {row} collides with the failure flag; "
                    f"tail too large for 7-bit LUT entries"
                )
            lut1.append(row)
        else:
            if d > 0x7F:
                raise ValueError(f"failure distance {d} exceeds 7 bits")
            lut1.append(FAILURE_FLAG | d)
            max_d1 = max(max_d1, d)

    lut2: List[int] = []
    max_d2 = -1
    if max_d1 >= 0:
        for d0 in range(max_d1 + 1):
            for r5 in range(1 << LUT2_LEVELS):
                row, d = _walk(pmat, r5, LUT2_LEVELS, LUT1_LEVELS, d0)
                if row is not None:
                    if row & FAILURE_FLAG:
                        raise ValueError(
                            f"row {row} collides with the failure flag"
                        )
                    lut2.append(row)
                else:
                    if d > 0x7F:
                        raise ValueError(
                            f"failure distance {d} exceeds 7 bits"
                        )
                    lut2.append(FAILURE_FLAG | d)
                    max_d2 = max(max_d2, d)
    return SamplerLuts(
        lut1=tuple(lut1),
        lut2=tuple(lut2),
        max_failure_distance1=max_d1,
        max_failure_distance2=max_d2,
    )


class LutKnuthYaoSampler(KnuthYaoSampler):
    """Alg. 2: Knuth-Yao sampling with one or two lookup tables."""

    def __init__(
        self,
        pmat: ProbabilityMatrix,
        q: int,
        bits: BitSource,
        use_lut2: bool = True,
    ):
        super().__init__(pmat, q, bits)
        self.luts = build_luts(pmat)
        self.use_lut2 = use_lut2 and bool(self.luts.lut2)
        # Consumption statistics for the ablation benches.
        self.lut1_hits = 0
        self.lut2_hits = 0
        self.scan_fallbacks = 0

    def sample(self) -> int:
        """One sample in [0, q) — Alg. 2 with the LUT2 extension."""
        index = self.bits.bits(LUT1_LEVELS)
        entry = self.luts.lut1[index]
        if not entry & FAILURE_FLAG:
            self.lut1_hits += 1
            return self._apply_sign(entry)
        d = entry & ~FAILURE_FLAG & 0xFF

        if self.use_lut2:
            r5 = self.bits.bits(LUT2_LEVELS)
            entry = self.luts.lut2[d * (1 << LUT2_LEVELS) + r5]
            if not entry & FAILURE_FLAG:
                self.lut2_hits += 1
                return self._apply_sign(entry)
            d = entry & ~FAILURE_FLAG & 0xFF
            start_column = LUT1_LEVELS + LUT2_LEVELS
        else:
            start_column = LUT1_LEVELS

        self.scan_fallbacks += 1
        row = self.sample_magnitude(
            start_column=start_column, start_distance=d
        )
        if row is None:
            return 0
        return self._apply_sign(row)
