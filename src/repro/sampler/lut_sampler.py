"""LUT-accelerated Knuth-Yao sampler — Alg. 2 of the paper.

For s = 11.31 the DDG walk terminates within the first 8 levels with
probability 97.27% and within 13 levels with 99.87% (Fig. 2).  Alg. 2
exploits this: a 256-entry lookup table (LUT1) resolves the first 8
levels with a single table access, and a second table (LUT2) resolves
levels 9-13 after a LUT1 miss.  Only on the remaining ~0.13% of samples
does the expensive bit-scanning loop of Alg. 1 run, starting at level 14.

Table construction (Section III-B5): LUT1 entry ``i`` is the result of
running Alg. 1's first 8 levels with the bits of ``i`` (LSB-first) as the
random walk; a clear MSB flags success and the low bits carry the sampled
row, a set MSB flags failure and the low bits carry the walk's distance
``d``.  All LUT1 failures for s = 11.31 leave ``d`` in 0..6, so LUT2 needs
only 7 x 32 = 224 entries, indexed by (d, 5 fresh random bits).  The paper
says the LUT2 index "consists of a 5-bit random number concatenated with
the 3-bit distance d" without fixing the layout; we store d-major
(``index = d * 32 + r5``) so the live entries are contiguous — a
documented, distribution-neutral choice (DESIGN.md section 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.params import ParameterSet
from repro.numpy_support import get_numpy
from repro.sampler.knuth_yao import KnuthYaoSampler
from repro.sampler.pmat import ProbabilityMatrix
from repro.trng.bitsource import BitSource

#: MSB flag marking a lookup failure in a table entry.
FAILURE_FLAG = 0x80
#: Levels resolved by LUT1 / LUT2 in the paper.
LUT1_LEVELS = 8
LUT2_LEVELS = 5


def _walk(
    pmat: ProbabilityMatrix,
    bits_value: int,
    levels: int,
    start_column: int,
    start_distance: int,
) -> Tuple[Optional[int], int]:
    """Run ``levels`` DDG levels fed by the bits of ``bits_value``
    (LSB-first).  Returns (row, -) on termination or (None, d) on survival.
    """
    d = start_distance
    for level in range(levels):
        col = start_column + level
        d = 2 * d + ((bits_value >> level) & 1)
        for row in range(pmat.rows - 1, -1, -1):
            d -= pmat.bit(row, col)
            if d == -1:
                return row, -1
    return None, d


@dataclass(frozen=True)
class SamplerLuts:
    """The two lookup tables plus their construction statistics."""

    lut1: Tuple[int, ...]
    lut2: Tuple[int, ...]
    max_failure_distance1: int  # max d over LUT1 failures (paper: 6)
    max_failure_distance2: int  # max d over LUT2 failures (paper: <= 15)

    @property
    def lut1_bytes(self) -> int:
        return len(self.lut1)

    @property
    def lut2_bytes(self) -> int:
        return len(self.lut2)

    @property
    def lut1_failure_entries(self) -> int:
        return sum(1 for e in self.lut1 if e & FAILURE_FLAG)


#: build_luts results per ProbabilityMatrix instance.  Table
#: construction costs ~20 ms per parameter set and the matrices are
#: themselves cached module-wide, so per-call scheme construction (the
#: FO-KEM builds a scheme per encapsulation) must not rebuild them.
#: Keyed by id(); the matrix is kept in the value to pin its identity.
_LUT_CACHE: "dict[int, tuple[ProbabilityMatrix, SamplerLuts]]" = {}


def cached_luts(pmat: ProbabilityMatrix) -> SamplerLuts:
    """Return (and memoise) :func:`build_luts` for ``pmat``."""
    entry = _LUT_CACHE.get(id(pmat))
    if entry is None or entry[0] is not pmat:
        entry = (pmat, build_luts(pmat))
        _LUT_CACHE[id(pmat)] = entry
    return entry[1]


def build_luts(pmat: ProbabilityMatrix) -> SamplerLuts:
    """Construct LUT1 and LUT2 from the probability matrix."""
    lut1: List[int] = []
    max_d1 = -1
    for index in range(1 << LUT1_LEVELS):
        row, d = _walk(pmat, index, LUT1_LEVELS, 0, 0)
        if row is not None:
            if row & FAILURE_FLAG:
                raise ValueError(
                    f"row {row} collides with the failure flag; "
                    f"tail too large for 7-bit LUT entries"
                )
            lut1.append(row)
        else:
            if d > 0x7F:
                raise ValueError(f"failure distance {d} exceeds 7 bits")
            lut1.append(FAILURE_FLAG | d)
            max_d1 = max(max_d1, d)

    lut2: List[int] = []
    max_d2 = -1
    if max_d1 >= 0:
        for d0 in range(max_d1 + 1):
            for r5 in range(1 << LUT2_LEVELS):
                row, d = _walk(pmat, r5, LUT2_LEVELS, LUT1_LEVELS, d0)
                if row is not None:
                    if row & FAILURE_FLAG:
                        raise ValueError(
                            f"row {row} collides with the failure flag"
                        )
                    lut2.append(row)
                else:
                    if d > 0x7F:
                        raise ValueError(
                            f"failure distance {d} exceeds 7 bits"
                        )
                    lut2.append(FAILURE_FLAG | d)
                    max_d2 = max(max_d2, d)
    return SamplerLuts(
        lut1=tuple(lut1),
        lut2=tuple(lut2),
        max_failure_distance1=max_d1,
        max_failure_distance2=max_d2,
    )


class LutKnuthYaoSampler(KnuthYaoSampler):
    """Alg. 2: Knuth-Yao sampling with one or two lookup tables."""

    def __init__(
        self,
        pmat: ProbabilityMatrix,
        q: int,
        bits: BitSource,
        use_lut2: bool = True,
    ):
        super().__init__(pmat, q, bits)
        self.luts = cached_luts(pmat)
        self.use_lut2 = use_lut2 and bool(self.luts.lut2)
        # Consumption statistics for the ablation benches.
        self.lut1_hits = 0
        self.lut2_hits = 0
        self.scan_fallbacks = 0
        # Lazily-built NumPy views of the LUTs (block fast path).
        self._np_luts = None

    def sample(self) -> int:
        """One sample in [0, q) — Alg. 2 with the LUT2 extension."""
        index = self.bits.bits(LUT1_LEVELS)
        entry = self.luts.lut1[index]
        if not entry & FAILURE_FLAG:
            self.lut1_hits += 1
            return self._apply_sign(entry)
        d = entry & ~FAILURE_FLAG & 0xFF

        if self.use_lut2:
            r5 = self.bits.bits(LUT2_LEVELS)
            entry = self.luts.lut2[d * (1 << LUT2_LEVELS) + r5]
            if not entry & FAILURE_FLAG:
                self.lut2_hits += 1
                return self._apply_sign(entry)
            d = entry & ~FAILURE_FLAG & 0xFF
            start_column = LUT1_LEVELS + LUT2_LEVELS
        else:
            start_column = LUT1_LEVELS

        self.scan_fallbacks += 1
        row = self.sample_magnitude(
            start_column=start_column, start_distance=d
        )
        if row is None:
            return 0
        return self._apply_sign(row)

    # ------------------------------------------------------------------
    # Block sampling (throughput path)
    # ------------------------------------------------------------------
    #
    # ``sample_block`` draws ``count`` samples with a *phased* bit
    # consumption order that is amenable to vectorization:
    #
    #   1. one 8-bit LUT1 index per sample, all samples in order;
    #   2. one 5-bit LUT2 index per LUT1 failure, failures in order;
    #   3. the scalar DDG walk per LUT2 failure, failures in order;
    #   4. one sign bit per resolved sample, samples in order
    #      (a walk that falls off the matrix yields 0 with no sign bit,
    #      mirroring Alg. 1 line 11).
    #
    # This differs from ``count`` sequential :meth:`sample` calls (which
    # interleave the phases per sample), but the order is *fixed*: the
    # scalar and NumPy implementations below consume identical bits and
    # return identical samples, so batch APIs are deterministic under a
    # seed regardless of whether NumPy is installed.

    def sample_block(self, count: int):
        """``count`` samples in [0, q) in the phased block order.

        Returns a list, or a NumPy ``int64`` array when NumPy is
        available (same values either way).
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        np = get_numpy()
        if np is None:
            return self._sample_block_scalar(count)
        return self._sample_block_numpy(np, count)

    def sample_polynomial_block(self, count: int, n: int):
        """``count`` error polynomials of ``n`` coefficients each.

        Returns a ``(count, n)`` NumPy array or a list of lists.
        """
        flat = self.sample_block(count * n)
        if hasattr(flat, "reshape"):
            return flat.reshape(count, n)
        return [flat[i * n : (i + 1) * n] for i in range(count)]

    def _sample_block_scalar(self, count: int):
        lut1, lut2 = self.luts.lut1, self.luts.lut2
        q = self.q
        rows = [0] * count
        # Phase 1: LUT1.
        indices = self.bits.bit_chunks(count, LUT1_LEVELS)
        pending = []  # (sample index, distance d) after LUT1 failure
        for i, index in enumerate(indices):
            entry = lut1[index]
            if entry & FAILURE_FLAG:
                pending.append((i, entry & ~FAILURE_FLAG & 0xFF))
            else:
                rows[i] = entry
        self.lut1_hits += count - len(pending)
        # Phase 2: LUT2.
        if self.use_lut2 and pending:
            r5s = self.bits.bit_chunks(len(pending), LUT2_LEVELS)
            still = []
            for (i, d), r5 in zip(pending, r5s):
                entry = lut2[d * (1 << LUT2_LEVELS) + r5]
                if entry & FAILURE_FLAG:
                    still.append((i, entry & ~FAILURE_FLAG & 0xFF))
                else:
                    rows[i] = entry
            self.lut2_hits += len(pending) - len(still)
            pending = still
            start_column = LUT1_LEVELS + LUT2_LEVELS
        else:
            start_column = LUT1_LEVELS
        # Phase 3: bit-scanning walk for the stragglers.
        unresolved = set()
        for i, d in pending:
            self.scan_fallbacks += 1
            row = self.sample_magnitude(
                start_column=start_column, start_distance=d
            )
            if row is None:
                unresolved.add(i)
            else:
                rows[i] = row
        # Phase 4: sign bits for every resolved sample.
        signs = self.bits.bit_chunks(count - len(unresolved), 1)
        out = [0] * count
        cursor = 0
        for i in range(count):
            if i in unresolved:
                continue
            row = rows[i]
            out[i] = (q - row) % q if signs[cursor] else row
            cursor += 1
        return out

    def _np_lut_arrays(self, np):
        if self._np_luts is None:
            self._np_luts = (
                np.asarray(self.luts.lut1, dtype=np.int64),
                np.asarray(self.luts.lut2 or (0,), dtype=np.int64),
            )
        return self._np_luts

    def _sample_block_numpy(self, np, count: int):
        lut1, lut2 = self._np_lut_arrays(np)
        q = self.q
        # Phase 1: LUT1.
        indices = np.asarray(
            self.bits.bit_chunk_array(count, LUT1_LEVELS), dtype=np.int64
        )
        entries = lut1[indices]
        failed = (entries & FAILURE_FLAG) != 0
        rows = np.where(failed, 0, entries)
        pending_index = np.nonzero(failed)[0]
        pending_d = entries[pending_index] & (~FAILURE_FLAG & 0xFF)
        self.lut1_hits += int(count - pending_index.size)
        # Phase 2: LUT2.
        if self.use_lut2 and pending_index.size:
            r5s = np.asarray(
                self.bits.bit_chunk_array(
                    int(pending_index.size), LUT2_LEVELS
                ),
                dtype=np.int64,
            )
            entries2 = lut2[pending_d * (1 << LUT2_LEVELS) + r5s]
            failed2 = (entries2 & FAILURE_FLAG) != 0
            resolved2 = pending_index[~failed2]
            rows[resolved2] = entries2[~failed2]
            self.lut2_hits += int(resolved2.size)
            pending_d = entries2[failed2] & (~FAILURE_FLAG & 0xFF)
            pending_index = pending_index[failed2]
            start_column = LUT1_LEVELS + LUT2_LEVELS
        else:
            start_column = LUT1_LEVELS
        # Phase 3: scalar walks for the stragglers.
        unresolved_mask = np.zeros(count, dtype=bool)
        for i, d in zip(pending_index.tolist(), pending_d.tolist()):
            self.scan_fallbacks += 1
            row = self.sample_magnitude(
                start_column=start_column, start_distance=d
            )
            if row is None:
                unresolved_mask[i] = True
            else:
                rows[i] = row
        # Phase 4: sign bits for every resolved sample.
        resolved_index = np.nonzero(~unresolved_mask)[0]
        signs = np.asarray(
            self.bits.bit_chunk_array(int(resolved_index.size), 1),
            dtype=np.int64,
        )
        negate = resolved_index[signs == 1]
        rows[negate] = (q - rows[negate]) % q
        return rows
