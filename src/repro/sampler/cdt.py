"""Inversion (CDT) sampler — the classical baseline to Knuth-Yao.

Section II-B lists inversion sampling among the standard methods.  The
cumulative distribution table (CDT) sampler draws a uniform fixed-point
value and binary-searches the cumulative table of the half-distribution,
then applies a sign bit — the same output distribution as Knuth-Yao over
the same fixed-point table, which the tests assert exactly.

Cost profile (why the paper prefers Knuth-Yao on the M4): the CDT draws a
full `precision`-bit uniform value per sample (109 bits here versus
Knuth-Yao's ~10) and performs log2(tail) wide comparisons, but needs no
bit-scanning.  Both appear in the sampler ablation bench.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List

from repro.core.params import ParameterSet
from repro.sampler.distribution import HalfGaussianTable
from repro.sampler.pmat import ProbabilityMatrix
from repro.trng.bitsource import BitSource


class CdtSampler:
    """Cumulative-distribution-table (inversion) Gaussian sampler."""

    def __init__(self, table: HalfGaussianTable, q: int, bits: BitSource):
        if q <= 2 * table.tail:
            raise ValueError("q too small for the table's tail")
        self.table = table
        self.q = q
        self.bits = bits
        # cdt[x] = sum of probabilities of magnitudes 0..x (exclusive
        # prefix shifted by one for bisect semantics).
        cumulative: List[int] = []
        acc = 0
        for p in table.probabilities:
            acc += p
            cumulative.append(acc)
        self._cdt = cumulative

    @classmethod
    def for_params(
        cls, params: ParameterSet, bits: BitSource
    ) -> "CdtSampler":
        pmat = ProbabilityMatrix.for_params(params)
        return cls(pmat.table, params.q, bits)

    @property
    def precision(self) -> int:
        return self.table.precision

    def sample_magnitude(self) -> int:
        """Binary-search the CDT with a fresh `precision`-bit uniform."""
        u = self.bits.bits(self.precision)
        # Find the first row whose cumulative mass exceeds u.
        return bisect_right(self._cdt, u)

    def sample(self) -> int:
        """One sample in [0, q): magnitude then sign bit."""
        row = self.sample_magnitude()
        if self.bits.bit():
            return (self.q - row) % self.q
        return row

    def sample_centered(self) -> int:
        value = self.sample()
        return value if value <= self.q // 2 else value - self.q

    def sample_polynomial(self, n: int) -> List[int]:
        return [self.sample() for _ in range(n)]

    def table_bytes(self) -> int:
        """Flash bytes for the CDT (each entry is `precision` bits)."""
        return len(self._cdt) * ((self.precision + 7) // 8)
