"""Exact analysis of the discrete distribution generating (DDG) tree.

The Knuth-Yao walk consumes one random bit per tree level; level ``L``
(1-based, i.e. matrix column ``L - 1``) terminates the walk with
probability ``hamming_weight(column) * 2^-L``, and each one-bit of the
column receives exactly ``2^-L`` of probability mass for its row.  That
simple structure makes three exact computations possible without any
random sampling; the test-suite and the Fig. 2 bench rely on all three:

* the per-level and accumulated termination probabilities (Fig. 2);
* the exact output distribution of the sampler (it must equal the
  fixed-point table probabilities row by row);
* the exact internal-node counts, which certify that the tree is
  well-formed (never more terminals than walk states).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List

from repro.sampler.pmat import ProbabilityMatrix


@dataclass(frozen=True)
class DdgLevelProfile:
    """Per-level termination behaviour of the DDG tree."""

    termination: "tuple[Fraction, ...]"  # Pr[walk ends at level L], 1-based
    internal_nodes: "tuple[int, ...]"  # internal nodes after level L

    @property
    def levels(self) -> int:
        return len(self.termination)

    def accumulated(self) -> List[Fraction]:
        """Pr[walk ends within the first L levels] for L = 1..levels."""
        out: List[Fraction] = []
        total = Fraction(0)
        for p in self.termination:
            total += p
            out.append(total)
        return out

    def accumulated_floats(self) -> List[float]:
        return [float(p) for p in self.accumulated()]

    def expected_level(self) -> float:
        """Mean number of tree levels (random bits) per walk."""
        return float(
            sum((L + 1) * p for L, p in enumerate(self.termination))
        )


def level_profile(pmat: ProbabilityMatrix) -> DdgLevelProfile:
    """Exact termination probabilities and internal-node counts."""
    termination: List[Fraction] = []
    internal: List[int] = []
    nodes = 1  # the root is the single internal node before level 1
    for col in range(pmat.columns):
        weight = pmat.hamming_weights[col]
        nodes = 2 * nodes - weight
        if nodes < 0:
            raise ValueError(
                f"malformed DDG tree: column {col} has more terminals "
                f"than walk states"
            )
        termination.append(Fraction(weight, 1 << (col + 1)))
        internal.append(nodes)
    return DdgLevelProfile(
        termination=tuple(termination), internal_nodes=tuple(internal)
    )


def exact_magnitude_distribution(
    pmat: ProbabilityMatrix,
) -> Dict[int, Fraction]:
    """Exact Pr[walk returns row r] = sum_c Pmat[r][c] * 2^-(c+1).

    Equals ``pmat.table.probability(r)`` when the tree is complete; the
    test-suite asserts exactly that.
    """
    out: Dict[int, Fraction] = {}
    for row in range(pmat.rows):
        prob = Fraction(0)
        for col in range(pmat.columns):
            if pmat.bit(row, col):
                prob += Fraction(1, 1 << (col + 1))
        out[row] = prob
    return out


def exact_output_distribution(
    pmat: ProbabilityMatrix, q: int
) -> Dict[int, Fraction]:
    """Exact distribution of the *signed, mod-q* sampler output.

    The sign bit maps row r to r or (q - r) mod q with probability 1/2
    each; both signs of row 0 map to 0.
    """
    magnitudes = exact_magnitude_distribution(pmat)
    out: Dict[int, Fraction] = {}
    for row, prob in magnitudes.items():
        if prob == 0:
            continue
        if row == 0:
            out[0] = out.get(0, Fraction(0)) + prob
        else:
            out[row] = out.get(row, Fraction(0)) + prob / 2
            neg = (q - row) % q
            out[neg] = out.get(neg, Fraction(0)) + prob / 2
    return out


def lut_failure_probability(pmat: ProbabilityMatrix, levels: int) -> Fraction:
    """Exact Pr[the walk survives the first ``levels`` levels].

    For s = 11.31 and levels = 8 the paper quotes 1 - 97.27% = 2.73%.
    """
    survived = Fraction(1)
    for col in range(min(levels, pmat.columns)):
        survived -= Fraction(pmat.hamming_weights[col], 1 << (col + 1))
    return survived
