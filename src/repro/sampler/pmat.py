"""The Knuth-Yao probability matrix and its storage optimizations.

Section III-B of the paper stores the binary expansions of the sampling
probabilities as a matrix ``Pmat`` whose *rows* are sample magnitudes and
whose *columns* are DDG-tree levels.  Three storage decisions matter for
speed on the Cortex-M4F and are all modelled here:

* **column-wise storage** (III-B2): Alg. 1 scans one column at a time, so
  each column's bits are packed into 32-bit words (row r lives at bit
  ``r % 32`` of word ``r // 32``);
* **zero-word trimming** (III-B3): the bottom-left corner of the matrix is
  all zeros (small-magnitude probabilities dominate early levels), so
  all-zero column words are not stored — 218 words shrink to 180 for
  s = 11.31;
* **per-column Hamming weights** (III-B4, the alternative of [6]): used to
  decide whether a terminal node can occur in a level at all.

For s = 11.31 and statistical distance 2^-90, the paper reports a matrix
of 55 rows x 109 columns (5995 bits); the defaults below regenerate that
shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.params import ParameterSet
from repro.sampler.distribution import DiscreteGaussian, HalfGaussianTable

_WORD_BITS = 32

#: The paper's probability precision (columns) for the 2^-90 target.
DEFAULT_PRECISION = 109


def paper_tail(sigma: float) -> int:
    """Tail cut matching the paper's reported matrix shape.

    The paper stores 55 rows for s = 11.31 (sigma ~ 4.512), i.e. magnitudes
    0..54 ~ 12 sigma.  ``floor(12 * sigma)`` reproduces that and scales the
    same way for P2.  The analytic bound
    :meth:`repro.sampler.distribution.DiscreteGaussian.tail_bound` is
    tighter (~11.2 sigma); the paper keeps a margin.
    """
    import math

    return math.floor(12.0 * sigma)


@dataclass(frozen=True)
class ProbabilityMatrix:
    """Column-wise packed Knuth-Yao probability matrix."""

    table: HalfGaussianTable
    columns: int
    column_words: Tuple[Tuple[int, ...], ...]
    hamming_weights: Tuple[int, ...]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_table(cls, table: HalfGaussianTable) -> "ProbabilityMatrix":
        columns = table.precision
        rows = table.tail + 1
        words_per_column = (rows + _WORD_BITS - 1) // _WORD_BITS
        packed: List[Tuple[int, ...]] = []
        weights: List[int] = []
        for col in range(columns):
            words = [0] * words_per_column
            weight = 0
            for row in range(rows):
                bit = (table.probabilities[row] >> (columns - 1 - col)) & 1
                if bit:
                    words[row // _WORD_BITS] |= 1 << (row % _WORD_BITS)
                    weight += 1
            packed.append(tuple(words))
            weights.append(weight)
        return cls(
            table=table,
            columns=columns,
            column_words=tuple(packed),
            hamming_weights=tuple(weights),
        )

    @classmethod
    def for_sigma(
        cls,
        sigma: float,
        precision: int = DEFAULT_PRECISION,
        tail: int = None,
        statistical_distance: float = 2.0**-90,
    ) -> "ProbabilityMatrix":
        """Build the matrix for a given sigma (paper defaults)."""
        gaussian = DiscreteGaussian(sigma=sigma)
        if tail is None:
            tail = paper_tail(sigma)
        return cls.from_table(gaussian.half_table(precision, tail))

    @classmethod
    def for_params(
        cls, params: ParameterSet, precision: int = DEFAULT_PRECISION
    ) -> "ProbabilityMatrix":
        return _matrix_cache(params, precision)

    # ------------------------------------------------------------------
    # Matrix access
    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        return self.table.tail + 1

    @property
    def words_per_column(self) -> int:
        return (self.rows + _WORD_BITS - 1) // _WORD_BITS

    def bit(self, row: int, col: int) -> int:
        """Matrix element: bit ``col`` (MSB-first) of probability ``row``."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range")
        if not 0 <= col < self.columns:
            raise IndexError(f"col {col} out of range")
        word = self.column_words[col][row // _WORD_BITS]
        return (word >> (row % _WORD_BITS)) & 1

    def column_bits(self, col: int) -> List[int]:
        """All bits of one column, indexed by row."""
        return [self.bit(row, col) for row in range(self.rows)]

    # ------------------------------------------------------------------
    # Storage accounting (Fig. 1 / Section III-B3)
    # ------------------------------------------------------------------
    @property
    def total_words(self) -> int:
        """Words needed without the zero-word optimization."""
        return self.columns * self.words_per_column

    @property
    def stored_words(self) -> int:
        """Words actually stored once all-zero words are dropped."""
        return sum(
            1 for col in self.column_words for word in col if word != 0
        )

    @property
    def total_bits(self) -> int:
        """Raw matrix size in bits (paper: 5995 for s = 11.31)."""
        return self.rows * self.columns

    def zero_word_map(self) -> List[List[bool]]:
        """Per (column, word) flags: True where a stored word is zero."""
        return [[word == 0 for word in col] for col in self.column_words]

    def storage_bytes(self) -> int:
        """Flash bytes for the trimmed matrix plus per-column word counts."""
        return 4 * self.stored_words + self.columns

    def render_corner(self, rows: int = 16, cols: int = 16) -> str:
        """ASCII rendering of the matrix corner (Fig. 1 style)."""
        rows = min(rows, self.rows)
        cols = min(cols, self.columns)
        lines = []
        for row in range(rows):
            lines.append(
                " ".join(str(self.bit(row, col)) for col in range(cols))
            )
        return "\n".join(lines)


_MATRIX_CACHE: Dict[Tuple[float, int], ProbabilityMatrix] = {}


def _matrix_cache(params: ParameterSet, precision: int) -> ProbabilityMatrix:
    key = (params.sigma, precision)
    if key not in _MATRIX_CACHE:
        _MATRIX_CACHE[key] = ProbabilityMatrix.for_sigma(
            params.sigma, precision
        )
    return _MATRIX_CACHE[key]
