"""Discrete Gaussian samplers (paper Sections II-B, III-B)."""

from repro.sampler.cdt import CdtSampler
from repro.sampler.constant_time import ConstantTimeCdtSampler
from repro.sampler.distribution import DiscreteGaussian, HalfGaussianTable
from repro.sampler.knuth_yao import KnuthYaoSampler
from repro.sampler.lut_sampler import LutKnuthYaoSampler, SamplerLuts, build_luts
from repro.sampler.pmat import ProbabilityMatrix, paper_tail
from repro.sampler.rejection import RejectionSampler

__all__ = [
    "CdtSampler",
    "ConstantTimeCdtSampler",
    "DiscreteGaussian",
    "HalfGaussianTable",
    "KnuthYaoSampler",
    "LutKnuthYaoSampler",
    "SamplerLuts",
    "build_luts",
    "ProbabilityMatrix",
    "paper_tail",
    "RejectionSampler",
]
