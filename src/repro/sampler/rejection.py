"""Rejection sampler — the other classical baseline of Section II-B.

Draws a uniform candidate magnitude in [0, tail] and accepts it with
probability rho(x) / rho(0); a sign bit completes the sample.  Acceptance
testing is done against fixed-point thresholds derived from the same
high-precision table machinery as the other samplers, so the method is
exact up to the table precision.

Why the paper avoids it: the uniform candidate wastes most draws for a
narrow Gaussian (acceptance rate ~ sqrt(2*pi)*sigma / (2*tail + 1), about
10% at s = 11.31), and each trial costs a fresh uniform plus a wide
comparison.  The trial counter feeds the sampler ablation bench.
"""

from __future__ import annotations

import math
from decimal import localcontext
from typing import List

from repro.core.params import ParameterSet
from repro.sampler.distribution import (
    DiscreteGaussian,
    _working_digits,
)
from repro.sampler.pmat import DEFAULT_PRECISION, paper_tail
from repro.trng.bitsource import BitSource


class RejectionSampler:
    """Uniform-proposal rejection sampler for a discrete Gaussian."""

    def __init__(
        self,
        gaussian: DiscreteGaussian,
        q: int,
        bits: BitSource,
        tail: int = None,
        precision: int = DEFAULT_PRECISION,
    ):
        if tail is None:
            tail = paper_tail(gaussian.sigma)
        if q <= 2 * tail:
            raise ValueError("q too small for the requested tail")
        self.gaussian = gaussian
        self.q = q
        self.bits = bits
        self.tail = tail
        self.precision = precision
        self._thresholds = self._build_thresholds()
        self._magnitude_bits = max(1, (tail + 1 - 1).bit_length())
        self.trials = 0
        self.accepted = 0

    @classmethod
    def for_params(
        cls, params: ParameterSet, bits: BitSource
    ) -> "RejectionSampler":
        return cls(DiscreteGaussian(sigma=params.sigma), params.q, bits)

    def _build_thresholds(self) -> List[int]:
        """threshold[x] = floor(rho(x)/rho(0) * 2^precision).

        A trial (x, u) with a `precision`-bit uniform u is accepted when
        u < threshold[x]; rho(0) = 1, so threshold[0] = 2^precision.
        """
        digits = _working_digits(self.precision)
        with localcontext() as ctx:
            ctx.prec = digits
            scale = 1 << self.precision
            out = []
            for x in range(self.tail + 1):
                ratio = self.gaussian._rho_decimal(x, digits)
                out.append(int(ratio * scale))
        return out

    @property
    def acceptance_probability(self) -> float:
        """Analytic acceptance rate of one trial."""
        mass = sum(self.gaussian.rho(x) for x in range(self.tail + 1))
        return mass / (1 << self._magnitude_bits)

    def sample_magnitude(self) -> int:
        """Rejection loop over uniform candidates."""
        while True:
            self.trials += 1
            x = self.bits.bits(self._magnitude_bits)
            if x > self.tail:
                continue  # out-of-range candidate: auto-reject
            u = self.bits.bits(self.precision)
            if u < self._thresholds[x]:
                self.accepted += 1
                return x

    def sample(self) -> int:
        row = self.sample_magnitude()
        # Match the Knuth-Yao samplers' sign convention: row 0 maps to 0
        # under both signs, which double-counts zero relative to the
        # signed Gaussian — correct for by rejecting half of the signed
        # zeros (standard trick for half-distribution rejection).
        while True:
            sign = self.bits.bit()
            if row != 0:
                return (self.q - row) % self.q if sign else row
            if not sign:
                return 0
            # signed zero rejected: draw a fresh magnitude
            row = self.sample_magnitude()

    def sample_centered(self) -> int:
        value = self.sample()
        return value if value <= self.q // 2 else value - self.q

    def sample_polynomial(self, n: int) -> List[int]:
        return [self.sample() for _ in range(n)]

    def observed_acceptance_rate(self) -> float:
        if self.trials == 0:
            return math.nan
        return self.accepted / self.trials
