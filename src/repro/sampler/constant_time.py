"""Constant-time discrete Gaussian sampling (the paper's future work).

Section V: "We further intend to extend our scheme to allow for
constant-time execution."  The Knuth-Yao walk is inherently
data-dependent — its running time correlates with the sampled magnitude,
which later work showed is exploitable.  The standard constant-time
alternative is a **full-scan CDT sampler**: draw one fixed-width
uniform, compare it against *every* cumulative-table entry with
branchless arithmetic, and accumulate the result by masking.  Every
sample then consumes the same number of random bits and executes the
same instruction sequence.

The class accepts an optional machine so the cycle model can demonstrate
both halves of the trade-off: the timing variance collapses to zero
(see :mod:`repro.analysis.leakage`) while the average cost rises well
above Alg. 2's 28.5 cycles/sample — exactly why the paper shipped the
fast variant and deferred constant time to future work.

The constant-time promise is machine-checked: ``rlwe-repro lint``
(CT001, see README "Developer tooling") taints the names declared by
the ``# lint: secret(...)`` annotations below and flags any
secret-dependent branch, loop, or table index.  The Knuth-Yao samplers
carry no such annotations on purpose — their walk is secret-dependent
by design (the leak :mod:`repro.analysis.leakage` quantifies), and
they promise no constant-time behaviour.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.params import ParameterSet
from repro.machine.machine import CortexM4
from repro.sampler.distribution import HalfGaussianTable
from repro.sampler.pmat import ProbabilityMatrix
from repro.trng.bitsource import BitSource


class ConstantTimeCdtSampler:
    """Branchless full-scan CDT sampler over the fixed-point table.

    Produces *exactly* the same distribution as the Knuth-Yao samplers
    (both realise the same :class:`HalfGaussianTable`).
    """

    def __init__(
        self,
        table: HalfGaussianTable,
        q: int,
        bits: BitSource,
        machine: Optional[CortexM4] = None,
    ):
        if q <= 2 * table.tail:
            raise ValueError("q too small for the table's tail")
        self.table = table
        self.q = q
        self.bits = bits
        self.machine = machine
        cumulative = []
        acc = 0
        for p in table.probabilities:
            acc += p
            cumulative.append(acc)
        self._cdt = cumulative
        # The fixed-point entries span `precision` bits; the scan uses
        # word-wise borrow arithmetic on an embedded target.  We charge
        # per-entry costs for the word count the comparison touches.
        self._words_per_entry = (table.precision + 31) // 32

    @property
    def precision(self) -> int:
        return self.table.precision

    def _charge_entry(self) -> None:
        """Cost of one branchless table comparison.

        Load the entry (one access per 32-bit word), wide subtract with
        borrow (1 ALU/word), accumulate the borrow into the result
        counter (2 ALU) — no branches at all.
        """
        if self.machine is not None:
            self.machine.load(self._words_per_entry)
            self.machine.alu(self._words_per_entry)
            self.machine.alu(2)

    # lint: secret(u)
    def sample_magnitude(self) -> int:
        """Full-table scan: time independent of the result."""
        # Draw the wide uniform in fixed-size chunks (register pools
        # serve at most 31 bits per request); the chunking pattern is
        # identical every sample, preserving constant time.
        u = 0
        collected = 0
        while collected < self.precision:
            chunk = min(24, self.precision - collected)
            u |= self.bits.bits(chunk) << collected
            collected += chunk
            if self.machine is not None:
                self.machine.alu(2)  # shift + or into the wide register
        result = 0
        for entry in self._cdt:
            self._charge_entry()
            # Branchless: result += (u >= entry), computed via the
            # subtraction borrow on hardware; Python mirrors the value.
            result += 1 if u >= entry else 0  # lint: disable=CT001(borrow-bit accumulate on hardware; Python only mirrors the selected value)
        return result

    # lint: secret(row, sign)
    def sample(self) -> int:
        """One sample in [0, q): constant-time magnitude plus sign.

        The sign path is branchless as well: the negation mod q is
        computed unconditionally and selected by mask.
        """
        row = self.sample_magnitude()
        sign = self.bits.bit()
        if self.machine is not None:
            self.machine.alu(3)  # rsb; mask; select — no branch
        negated = (self.q - row) % self.q
        return negated if sign else row  # lint: disable=CT001(mask-select on hardware; both arms are computed before the select)

    # lint: secret(value)
    def sample_centered(self) -> int:
        value = self.sample()
        return value if value <= self.q // 2 else value - self.q  # lint: disable=CT001(mask-select on hardware; both arms are computed before the select)

    def sample_polynomial(self, n: int) -> List[int]:
        return [self.sample() for _ in range(n)]

    @classmethod
    def for_params(
        cls,
        params: ParameterSet,
        bits: BitSource,
        machine: Optional[CortexM4] = None,
    ) -> "ConstantTimeCdtSampler":
        pmat = ProbabilityMatrix.for_params(params)
        return cls(pmat.table, params.q, bits, machine)

    def bits_per_sample(self) -> int:
        """Fixed randomness cost: precision + sign, every sample."""
        return self.precision + 1
