"""High-precision discrete Gaussian distribution.

The Knuth-Yao sampler needs the sampling probabilities written out to
~109 fractional bits (Section II-B: statistical distance at most 2^-90 to
the true distribution).  Double-precision floats only carry 53 bits, so
probabilities are computed with :mod:`decimal` at a working precision
comfortably above the target and then rounded to fixed-point integers.

Conventions
-----------
The paper quotes the Gaussian parameter as ``s`` with
``sigma = s / sqrt(2*pi)``; the density is
``rho(x) = exp(-x^2 / (2*sigma^2)) = exp(-pi * x^2 / s^2)``.

The probability matrix stores the *positive half* of the distribution and
a separate random bit chooses the sign (0 maps to 0 under both signs), so
the half-distribution table must satisfy

    t_0 = rho(0) / S,    t_x = 2 * rho(x) / S   (x > 0),
    S   = rho(0) + 2 * sum_{x>0} rho(x),

which makes the *signed* output exactly proportional to rho(|x|).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from decimal import Decimal, getcontext, localcontext
from fractions import Fraction
from typing import Dict, List, Optional

SQRT_2PI = math.sqrt(2.0 * math.pi)

#: Extra guard digits beyond the requested bit precision.
_GUARD_DIGITS = 15


def _working_digits(precision_bits: int) -> int:
    """Decimal digits needed to resolve ``precision_bits`` binary digits."""
    return int(precision_bits * 0.302) + _GUARD_DIGITS + 10


@dataclass(frozen=True)
class HalfGaussianTable:
    """Fixed-point half-distribution table.

    ``probabilities[x]`` is ``round(t_x * 2**precision)`` adjusted by the
    largest-remainder method so the entries sum to exactly
    ``2**precision`` — this makes the DDG tree complete (the random walk
    always terminates) and keeps the statistical distance within
    ``(tail+2) * 2**-precision`` of the ideal distribution.
    """

    sigma: float
    precision: int
    probabilities: "tuple[int, ...]"

    @property
    def tail(self) -> int:
        """Largest representable magnitude."""
        return len(self.probabilities) - 1

    def probability(self, x: int) -> Fraction:
        """Exact table probability of drawing magnitude ``x``."""
        if not 0 <= x <= self.tail:
            return Fraction(0)
        return Fraction(self.probabilities[x], 1 << self.precision)

    def signed_probability(self, value: int) -> Fraction:
        """Exact probability of the *signed* sampler output ``value``."""
        if value == 0:
            return self.probability(0)
        return self.probability(abs(value)) / 2

    def statistical_distance(self) -> float:
        """Total-variation distance of the signed output to the ideal
        discrete Gaussian (including tail truncation)."""
        gauss = DiscreteGaussian(sigma=self.sigma)
        # Sum over a generous support; beyond 2*tail the ideal mass is
        # far below any representable contribution.
        support = range(-2 * self.tail - 2, 2 * self.tail + 3)
        total = Fraction(0)
        for value in support:
            ideal = Fraction(gauss.pmf(value)).limit_denominator(10**30)
            total += abs(self.signed_probability(value) - ideal)
        return float(total / 2)


class DiscreteGaussian:
    """Discrete Gaussian over the integers with standard deviation sigma."""

    def __init__(
        self, sigma: Optional[float] = None, s: Optional[float] = None
    ):
        if (sigma is None) == (s is None):
            raise ValueError("specify exactly one of sigma, s")
        if sigma is None:
            sigma = s / SQRT_2PI
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.sigma = float(sigma)

    @property
    def s(self) -> float:
        """The paper's Gaussian parameter: sigma * sqrt(2*pi)."""
        return self.sigma * SQRT_2PI

    # ------------------------------------------------------------------
    # Densities
    # ------------------------------------------------------------------
    def rho(self, x: int) -> float:
        """Unnormalised density exp(-x^2 / (2 sigma^2)) as a float."""
        return math.exp(-(x * x) / (2.0 * self.sigma * self.sigma))

    def _rho_decimal(self, x: int, digits: int) -> Decimal:
        with localcontext() as ctx:
            ctx.prec = digits
            sig = Decimal(repr(self.sigma))
            exponent = -Decimal(x * x) / (2 * sig * sig)
            return exponent.exp()

    def pmf(self, x: int) -> float:
        """Normalised probability of integer ``x`` (float precision)."""
        return self.rho(x) / self._normaliser()

    def _normaliser(self) -> float:
        total = 1.0
        x = 1
        while True:
            term = self.rho(x)
            if term < 1e-300:
                break
            total += 2.0 * term
            x += 1
        return total

    # ------------------------------------------------------------------
    # Bounds (Dwarakanath & Galbraith style)
    # ------------------------------------------------------------------
    def tail_bound(self, epsilon: float = 2.0**-92) -> int:
        """Smallest z such that Pr[|X| > z] < epsilon.

        Uses the standard sub-Gaussian bound
        Pr[|X| > z] <= 2 * exp(-z^2 / (2 sigma^2)); the loop refines it
        with the actual (float) tail mass.
        """
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        z = int(self.sigma * math.sqrt(-2.0 * math.log(epsilon / 2.0)))
        z = max(z, 1)
        # Refine downwards/upwards with the concrete mass.
        while self._tail_mass(z) >= epsilon:
            z += 1
        while z > 1 and self._tail_mass(z - 1) < epsilon:
            z -= 1
        return z

    def _tail_mass(self, z: int) -> float:
        norm = self._normaliser()
        mass = 0.0
        x = z + 1
        while True:
            term = self.rho(x)
            if term < 1e-300:
                break
            mass += 2.0 * term
            x += 1
        return mass / norm

    @staticmethod
    def precision_bound(
        tail: int, statistical_distance: float = 2.0**-90
    ) -> int:
        """Bits of probability precision so the rounding contribution to
        the statistical distance stays below ``statistical_distance``.

        Each of the ``tail + 1`` table rows contributes at most
        ``2**-precision`` of rounding error, so
        ``precision >= log2((tail + 1) / distance)``.
        """
        if not 0 < statistical_distance < 1:
            raise ValueError("statistical_distance must be in (0, 1)")
        return math.ceil(math.log2((tail + 1) / statistical_distance))

    # ------------------------------------------------------------------
    # Fixed-point half-distribution table
    # ------------------------------------------------------------------
    def half_table(self, precision: int, tail: int) -> HalfGaussianTable:
        """Build the fixed-point half-distribution table.

        ``probabilities[x] / 2**precision`` approximates ``t_x`` (see
        module docstring) and the entries sum to exactly
        ``2**precision`` (largest-remainder rounding).
        """
        if precision <= 0 or tail <= 0:
            raise ValueError("precision and tail must be positive")
        digits = _working_digits(precision)
        with localcontext() as ctx:
            ctx.prec = digits
            rho = [self._rho_decimal(x, digits) for x in range(tail + 1)]
            # Normalise over the truncated support (condition on |x| <=
            # tail).  The raw fixed-point values then sum to 2**precision
            # up to rounding, so largest-remainder correction below makes
            # the DDG tree complete; the conditioning error is the tail
            # mass, far below the 2^-90 target for the paper's tails.
            normaliser = rho[0] + 2 * sum(rho[1:])
            scale = Decimal(1 << precision)
            raw: List[Decimal] = [rho[0] / normaliser * scale]
            raw += [2 * r / normaliser * scale for r in rho[1:]]
        floors = [int(value) for value in raw]
        remainders = [value - int(value) for value in raw]
        deficit = (1 << precision) - sum(floors)
        if deficit < 0:  # pragma: no cover - floors can only undershoot
            raise ArithmeticError("fixed-point table overshoots unity")
        # Hand the missing ulps to the rows with the largest remainders.
        order = sorted(
            range(len(floors)), key=lambda i: remainders[i], reverse=True
        )
        for i in order[:deficit]:
            floors[i] += 1
        return HalfGaussianTable(
            sigma=self.sigma,
            precision=precision,
            probabilities=tuple(floors),
        )

    def moments(self) -> Dict[str, float]:
        """Float mean/variance of the ideal distribution (for tests)."""
        norm = self._normaliser()
        variance = 0.0
        x = 1
        while True:
            term = self.rho(x)
            if term < 1e-300:
                break
            variance += 2.0 * x * x * term
            x += 1
        return {"mean": 0.0, "variance": variance / norm}
