"""Compiled-kernel Knuth-Yao sampler (the compiled backend's hot path).

Profiling the serving stack shows single-message encrypt is dominated
not by the NTT but by discrete Gaussian sampling — three error
polynomials per message, each coefficient a DDG walk drawing PRNG bits
one at a time.  :class:`AccelLutKnuthYaoSampler` keeps the exact
semantics of :class:`~repro.sampler.lut_sampler.LutKnuthYaoSampler`
(Alg. 2, LUT1/LUT2/scan, same phased block order) but runs the whole
loop — PRNG word generation, bit shifting, table lookups, DDG scans,
sign application — inside the C kernel of :mod:`repro.ntt.kernel_c`.

Bit-exactness contract: the C side mirrors ``PrngBitSource`` over
``Xorshift128`` (32-bit words shifted out LSB-first), so for a given
seed every sample, every counter, and the post-call PRNG/bit-register
state are identical to the pure-Python sampler.  The accelerated paths
therefore engage only when the bit source is *exactly* a
``PrngBitSource`` over *exactly* a ``Xorshift128`` (subclasses could
override anything); any other source — queue sources in tests, the
cycle-model BitPool — falls back to the inherited Python
implementations transparently.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.sampler.lut_sampler import LutKnuthYaoSampler
from repro.sampler.pmat import ProbabilityMatrix
from repro.trng.bitsource import BitSource, PrngBitSource
from repro.trng.xorshift import Xorshift128


class _PackedTables:
    """Per-(matrix, q) sampler constants packed for the C kernel."""

    def __init__(self, kernel, pmat: ProbabilityMatrix, q: int, luts):
        ffi = kernel.ffi
        # LUT bytes: low 7 bits row-or-distance, MSB failure flag.
        self.lut1 = ffi.new("uint8_t[]", list(luts.lut1))
        self.lut2 = ffi.new(
            "uint8_t[]", list(luts.lut2) if luts.lut2 else [0]
        )
        # Per-column descending set-row lists, flattened with a prefix-
        # offset vector — the scan walk's O(1) column lookup (mirrors
        # KnuthYaoSampler._set_rows_by_column).
        col_off = [0]
        set_rows = []
        for col in range(pmat.columns):
            set_rows.extend(
                row
                for row in range(pmat.rows - 1, -1, -1)
                if pmat.bit(row, col)
            )
            col_off.append(len(set_rows))
        self.col_off = ffi.new("int32_t[]", col_off)
        self.set_rows = ffi.new(
            "int32_t[]", set_rows if set_rows else [0]
        )
        self.columns = pmat.columns
        self.q = q


#: Packed tables per (matrix identity, q) — matrices are themselves
#: module-cached per parameter set, and the FO-KEM constructs a scheme
#: (hence a sampler) per encapsulation, so packing must not repeat.
_PACKED_CACHE: Dict[Tuple[int, int], Tuple[ProbabilityMatrix, _PackedTables]] = {}


def _packed_tables(kernel, pmat: ProbabilityMatrix, q: int, luts):
    key = (id(pmat), q)
    entry = _PACKED_CACHE.get(key)
    if entry is None or entry[0] is not pmat:
        entry = (pmat, _PackedTables(kernel, pmat, q, luts))
        _PACKED_CACHE[key] = entry
    return entry[1]


class AccelLutKnuthYaoSampler(LutKnuthYaoSampler):
    """LUT Knuth-Yao sampler whose bulk paths run in the C kernel."""

    def __init__(
        self,
        pmat: ProbabilityMatrix,
        q: int,
        bits: BitSource,
        use_lut2: bool = True,
        kernel=None,
    ):
        super().__init__(pmat, q, bits, use_lut2=use_lut2)
        if kernel is None:
            from repro.ntt.compiled import CompiledKernel

            kernel = CompiledKernel()
        self._kernel = kernel
        packed = _packed_tables(kernel, pmat, q, self.luts)
        self._packed = packed
        ffi = kernel.ffi
        struct = ffi.new("repro_ky_tables *")
        struct.lut1 = packed.lut1
        struct.lut2 = packed.lut2
        struct.use_lut2 = 1 if self.use_lut2 else 0
        struct.col_off = packed.col_off
        struct.set_rows = packed.set_rows
        struct.columns = packed.columns
        struct.q = q
        self._ctables = struct

    def _eligible(self) -> bool:
        # Exact types only: a subclass could change the bit stream the C
        # mirror reproduces, silently breaking seeded determinism.
        bits = self.bits
        return type(bits) is PrngBitSource and type(bits._prng) is Xorshift128

    def _run_kernel(self, count: int, block: bool):
        """Draw ``count`` samples in C, syncing PRNG/register state."""
        kernel = self._kernel
        np, ffi, lib = kernel.np, kernel.ffi, kernel.lib
        out = np.empty(count, dtype=np.int64)
        if count == 0:
            return out
        bits = self.bits
        prng = bits._prng
        state = ffi.new("repro_bits *")
        state.x, state.y = prng._x, prng._y
        state.z, state.w = prng._z, prng._w
        state.reg = bits._register
        state.avail = bits._available
        state.bits_consumed = bits.bits_consumed
        state.words_fetched = bits.words_fetched
        counters = ffi.new("int64_t[3]")
        out_ptr = ffi.cast(
            "int64_t *", ffi.from_buffer(out, require_writable=True)
        )
        if block:
            scratch_idx = ffi.new("int64_t[]", count)
            scratch_d = ffi.new("int64_t[]", count)
            lib.repro_ky_sample_block(
                self._ctables,
                state,
                out_ptr,
                count,
                scratch_idx,
                scratch_d,
                counters,
            )
        else:
            lib.repro_ky_sample_scalar(
                self._ctables, state, out_ptr, count, counters
            )
        prng._x, prng._y = int(state.x), int(state.y)
        prng._z, prng._w = int(state.z), int(state.w)
        bits._register = int(state.reg)
        bits._available = int(state.avail)
        bits.bits_consumed = int(state.bits_consumed)
        bits.words_fetched = int(state.words_fetched)
        self.lut1_hits += int(counters[0])
        self.lut2_hits += int(counters[1])
        self.scan_fallbacks += int(counters[2])
        return out

    # ------------------------------------------------------------------
    # Accelerated entry points (sequential per-sample bit order)
    # ------------------------------------------------------------------
    def sample(self) -> int:
        if not self._eligible():
            return super().sample()
        return int(self._run_kernel(1, block=False)[0])

    def sample_polynomial(self, n: int):
        if not self._eligible():
            return super().sample_polynomial(n)
        return self._run_kernel(n, block=False).tolist()

    def sample_polynomials(self, n: int, count: int):
        if n < 0 or count < 0:
            raise ValueError("n and count must be non-negative")
        if not self._eligible():
            return super().sample_polynomials(n, count)
        # Scalar order is sequential per sample, so count polynomials
        # fuse into one n*count draw with an identical bit stream —
        # one PRNG state sync instead of count.
        flat = self._run_kernel(n * count, block=False)
        return [flat[i * n : (i + 1) * n].tolist() for i in range(count)]

    # ------------------------------------------------------------------
    # Accelerated block path (phased bit order)
    # ------------------------------------------------------------------
    def sample_block(self, count: int):
        if count < 0:
            raise ValueError("count must be non-negative")
        if not self._eligible():
            return super().sample_block(count)
        return self._run_kernel(count, block=True)
