"""Knuth-Yao discrete Gaussian sampler — Alg. 1 of the paper.

The sampler performs a random walk down the DDG tree, constructed
on-the-fly from the probability matrix: one random bit per level extends
the distance counter ``d``; scanning the level's column subtracts each
matrix bit from ``d``; the walk terminates at the row where ``d`` drops to
-1.  A final random bit selects the sign, with negative samples returned
as ``q - row`` because the encryption scheme works modulo q.

The functional implementation here is bit-exact: feeding it the same bit
stream as the cycle-model sampler or the LUT sampler must reproduce the
same outputs (see tests/test_lut_sampler.py for the precise invariant).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.params import ParameterSet
from repro.sampler.pmat import ProbabilityMatrix
from repro.trng.bitsource import BitSource


class KnuthYaoSampler:
    """Alg. 1: bit-scanning Knuth-Yao sampler over a probability matrix."""

    def __init__(
        self,
        pmat: ProbabilityMatrix,
        q: int,
        bits: BitSource,
    ):
        if q <= 2 * pmat.table.tail:
            raise ValueError(
                "q too small: signed samples would wrap into each other"
            )
        self.pmat = pmat
        self.q = q
        self.bits = bits
        # Per-column set-row lists (descending), built on first walk.
        self._set_rows_by_column = None

    @classmethod
    def for_params(
        cls, params: ParameterSet, bits: BitSource
    ) -> "KnuthYaoSampler":
        return cls(ProbabilityMatrix.for_params(params), params.q, bits)

    # ------------------------------------------------------------------
    # Core walk
    # ------------------------------------------------------------------
    def sample_magnitude(
        self, start_column: int = 0, start_distance: int = 0
    ) -> Optional[int]:
        """Run the DDG walk; return the row, or None if the matrix is
        exhausted (cannot happen for a complete tree, kept for fidelity
        with Alg. 1's final ``return 0``).

        ``start_column``/``start_distance`` allow the LUT sampler to
        resume the walk after a failed table lookup.
        """
        pmat = self.pmat
        if self._set_rows_by_column is None:
            # Alg. 1 scans each column top-down (row n-1 .. 0) and stops
            # at the (d+1)-th set bit; precomputing the descending list
            # of set rows per column turns the O(rows) scan into one
            # index while consuming the exact same random bits.
            self._set_rows_by_column = [
                tuple(
                    row
                    for row in range(pmat.rows - 1, -1, -1)
                    if pmat.bit(row, col)
                )
                for col in range(pmat.columns)
            ]
        d = start_distance
        for col in range(start_column, pmat.columns):
            d = 2 * d + self.bits.bit()
            set_rows = self._set_rows_by_column[col]
            if d < len(set_rows):
                return set_rows[d]
            d -= len(set_rows)
        return None

    def _apply_sign(self, row: int) -> int:
        """Consume the sign bit; map row to row or (q - row) mod q."""
        if self.bits.bit():
            return (self.q - row) % self.q
        return row

    def sample(self) -> int:
        """One sample in [0, q) — Alg. 1 including the sign bit."""
        row = self.sample_magnitude()
        if row is None:
            # Alg. 1 line 11: walk fell off the matrix; return 0.
            return 0
        return self._apply_sign(row)

    def sample_centered(self) -> int:
        """One sample as a signed integer in [-tail, tail]."""
        value = self.sample()
        return value if value <= self.q // 2 else value - self.q

    def sample_polynomial(self, n: int) -> List[int]:
        """n independent samples in [0, q) — one error polynomial."""
        return [self.sample() for _ in range(n)]

    def sample_polynomials(self, n: int, count: int) -> List[List[int]]:
        """``count`` error polynomials, sequential per-sample bit order.

        Consumes exactly the bit stream of ``count`` sequential
        :meth:`sample_polynomial` calls; accelerated subclasses fuse the
        draws into one kernel call under the same equivalence.
        """
        if n < 0 or count < 0:
            raise ValueError("n and count must be non-negative")
        return [self.sample_polynomial(n) for _ in range(count)]
