"""Modular arithmetic helpers for NTT-friendly prime moduli.

The ring-LWE parameter sets in the paper use primes q with q = 1 mod 2n so
that the 2n-th roots of unity needed by the negative-wrapped (negacyclic)
NTT exist in Z_q.  This module provides the number theory required to find
those roots and the constants used by the Barrett reduction modelled in
:mod:`repro.machine.reduce`.
"""

from __future__ import annotations

from typing import List


def modpow(base: int, exponent: int, modulus: int) -> int:
    """Return ``base**exponent mod modulus`` (non-negative result)."""
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    return pow(base % modulus, exponent, modulus)


def modinv(value: int, modulus: int) -> int:
    """Return the multiplicative inverse of ``value`` modulo ``modulus``.

    Raises ``ValueError`` when the inverse does not exist.
    """
    value %= modulus
    if value == 0:
        raise ValueError("0 has no modular inverse")
    g, x = _extended_gcd(value, modulus)
    if g != 1:
        raise ValueError(f"{value} is not invertible modulo {modulus}")
    return x % modulus


def _extended_gcd(a: int, b: int) -> "tuple[int, int]":
    """Return ``(gcd(a, b), x)`` with ``a*x = gcd(a, b) mod b``."""
    old_r, r = a, b
    old_x, x = 1, 0
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
    return old_r, old_x


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin primality test for 64-bit integers."""
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # These witnesses are sufficient for all n < 3.3e24.
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def prime_factors(n: int) -> List[int]:
    """Return the sorted distinct prime factors of ``n`` (trial division)."""
    if n < 1:
        raise ValueError("n must be positive")
    factors = []
    p = 2
    while p * p <= n:
        if n % p == 0:
            factors.append(p)
            while n % p == 0:
                n //= p
        p += 1 if p == 2 else 2
    if n > 1:
        factors.append(n)
    return factors


def find_generator(q: int) -> int:
    """Return the smallest generator of the multiplicative group of Z_q.

    ``q`` must be prime.  A generator g satisfies g^((q-1)/p) != 1 for every
    prime factor p of q - 1.
    """
    if not is_prime(q):
        raise ValueError(f"{q} is not prime")
    if q == 2:
        return 1
    group_order = q - 1
    factors = prime_factors(group_order)
    for candidate in range(2, q):
        if all(pow(candidate, group_order // p, q) != 1 for p in factors):
            return candidate
    raise ArithmeticError(f"no generator found for Z_{q}")  # pragma: no cover


def root_of_unity(order: int, q: int) -> int:
    """Return a primitive ``order``-th root of unity in Z_q.

    Requires ``order`` to divide ``q - 1``.  The returned root w satisfies
    w^order = 1 and w^(order/p) != 1 for every prime p dividing ``order``.
    """
    if order <= 0:
        raise ValueError("order must be positive")
    if (q - 1) % order != 0:
        raise ValueError(f"{order} does not divide q-1 = {q - 1}")
    g = find_generator(q)
    w = pow(g, (q - 1) // order, q)
    if not is_primitive_root_of_unity(w, order, q):  # pragma: no cover
        raise ArithmeticError("generator construction failed")
    return w


def is_primitive_root_of_unity(w: int, order: int, q: int) -> bool:
    """Check that ``w`` is a *primitive* ``order``-th root of unity mod q."""
    if pow(w, order, q) != 1:
        return False
    return all(pow(w, order // p, q) != 1 for p in prime_factors(order))


def barrett_constant(q: int, width: int = 32) -> int:
    """Return floor(2**width / q), the constant used by Barrett reduction.

    With products bounded by (q-1)**2 < 2**width, a single multiply-shift
    by this constant brings a value into [0, 2q), after which one
    conditional subtraction completes the reduction.  This mirrors what a
    Cortex-M4 implementation stores in a register for the NTT inner loop.
    """
    if q <= 0:
        raise ValueError("q must be positive")
    if (q - 1) ** 2 >= 1 << width:
        raise ValueError(f"q = {q} too large for Barrett width {width}")
    return (1 << width) // q


def bit_length_of_coefficients(q: int) -> int:
    """Number of bits needed to store one coefficient in [0, q)."""
    return (q - 1).bit_length()
