"""The ring-LWE key-transport service layer.

The paper's Table IV frames the scheme as the post-quantum replacement
for ECIES key transport; this package is the serving side of that
story.  It exposes the PR 1 batched throughput engine over a socket:

* :mod:`repro.service.protocol` — length-prefixed binary framing with
  multiplexed request ids, riding on the :mod:`repro.core.serialize`
  wire objects;
* :mod:`repro.service.coalescer` — the micro-batching request
  coalescer that turns concurrent single requests into one batched
  backend call (the inference-server pattern applied to lattice
  crypto);
* :mod:`repro.service.executor` — the pluggable execution-engine
  layer: :class:`~repro.service.executor.InlineExecutor` computes
  batches on the event loop,
  :class:`~repro.service.executor.WorkerPoolExecutor` shards them
  across worker processes speaking the hardened wire format;
* :mod:`repro.service.worker` — the worker-process entry point
  (``python -m repro.service.worker``);
* :mod:`repro.service.server` — the asyncio server
  (``rlwe-repro serve``) exposing encrypt / decrypt / encapsulate /
  decapsulate / stats;
* :mod:`repro.service.client` — the pipelining async client (context
  manager in both sync and async flavors);
* :mod:`repro.service.loadgen` — closed- and open-loop load
  generation with latency percentiles (``rlwe-repro loadgen``).

Most callers should not program against this layer directly: the
:mod:`repro.api` session facade wraps it (and the in-process engines)
behind one transport-agnostic API with typed exceptions.
"""

from repro.service.client import DeadlineExceeded, RlweServiceClient
from repro.service.coalescer import FusedBatcherGroup, MicroBatcher
from repro.service.executor import (
    Executor,
    InlineExecutor,
    OpRunner,
    WorkerPoolExecutor,
    pool_executor_for,
)
from repro.service.loadgen import latency_summary, run_load
from repro.service.protocol import ServiceError
from repro.service.server import RlweService, RlweServiceServer

__all__ = [
    "DeadlineExceeded",
    "Executor",
    "FusedBatcherGroup",
    "InlineExecutor",
    "MicroBatcher",
    "OpRunner",
    "RlweService",
    "RlweServiceClient",
    "RlweServiceServer",
    "ServiceError",
    "WorkerPoolExecutor",
    "latency_summary",
    "pool_executor_for",
    "run_load",
]
