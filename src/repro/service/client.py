"""Pipelining async client for the key-transport service.

One connection carries many in-flight requests: each request gets a
fresh 32-bit id, responses are matched back by id, and a background
reader task dispatches them — so ``asyncio.gather`` over many calls
pipelines naturally and feeds the server's micro-batching coalescer.

    client = await RlweServiceClient.connect("127.0.0.1", 8470)
    keys = await asyncio.gather(*[client.encapsulate() for _ in range(64)])
    await client.close()

The client is also a context manager in both flavors: ``async with``
gives the fully drained :meth:`~RlweServiceClient.close`, and a plain
``with`` guarantees the socket drops on error paths via
:meth:`~RlweServiceClient.close_nowait` even where awaiting is
impossible.  Non-OK responses raise
:class:`~repro.service.protocol.ServiceError` with the wire status
attached; the :mod:`repro.api` facade maps those onto its typed
exception hierarchy.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from repro.core.kem import SECRET_BYTES
from repro.service import protocol
from repro.service.protocol import (
    OP_DECAPSULATE,
    OP_DECRYPT,
    OP_ENCAPSULATE,
    OP_ENCRYPT,
    OP_GET_PUBLIC_KEY,
    OP_PING,
    OP_STATS,
    STATUS_OK,
    Request,
    ServiceError,
)


def trim_plaintext(data: bytes, length: Optional[int]) -> bytes:
    """Validate and apply the caller-side ``length`` trim on a plaintext.

    Shared by the raw client and the session facade so both enforce one
    contract: ``None`` keeps the full decoded payload, anything else
    must be within ``[0, len(data)]``.
    """
    if length is None:
        return data
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    if length > len(data):
        raise ValueError("requested length exceeds capacity")
    return data[:length]


def split_encapsulation(body: bytes) -> Tuple[bytes, bytes]:
    """Split a ``session_key || encapsulation`` response body.

    The shared inverse of the server's encapsulate response layout;
    raises :exc:`ValueError` on a body too short to carry the key.
    """
    if len(body) < SECRET_BYTES:
        raise ValueError(
            f"encapsulate response of {len(body)} bytes is shorter "
            f"than the {SECRET_BYTES}-byte session key"
        )
    return body[:SECRET_BYTES], body[SECRET_BYTES:]


class RlweServiceClient:
    """Multiplexed client over one framed connection."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        self._reader = reader
        self._writer = writer
        self._loop = asyncio.get_running_loop()
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 8470
    ) -> "RlweServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        try:
            return cls(reader, writer)
        except BaseException:
            # Construction failed after the socket opened: never leak it.
            writer.close()
            raise

    async def __aenter__(self) -> "RlweServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def __enter__(self) -> "RlweServiceClient":
        """Sync context manager: best-effort teardown without awaiting.

        For callers that cannot ``await`` on the way out (a sync
        ``with`` inside a coroutine, or cleanup after the loop has
        finished).  ``__exit__`` runs :meth:`close_nowait`; prefer
        ``async with`` where possible for the fully drained close.
        """
        return self

    def __exit__(self, *exc_info) -> None:
        self.close_nowait()

    def close_nowait(self) -> None:
        """Synchronous close: cancel the reader, drop the socket now.

        Unlike :meth:`close` this does not await ``wait_closed`` — the
        transport tears down when the loop next runs — but the socket is
        closed and every pending request fails immediately, so an error
        path can never strand an open connection.  If the client's loop
        has already closed (cleanup after ``asyncio.run`` returned), the
        underlying socket is closed directly instead, since a dead loop
        will never run the transport's teardown.  Idempotent, and safe
        to combine with a later :meth:`close`.

        Must be called from the client's own loop thread or after that
        loop has stopped; asyncio objects are not thread-safe, so
        another thread racing a live loop must use
        ``run_coroutine_threadsafe(client.close(), loop)`` instead.
        """
        if self._closed:
            return
        self._closed = True
        if self._loop.is_closed():
            # The transport can never finish closing on a dead loop;
            # release the fd directly.  Cancelling may try to schedule
            # on the closed loop — nothing will run anyway.
            try:
                self._reader_task.cancel()
            except RuntimeError:
                pass
            sock = self._writer.transport.get_extra_info("socket")
            if sock is not None:
                sock.close()
            return
        try:
            self._reader_task.cancel()
        finally:
            self._writer.close()
            self._fail_pending(ConnectionError("client closed"))

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        finally:
            # The socket must close even if reader teardown misbehaves.
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._fail_pending(ConnectionError("client closed"))

    # ------------------------------------------------------------------
    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def _read_loop(self) -> None:
        try:
            while True:
                payload = await protocol.read_frame(self._reader)
                if payload is None:
                    self._fail_pending(
                        ConnectionError("server closed the connection")
                    )
                    return
                response = protocol.decode_response(payload)
                future = self._pending.pop(response.request_id, None)
                if future is None or future.done():
                    continue  # cancelled or unsolicited; drop it
                if response.status == STATUS_OK:
                    future.set_result(response.body)
                else:
                    future.set_exception(
                        ServiceError(
                            response.status, response.body.decode(errors="replace")
                        )
                    )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - connection boundary
            self._fail_pending(exc)

    async def request(self, opcode: int, body: bytes = b"") -> bytes:
        """Send one request and await its response body."""
        if self._closed:
            raise ConnectionError("client is closed")
        request_id = self._next_id
        self._next_id = (self._next_id + 1) & 0xFFFFFFFF
        if self._next_id == protocol.RESERVED_REQUEST_ID:
            self._next_id = 0  # never allocate the server's error id
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        protocol.write_frame(
            self._writer,
            protocol.encode_request(Request(request_id, opcode, body)),
        )
        await self._writer.drain()
        try:
            return await future
        finally:
            self._pending.pop(request_id, None)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    async def ping(self, payload: bytes = b"ping") -> bytes:
        """Echo; raises on a dead or misbehaving server."""
        return await self.request(OP_PING, payload)

    async def get_public_key(self) -> bytes:
        """The server's serialized public key."""
        return await self.request(OP_GET_PUBLIC_KEY)

    async def encrypt(self, message: bytes) -> bytes:
        """Encrypt ``message`` under the server key; serialized ciphertext."""
        return await self.request(OP_ENCRYPT, message)

    async def decrypt(
        self, ciphertext: bytes, length: Optional[int] = None
    ) -> bytes:
        """Decrypt a serialized ciphertext; ``length`` trims zero padding."""
        return trim_plaintext(
            await self.request(OP_DECRYPT, ciphertext), length
        )

    async def encapsulate(self) -> Tuple[bytes, bytes]:
        """A fresh ``(session_key, serialized_encapsulation)`` pair."""
        return split_encapsulation(await self.request(OP_ENCAPSULATE))

    async def decapsulate(self, encapsulation: bytes) -> bytes:
        """Recover the session key from a serialized encapsulation."""
        return await self.request(OP_DECAPSULATE, encapsulation)

    async def stats(self) -> Dict:
        """The server's live per-op batch and executor-shard counters."""
        body = await self.request(OP_STATS)
        try:
            return json.loads(body.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"malformed stats response: {exc}") from None
