"""Pipelining async client for the key-transport service.

One connection carries many in-flight requests: each request gets a
fresh 32-bit id, responses are matched back by id, and a background
reader task dispatches them — so ``asyncio.gather`` over many calls
pipelines naturally and feeds the server's micro-batching coalescer.

    client = await RlweServiceClient.connect("127.0.0.1", 8470)
    keys = await asyncio.gather(*[client.encapsulate() for _ in range(64)])
    await client.close()

The client is also a context manager in both flavors: ``async with``
gives the fully drained :meth:`~RlweServiceClient.close`, and a plain
``with`` guarantees the socket drops on error paths via
:meth:`~RlweServiceClient.close_nowait` even where awaiting is
impossible.  Non-OK responses raise
:class:`~repro.service.protocol.ServiceError` with the wire status
attached; the :mod:`repro.api` facade maps those onto its typed
exception hierarchy.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Dict, List, Optional, Tuple

from repro.core.kem import SECRET_BYTES
from repro.service import protocol
from repro.service.protocol import (
    GENERATION_CURRENT,
    OP_CREATE_KEY,
    OP_DECAPSULATE,
    OP_DECRYPT,
    OP_ENCAPSULATE,
    OP_ENCRYPT,
    OP_GET_PUBLIC_KEY,
    OP_KEY_DECAPSULATE,
    OP_KEY_DECRYPT,
    OP_KEY_ENCAPSULATE,
    OP_KEY_ENCRYPT,
    OP_KEY_GET_PUBLIC,
    OP_LIST_KEYS,
    OP_PING,
    OP_RETIRE_KEY,
    OP_ROTATE_KEY,
    OP_STATS,
    STATUS_OK,
    Request,
    ServiceError,
)

_GENERATION = struct.Struct("!I")


class DeadlineExceeded(ConnectionError):
    """A client-side deadline fired before the peer answered.

    A :class:`ConnectionError` subclass, so every existing
    connection-loss handler (and the facade's
    ``EngineUnavailableError`` mapping) treats a deadline the same as
    a dead peer — which, to the caller, it is: the response may still
    arrive later, but this request will never see it.
    """


def trim_plaintext(data: bytes, length: Optional[int]) -> bytes:
    """Validate and apply the caller-side ``length`` trim on a plaintext.

    Shared by the raw client and the session facade so both enforce one
    contract: ``None`` keeps the full decoded payload, anything else
    must be within ``[0, len(data)]``.
    """
    if length is None:
        return data
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    if length > len(data):
        raise ValueError("requested length exceeds capacity")
    return data[:length]


def split_encapsulation(body: bytes) -> Tuple[bytes, bytes]:
    """Split a ``session_key || encapsulation`` response body.

    The shared inverse of the server's encapsulate response layout;
    raises :exc:`ValueError` on a body too short to carry the key.
    """
    if len(body) < SECRET_BYTES:
        raise ValueError(
            f"encapsulate response of {len(body)} bytes is shorter "
            f"than the {SECRET_BYTES}-byte session key"
        )
    return body[:SECRET_BYTES], body[SECRET_BYTES:]


class RlweServiceClient:
    """Multiplexed client over one framed connection.

    ``request_timeout`` is the per-request deadline in seconds
    (``None`` — the raw-layer default — waits forever; the session
    facade passes a finite one).  A request that misses its deadline
    raises :class:`DeadlineExceeded`; its late response, if any, is
    dropped by the reader loop.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        request_timeout: Optional[float] = None,
    ):
        self._reader = reader
        self._writer = writer
        self._loop = asyncio.get_running_loop()
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._closed = False
        self.request_timeout = request_timeout
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 8470,
        *,
        connect_timeout: Optional[float] = None,
        request_timeout: Optional[float] = None,
    ) -> "RlweServiceClient":
        """Connect; ``connect_timeout`` bounds the TCP handshake."""
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), connect_timeout
            )
        except asyncio.TimeoutError:
            raise DeadlineExceeded(
                f"connect to {host}:{port} timed out after "
                f"{connect_timeout:g}s"
            ) from None
        try:
            return cls(reader, writer, request_timeout=request_timeout)
        except BaseException:
            # Construction failed after the socket opened: never leak it.
            writer.close()
            raise

    async def __aenter__(self) -> "RlweServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def __enter__(self) -> "RlweServiceClient":
        """Sync context manager: best-effort teardown without awaiting.

        For callers that cannot ``await`` on the way out (a sync
        ``with`` inside a coroutine, or cleanup after the loop has
        finished).  ``__exit__`` runs :meth:`close_nowait`; prefer
        ``async with`` where possible for the fully drained close.
        """
        return self

    def __exit__(self, *exc_info) -> None:
        self.close_nowait()

    def close_nowait(self) -> None:
        """Synchronous close: cancel the reader, drop the socket now.

        Unlike :meth:`close` this does not await ``wait_closed`` — the
        transport tears down when the loop next runs — but the socket is
        closed and every pending request fails immediately, so an error
        path can never strand an open connection.  If the client's loop
        has already closed (cleanup after ``asyncio.run`` returned), the
        underlying socket is closed directly instead, since a dead loop
        will never run the transport's teardown.  Idempotent, and safe
        to combine with a later :meth:`close`.

        Must be called from the client's own loop thread or after that
        loop has stopped; asyncio objects are not thread-safe, so
        another thread racing a live loop must use
        ``run_coroutine_threadsafe(client.close(), loop)`` instead.
        """
        if self._closed:
            return
        self._closed = True
        if self._loop.is_closed():
            # The transport can never finish closing on a dead loop;
            # release the fd directly.  Cancelling may try to schedule
            # on the closed loop — nothing will run anyway.
            try:
                self._reader_task.cancel()
            except RuntimeError:
                pass
            sock = self._writer.transport.get_extra_info("socket")
            if sock is not None:
                sock.close()
            return
        try:
            self._reader_task.cancel()
        finally:
            self._writer.close()
            self._fail_pending(ConnectionError("client closed"))

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # lint: disable=EXC001(teardown: the cancelled reader's own failure must not abort close)
                pass
        finally:
            # The socket must close even if reader teardown misbehaves.
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._fail_pending(ConnectionError("client closed"))

    # ------------------------------------------------------------------
    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def _read_loop(self) -> None:
        try:
            while True:
                payload = await protocol.read_frame(self._reader)
                if payload is None:
                    self._fail_pending(
                        ConnectionError("server closed the connection")
                    )
                    return
                response = protocol.decode_response(payload)
                future = self._pending.pop(response.request_id, None)
                if future is None or future.done():
                    continue  # cancelled or unsolicited; drop it
                if response.status == STATUS_OK:
                    future.set_result(response.body)
                else:
                    future.set_exception(
                        ServiceError(
                            response.status, response.body.decode(errors="replace")
                        )
                    )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # lint: disable=EXC001(connection boundary: any reader failure must fail every pending future)
            self._fail_pending(exc)

    async def request(self, opcode: int, body: bytes = b"") -> bytes:
        """Send one request and await its response body."""
        if self._closed:
            raise ConnectionError("client is closed")
        request_id = self._next_id
        self._next_id = (self._next_id + 1) & 0xFFFFFFFF
        if self._next_id == protocol.RESERVED_REQUEST_ID:
            self._next_id = 0  # never allocate the server's error id
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        protocol.write_frame(
            self._writer,
            protocol.encode_request(Request(request_id, opcode, body)),
        )
        await self._writer.drain()
        try:
            return await asyncio.wait_for(future, self.request_timeout)
        except asyncio.TimeoutError:
            raise DeadlineExceeded(
                f"{protocol.OPCODE_NAMES.get(opcode, opcode)} request "
                f"{request_id} exceeded the {self.request_timeout:g}s "
                f"deadline"
            ) from None
        finally:
            self._pending.pop(request_id, None)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    async def ping(self, payload: bytes = b"ping") -> bytes:
        """Echo; raises on a dead or misbehaving server."""
        return await self.request(OP_PING, payload)

    async def get_public_key(self) -> bytes:
        """The server's serialized public key."""
        return await self.request(OP_GET_PUBLIC_KEY)

    async def encrypt(self, message: bytes) -> bytes:
        """Encrypt ``message`` under the server key; serialized ciphertext."""
        return await self.request(OP_ENCRYPT, message)

    async def decrypt(
        self, ciphertext: bytes, length: Optional[int] = None
    ) -> bytes:
        """Decrypt a serialized ciphertext; ``length`` trims zero padding."""
        return trim_plaintext(
            await self.request(OP_DECRYPT, ciphertext), length
        )

    async def encapsulate(self) -> Tuple[bytes, bytes]:
        """A fresh ``(session_key, serialized_encapsulation)`` pair."""
        return split_encapsulation(await self.request(OP_ENCAPSULATE))

    async def decapsulate(self, encapsulation: bytes) -> bytes:
        """Recover the session key from a serialized encapsulation."""
        return await self.request(OP_DECAPSULATE, encapsulation)

    async def stats(self) -> Dict:
        """The server's live per-op batch and executor-shard counters."""
        body = await self.request(OP_STATS)
        return self._json_body(body, "stats")

    # ------------------------------------------------------------------
    # Keystore operations (multi-tenant named keys)
    # ------------------------------------------------------------------
    @staticmethod
    def _json_body(body: bytes, what: str) -> Dict:
        try:
            return json.loads(body.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"malformed {what} response: {exc}") from None

    async def create_key(self, name: str) -> Dict:
        """Create named key ``name``; its key-info dict."""
        return self._json_body(
            await self.request(OP_CREATE_KEY, name.encode("utf-8")),
            "create_key",
        )

    async def rotate_key(self, name: str) -> Dict:
        """Rotate ``name`` to its next generation; the new key info."""
        return self._json_body(
            await self.request(OP_ROTATE_KEY, name.encode("utf-8")),
            "rotate_key",
        )

    async def retire_key(self, name: str) -> Dict:
        """Retire ``name``; later requests get ``key_not_found``."""
        return self._json_body(
            await self.request(OP_RETIRE_KEY, name.encode("utf-8")),
            "retire_key",
        )

    async def list_keys(self) -> List[Dict]:
        """Every key slot's info dict (default key first)."""
        listing = self._json_body(
            await self.request(OP_LIST_KEYS), "list_keys"
        )
        keys = listing.get("keys")
        if not isinstance(keys, list):
            raise ValueError("malformed list_keys response: no keys list")
        return keys

    async def key_public_key(
        self, name: str, generation: int = GENERATION_CURRENT
    ) -> Tuple[int, bytes]:
        """``(generation, serialized public key)`` for one named key.

        The default ``generation`` sentinel resolves to the current
        one — this is how a client pins a generation before issuing
        key-addressed crypto requests.
        """
        body = await self.request(
            OP_KEY_GET_PUBLIC, protocol.encode_key_ref(name, generation)
        )
        if len(body) < _GENERATION.size:
            raise ValueError(
                f"key_get_public response of {len(body)} bytes is "
                f"shorter than its generation header"
            )
        (resolved,) = _GENERATION.unpack_from(body)
        return resolved, body[_GENERATION.size :]

    async def key_encrypt(
        self, name: str, generation: int, message: bytes
    ) -> bytes:
        """Encrypt under ``(name, generation)``; serialized ciphertext."""
        return await self.request(
            OP_KEY_ENCRYPT,
            protocol.encode_key_ref(name, generation) + message,
        )

    async def key_decrypt(
        self,
        name: str,
        generation: int,
        ciphertext: bytes,
        length: Optional[int] = None,
    ) -> bytes:
        """Decrypt under ``(name, generation)``."""
        return trim_plaintext(
            await self.request(
                OP_KEY_DECRYPT,
                protocol.encode_key_ref(name, generation) + ciphertext,
            ),
            length,
        )

    async def key_encapsulate(
        self, name: str, generation: int
    ) -> Tuple[bytes, bytes]:
        """A fresh session key encapsulated to ``(name, generation)``."""
        return split_encapsulation(
            await self.request(
                OP_KEY_ENCAPSULATE,
                protocol.encode_key_ref(name, generation),
            )
        )

    async def key_decapsulate(
        self, name: str, generation: int, encapsulation: bytes
    ) -> bytes:
        """Recover a session key under ``(name, generation)``."""
        return await self.request(
            OP_KEY_DECAPSULATE,
            protocol.encode_key_ref(name, generation) + encapsulation,
        )
