"""Closed- and open-loop load generation for the service.

Closed loop (``mode="closed"``): ``concurrency`` workers each issue
their next request as soon as the previous one completes — the
saturation-throughput measurement, and the regime where the coalescer's
batches fill.  Open loop (``mode="open"``): requests fire at a fixed
offered rate regardless of completions — the latency-under-load
measurement, where a server slower than the offered rate shows
unbounded queueing.

Both modes record per-request latency and report ops/s plus
mean/p50/p90/p95/p99/max milliseconds, as a plain dict that the CLI
renders and ``benchmarks/bench_service_throughput.py`` dumps to JSON.
The same latencies also feed a :class:`~repro.metrics.registry.Histogram`
with the service's standard latency buckets; its interpolated
p50/p95/p99 land in the result under ``latency_hist_ms`` — the numbers
a Prometheus dashboard would derive from ``repro_request_seconds``, so
a loadgen run and a ``/metrics`` scrape can be compared like-for-like.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Awaitable, Callable, Dict, List, Optional, Sequence

from repro.metrics.registry import (
    DEFAULT_LATENCY_BUCKETS,
    HistogramValue,
)
from repro.service.client import RlweServiceClient
from repro.service.protocol import ServiceError

#: Operations the load generator can drive.
LOADGEN_OPS = (
    "ping",
    "get_public_key",
    "encrypt",
    "decrypt",
    "encapsulate",
    "decapsulate",
)


def percentile(sorted_values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = round(p / 100.0 * (len(sorted_values) - 1))
    return sorted_values[min(len(sorted_values) - 1, max(0, rank))]


def latency_summary(latencies: List[float]) -> Dict[str, float]:
    """Exact nearest-rank percentiles of raw latencies, in ms."""
    if not latencies:
        return {
            "mean": 0.0,
            "p50": 0.0,
            "p90": 0.0,
            "p95": 0.0,
            "p99": 0.0,
            "max": 0.0,
        }
    ordered = sorted(latencies)
    to_ms = 1e3
    return {
        "mean": sum(ordered) / len(ordered) * to_ms,
        "p50": percentile(ordered, 50) * to_ms,
        "p90": percentile(ordered, 90) * to_ms,
        "p95": percentile(ordered, 95) * to_ms,
        "p99": percentile(ordered, 99) * to_ms,
        "max": ordered[-1] * to_ms,
    }


#: Back-compat alias; ``latency_summary`` is the public name.
_latency_summary = latency_summary


def histogram_summary(latencies: List[float]) -> Dict[str, float]:
    """Bucket-interpolated p50/p95/p99 in ms, as a dashboard would
    derive them from the server's ``repro_request_seconds`` histogram
    (same :data:`DEFAULT_LATENCY_BUCKETS`)."""
    histogram = HistogramValue(
        threading.RLock(), tuple(DEFAULT_LATENCY_BUCKETS)
    )
    for value in latencies:
        histogram.observe(value)
    to_ms = 1e3
    return {
        "p50": histogram.quantile(0.50) * to_ms,
        "p95": histogram.quantile(0.95) * to_ms,
        "p99": histogram.quantile(0.99) * to_ms,
    }


async def connect_with_retry(
    host: str, port: int, timeout: float = 0.0
) -> RlweServiceClient:
    """Connect, retrying for up to ``timeout`` seconds (0 = one try)."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while True:
        try:
            return await RlweServiceClient.connect(host, port)
        except OSError:
            if loop.time() >= deadline:
                raise
            await asyncio.sleep(0.1)


async def _build_op(
    clients: Sequence[RlweServiceClient], op: str, message: bytes
) -> Callable[[RlweServiceClient], Awaitable]:
    """Per-op callables; fixtures (ciphertext, encapsulation) made once."""
    setup_client = clients[0]
    if op == "ping":
        return lambda c: c.ping()
    if op == "get_public_key":
        return lambda c: c.get_public_key()
    if op == "encrypt":
        return lambda c: c.encrypt(message)
    if op == "decrypt":
        ciphertext = await setup_client.encrypt(message)
        return lambda c: c.decrypt(ciphertext)
    if op == "encapsulate":
        return lambda c: c.encapsulate()
    if op == "decapsulate":
        _, encapsulation = await setup_client.encapsulate()
        return lambda c: c.decapsulate(encapsulation)
    raise ValueError(f"unknown op {op!r}; choose from {LOADGEN_OPS}")


async def run_load(
    host: str,
    port: int,
    *,
    op: str = "encrypt",
    mode: str = "closed",
    concurrency: int = 8,
    requests: int = 64,
    rate: float = 100.0,
    connections: int = 1,
    message: bytes = b"",
    connect_timeout: float = 0.0,
) -> Dict:
    """Drive the server and measure; returns the result dict."""
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
    if concurrency < 1 or requests < 1 or connections < 1:
        raise ValueError("concurrency, requests, connections must be >= 1")
    if mode == "open" and rate <= 0:
        raise ValueError(f"open-loop rate must be positive, got {rate}")

    clients = [
        await connect_with_retry(host, port, connect_timeout)
        for _ in range(connections)
    ]
    latencies: List[float] = []
    errors = 0

    async def _timed(op_fn, client) -> None:
        nonlocal errors
        start = time.perf_counter()
        try:
            await op_fn(client)
        except (ServiceError, ConnectionError, OSError):
            errors += 1
        else:
            latencies.append(time.perf_counter() - start)

    try:
        op_fn = await _build_op(clients, op, message)
        wall_start = time.perf_counter()
        if mode == "closed":
            per_worker = [requests // concurrency] * concurrency
            for i in range(requests % concurrency):
                per_worker[i] += 1

            async def worker(index: int) -> None:
                client = clients[index % len(clients)]
                for _ in range(per_worker[index]):
                    await _timed(op_fn, client)

            await asyncio.gather(*(worker(i) for i in range(concurrency)))
        else:

            async def fire(index: int) -> None:
                await asyncio.sleep(index / rate)
                await _timed(op_fn, clients[index % len(clients)])

            await asyncio.gather(*(fire(i) for i in range(requests)))
        wall = time.perf_counter() - wall_start
    finally:
        for client in clients:
            await client.close()

    completed = len(latencies)
    result: Dict = {
        "op": op,
        "mode": mode,
        "concurrency": concurrency,
        "connections": connections,
        "requests": requests,
        "completed": completed,
        "errors": errors,
        "wall_seconds": wall,
        "ops_per_sec": completed / wall if wall > 0 else 0.0,
        "latency_ms": latency_summary(latencies),
        "latency_hist_ms": histogram_summary(latencies),
    }
    if mode == "open":
        result["offered_rate"] = rate
    return result


def render_result(result: Dict) -> str:
    """Human-readable summary of one :func:`run_load` result."""
    latency = result["latency_ms"]
    lines = [
        f"{result['mode']}-loop {result['op']}: "
        f"{result['completed']}/{result['requests']} ok, "
        f"{result['errors']} errors in {result['wall_seconds']:.2f}s",
        f"  throughput  {result['ops_per_sec']:>10.1f} ops/s"
        + (
            f"  (offered {result['offered_rate']:.1f}/s)"
            if "offered_rate" in result
            else ""
        ),
        f"  latency ms  mean {latency['mean']:.2f}  p50 {latency['p50']:.2f}"
        f"  p90 {latency['p90']:.2f}  p95 {latency['p95']:.2f}"
        f"  p99 {latency['p99']:.2f}  max {latency['max']:.2f}",
        f"  concurrency {result['concurrency']} over "
        f"{result['connections']} connection(s)",
    ]
    histogram = result.get("latency_hist_ms")
    if histogram:
        lines.insert(
            3,
            f"  hist ms     p50 {histogram['p50']:.2f}  "
            f"p95 {histogram['p95']:.2f}  p99 {histogram['p99']:.2f}"
            f"  (bucket-interpolated)",
        )
    return "\n".join(lines)
