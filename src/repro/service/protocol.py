"""Length-prefixed binary framing for the key-transport service.

Every message on the wire is one *frame*::

    +----------------+---------------------------+
    | length  (u32be)| payload (length bytes)    |
    +----------------+---------------------------+

A request payload is ``request_id (u32be) + opcode (u8) + body``; a
response payload is ``request_id (u32be) + status (u8) + body``.  The
request id is chosen by the client and echoed back verbatim, which lets
a client pipeline many requests over one connection and match
out-of-order responses — the property the server's micro-batching
coalescer depends on for its batches.

Bodies reuse the self-describing :mod:`repro.core.serialize` wire
objects (public keys, ciphertexts, encapsulations); the framing layer
itself never inspects them.  All parse failures raise
:exc:`ValueError`, which the server maps to a ``BAD_REQUEST`` response
instead of tearing down the connection.
"""

from __future__ import annotations

import asyncio
import struct
from dataclasses import dataclass
from typing import Optional

#: Upper bound on one public-socket frame; the largest legitimate
#: payload there (a P4 public key response) is under 10 KiB, so 1 MiB
#: leaves headroom while bounding a hostile length prefix.
MAX_FRAME_BYTES = 1 << 20

#: Upper bound on one worker-IPC frame.  The pipe between the server
#: and its pool workers is a trusted channel carrying whole coalesced
#: batches (batch containers of ciphertexts/encapsulations), so the
#: cap only guards against corruption, not hostile peers: 64 MiB fits
#: a 4096-wide window of P4 encapsulations with room to spare.
IPC_MAX_FRAME_BYTES = 64 << 20

# Opcodes ---------------------------------------------------------------
OP_PING = 0
OP_GET_PUBLIC_KEY = 1
OP_ENCRYPT = 2
OP_DECRYPT = 3
OP_ENCAPSULATE = 4
OP_DECAPSULATE = 5
OP_STATS = 6

# Keystore administration (multi-tenant named keys) ---------------------
OP_CREATE_KEY = 16
OP_ROTATE_KEY = 17
OP_RETIRE_KEY = 18
OP_LIST_KEYS = 19
OP_KEY_GET_PUBLIC = 20

#: Key-addressed crypto: the same four operations, with the body
#: prefixed by a *key ref* (:func:`encode_key_ref`) naming which stored
#: key — and which generation of it — the request is pinned to.  The
#: unprefixed opcodes above keep addressing the server's default key
#: bit-identically to their pre-keystore behavior.
OP_KEY_ENCRYPT = 21
OP_KEY_DECRYPT = 22
OP_KEY_ENCAPSULATE = 23
OP_KEY_DECAPSULATE = 24

#: Keyed crypto opcode -> the base (default-key) opcode it wraps.
KEYED_TO_BASE = {
    OP_KEY_ENCRYPT: OP_ENCRYPT,
    OP_KEY_DECRYPT: OP_DECRYPT,
    OP_KEY_ENCAPSULATE: OP_ENCAPSULATE,
    OP_KEY_DECAPSULATE: OP_DECAPSULATE,
}

#: Base crypto opcode -> its key-addressed form.
BASE_TO_KEYED = {base: keyed for keyed, base in KEYED_TO_BASE.items()}

#: Worker-IPC-only opcode: the first frame a pool worker receives,
#: carrying the serialized keypair / seed / backend broadcast.  Never
#: valid on the public socket.
OP_WORKER_CONFIG = 0x40

#: Worker-IPC-only opcode: install (or replace) one named key in the
#: worker's key cache.  The pool executor sends it lazily — on the
#: first keyed batch routed to a shard, or after the shard reports a
#: cache miss — instead of broadcasting every key at startup.
OP_WORKER_SET_KEY = 0x41

#: Worker-IPC-only opcode: install many named keys in one frame.  The
#: fused-window executor uses it to pin every missing key of a flushed
#: cross-key window in a single round trip; the body is an
#: :func:`encode_batch` container of ``OP_WORKER_SET_KEY`` payloads.
OP_WORKER_SET_KEYS = 0x42

OPCODE_NAMES = {
    OP_PING: "ping",
    OP_GET_PUBLIC_KEY: "get_public_key",
    OP_ENCRYPT: "encrypt",
    OP_DECRYPT: "decrypt",
    OP_ENCAPSULATE: "encapsulate",
    OP_DECAPSULATE: "decapsulate",
    OP_STATS: "stats",
    OP_CREATE_KEY: "create_key",
    OP_ROTATE_KEY: "rotate_key",
    OP_RETIRE_KEY: "retire_key",
    OP_LIST_KEYS: "list_keys",
    OP_KEY_GET_PUBLIC: "key_get_public",
    OP_KEY_ENCRYPT: "key_encrypt",
    OP_KEY_DECRYPT: "key_decrypt",
    OP_KEY_ENCAPSULATE: "key_encapsulate",
    OP_KEY_DECAPSULATE: "key_decapsulate",
    OP_WORKER_CONFIG: "worker_config",
    OP_WORKER_SET_KEY: "worker_set_key",
    OP_WORKER_SET_KEYS: "worker_set_keys",
}

# Response statuses -----------------------------------------------------
STATUS_OK = 0
STATUS_BAD_REQUEST = 1
STATUS_DECAPSULATION_FAILED = 2
STATUS_INTERNAL_ERROR = 3
#: The named key does not exist (never created, or retired).
STATUS_KEY_NOT_FOUND = 4
#: The request pinned a generation the key has rotated past.
STATUS_STALE_KEY_GENERATION = 5

STATUS_NAMES = {
    STATUS_OK: "ok",
    STATUS_BAD_REQUEST: "bad_request",
    STATUS_DECAPSULATION_FAILED: "decapsulation_failed",
    STATUS_INTERNAL_ERROR: "internal_error",
    STATUS_KEY_NOT_FOUND: "key_not_found",
    STATUS_STALE_KEY_GENERATION: "stale_key_generation",
}

_LENGTH = struct.Struct("!I")
_ENVELOPE = struct.Struct("!IB")  # request id + opcode/status

#: Request id the server uses to address errors about frames whose own
#: id could not be decoded.  Clients never allocate it.
RESERVED_REQUEST_ID = 0xFFFFFFFF


class ServiceError(Exception):
    """A non-OK service response (or a request the server must reject).

    Carries the wire ``status`` so the server can encode it and the
    client can surface it.
    """

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status

    @property
    def status_name(self) -> str:
        return STATUS_NAMES.get(self.status, f"status-{self.status}")


@dataclass(frozen=True)
class Request:
    request_id: int
    opcode: int
    body: bytes


@dataclass(frozen=True)
class Response:
    request_id: int
    status: int
    body: bytes


def _encode_envelope(
    request_id: int,
    tag: int,
    body: bytes,
    max_frame: int = MAX_FRAME_BYTES,
) -> bytes:
    if not 0 <= request_id < 1 << 32:
        raise ValueError(f"request id {request_id} out of u32 range")
    if not 0 <= tag < 1 << 8:
        raise ValueError(f"opcode/status {tag} out of u8 range")
    payload_len = _ENVELOPE.size + len(body)
    if payload_len > max_frame:
        raise ValueError(
            f"payload of {payload_len} bytes exceeds the "
            f"{max_frame}-byte frame limit"
        )
    return (
        _LENGTH.pack(payload_len)
        + _ENVELOPE.pack(request_id, tag)
        + body
    )


def _decode_envelope(payload: bytes, what: str) -> "tuple[int, int, bytes]":
    if len(payload) < _ENVELOPE.size:
        raise ValueError(
            f"{what} payload of {len(payload)} bytes is shorter than "
            f"the {_ENVELOPE.size}-byte envelope"
        )
    request_id, tag = _ENVELOPE.unpack_from(payload)
    return request_id, tag, payload[_ENVELOPE.size :]


def encode_request(
    request: Request, max_frame: int = MAX_FRAME_BYTES
) -> bytes:
    """One request as a full frame (length prefix included)."""
    return _encode_envelope(
        request.request_id, request.opcode, request.body, max_frame
    )


def decode_request(payload: bytes) -> Request:
    request_id, opcode, body = _decode_envelope(payload, "request")
    return Request(request_id, opcode, body)


def encode_response(
    response: Response, max_frame: int = MAX_FRAME_BYTES
) -> bytes:
    """One response as a full frame (length prefix included)."""
    return _encode_envelope(
        response.request_id, response.status, response.body, max_frame
    )


def decode_response(payload: bytes) -> Response:
    request_id, status, body = _decode_envelope(payload, "response")
    return Response(request_id, status, body)


async def read_frame(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME_BYTES
) -> Optional[bytes]:
    """Read one frame's payload; ``None`` on clean EOF between frames."""
    prefix = await reader.read(_LENGTH.size)
    if not prefix:
        return None
    while len(prefix) < _LENGTH.size:
        more = await reader.read(_LENGTH.size - len(prefix))
        if not more:
            raise ValueError("connection closed mid length prefix")
        prefix += more
    (length,) = _LENGTH.unpack(prefix)
    if length > max_frame:
        raise ValueError(
            f"frame of {length} bytes exceeds the "
            f"{max_frame}-byte limit"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ValueError(
            f"connection closed mid frame ({len(exc.partial)} of "
            f"{length} bytes)"
        ) from None


def write_frame(writer: asyncio.StreamWriter, frame: bytes) -> None:
    """Queue one already-encoded frame; the caller drains."""
    writer.write(frame)


# ----------------------------------------------------------------------
# Key refs (multi-tenant key addressing)
# ----------------------------------------------------------------------
# A *key ref* pins one request to one named key at one generation::
#
#     +-----------+---------------------+------------------+
#     | len (u8)  | name (len bytes)    | generation (u32) |
#     +-----------+---------------------+------------------+
#
# It prefixes the body of every OP_KEY_* request, and addresses worker
# cache installs on the IPC pipe.  Generation GENERATION_CURRENT is the
# "whatever is current" sentinel, accepted only where documented
# (key_get_public); crypto requests must pin a concrete generation so a
# rotation racing the request fails *deterministically* with
# ``stale_key_generation`` instead of silently computing under a key
# the client never saw.

#: Maximum key-name length on the wire (and in the keystore).
MAX_KEY_NAME_BYTES = 64

#: Generation sentinel meaning "resolve to the current generation".
GENERATION_CURRENT = 0xFFFFFFFF

_KEY_NAME_LEN = struct.Struct("!B")
_KEY_GENERATION = struct.Struct("!I")

#: Characters a key name may contain: DNS-label-ish, so names are safe
#: in logs, CLIs, JSON, and filenames without escaping.
_KEY_NAME_ALPHABET = frozenset(
    "abcdefghijklmnopqrstuvwxyz"
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "0123456789._-"
)


def validate_key_name(name: str) -> str:
    """Check one key name; returns it unchanged or raises ValueError.

    The empty string is the *default* key's reserved name — it is never
    valid on the wire (the default key is addressed by the unprefixed
    opcodes), so it is rejected here alongside oversized and
    out-of-alphabet names.
    """
    if not isinstance(name, str):
        raise ValueError(f"key name must be a string, got {type(name).__name__}")
    if not name:
        raise ValueError("key name must not be empty")
    encoded = name.encode("utf-8")
    if len(encoded) > MAX_KEY_NAME_BYTES:
        raise ValueError(
            f"key name of {len(encoded)} bytes exceeds the "
            f"{MAX_KEY_NAME_BYTES}-byte limit"
        )
    bad = set(name) - _KEY_NAME_ALPHABET
    if bad:
        raise ValueError(
            f"key name {name!r} contains invalid character(s) "
            f"{''.join(sorted(bad))!r}; allowed: letters, digits, '.', "
            f"'_', '-'"
        )
    return name


def encode_key_ref(name: str, generation: int) -> bytes:
    """One key ref: ``len(u8) + name + generation(u32)``."""
    validate_key_name(name)
    if not 0 <= generation <= GENERATION_CURRENT:
        raise ValueError(f"generation {generation} out of u32 range")
    encoded = name.encode("utf-8")
    return (
        _KEY_NAME_LEN.pack(len(encoded))
        + encoded
        + _KEY_GENERATION.pack(generation)
    )


def decode_key_ref(data: bytes) -> "tuple[str, int, bytes]":
    """Strict prefix parse: ``(name, generation, remainder)``.

    The remainder is the key-addressed operation's own body; callers
    that expect none must check it is empty.
    """
    if len(data) < _KEY_NAME_LEN.size:
        raise ValueError("key ref is empty")
    (name_len,) = _KEY_NAME_LEN.unpack_from(data)
    cursor = _KEY_NAME_LEN.size
    if len(data) - cursor < name_len:
        raise ValueError(
            f"key ref claims a {name_len}-byte name, "
            f"{len(data) - cursor} bytes remain"
        )
    name_bytes = data[cursor : cursor + name_len]
    cursor += name_len
    try:
        name = name_bytes.decode("utf-8")
    except UnicodeDecodeError:
        raise ValueError("key name is not valid UTF-8") from None
    validate_key_name(name)
    if len(data) - cursor < _KEY_GENERATION.size:
        raise ValueError("key ref truncated before its generation")
    (generation,) = _KEY_GENERATION.unpack_from(data, cursor)
    cursor += _KEY_GENERATION.size
    return name, generation, data[cursor:]


# ----------------------------------------------------------------------
# Batch containers (worker IPC)
# ----------------------------------------------------------------------
# The worker-pool executor ships whole coalesced batches between the
# event-loop process and its workers.  A *batch container* packs many
# bodies into one payload; a *result container* pairs each body with a
# per-item status byte so one failed item never poisons its batch.
# Both follow the serialize-layer contract: strict parsing, exact
# length, ValueError on anything malformed — the IPC pipe carries the
# same hardened encoding as the public socket, never pickle.  Both
# halves of that sentence are machine-checked: WIRE001 audits every
# decode_* function in this module and IPC001 bans pickle/marshal from
# the transport packages (`rlwe-repro lint`, README "Developer
# tooling").

_COUNT = struct.Struct("!I")
_ITEM_LEN = struct.Struct("!I")
_RESULT_HEAD = struct.Struct("!BI")  # status + length


def encode_batch(
    bodies: "Sequence[bytes]", max_frame: int = IPC_MAX_FRAME_BYTES
) -> bytes:
    """Pack request bodies into one batch-container payload."""
    parts = [_COUNT.pack(len(bodies))]
    for body in bodies:
        parts.append(_ITEM_LEN.pack(len(body)))
        parts.append(body)
    payload = b"".join(parts)
    if len(payload) > max_frame - _ENVELOPE.size:
        raise ValueError(
            f"batch container of {len(payload)} bytes exceeds the "
            f"{max_frame}-byte frame limit"
        )
    return payload


def decode_batch(payload: bytes) -> "list[bytes]":
    """Strict inverse of :func:`encode_batch`."""
    if len(payload) < _COUNT.size:
        raise ValueError(
            f"batch container of {len(payload)} bytes is shorter than "
            f"its {_COUNT.size}-byte count"
        )
    (count,) = _COUNT.unpack_from(payload)
    cursor = _COUNT.size
    bodies = []
    for index in range(count):
        if len(payload) - cursor < _ITEM_LEN.size:
            raise ValueError(f"batch container truncated at item {index}")
        (length,) = _ITEM_LEN.unpack_from(payload, cursor)
        cursor += _ITEM_LEN.size
        if len(payload) - cursor < length:
            raise ValueError(
                f"batch item {index} claims {length} bytes, "
                f"{len(payload) - cursor} remain"
            )
        bodies.append(payload[cursor : cursor + length])
        cursor += length
    if cursor != len(payload):
        raise ValueError(
            f"batch container has {len(payload) - cursor} trailing bytes"
        )
    return bodies


def encode_result_batch(
    results: "Sequence[tuple[int, bytes]]",
    max_frame: int = IPC_MAX_FRAME_BYTES,
) -> bytes:
    """Pack per-item ``(status, body)`` results into one payload."""
    parts = [_COUNT.pack(len(results))]
    for status, body in results:
        if not 0 <= status < 1 << 8:
            raise ValueError(f"status {status} out of u8 range")
        parts.append(_RESULT_HEAD.pack(status, len(body)))
        parts.append(body)
    payload = b"".join(parts)
    if len(payload) > max_frame - _ENVELOPE.size:
        raise ValueError(
            f"result container of {len(payload)} bytes exceeds the "
            f"{max_frame}-byte frame limit"
        )
    return payload


def decode_result_batch(payload: bytes) -> "list[tuple[int, bytes]]":
    """Strict inverse of :func:`encode_result_batch`."""
    if len(payload) < _COUNT.size:
        raise ValueError(
            f"result container of {len(payload)} bytes is shorter than "
            f"its {_COUNT.size}-byte count"
        )
    (count,) = _COUNT.unpack_from(payload)
    cursor = _COUNT.size
    results = []
    for index in range(count):
        if len(payload) - cursor < _RESULT_HEAD.size:
            raise ValueError(f"result container truncated at item {index}")
        status, length = _RESULT_HEAD.unpack_from(payload, cursor)
        cursor += _RESULT_HEAD.size
        if len(payload) - cursor < length:
            raise ValueError(
                f"result item {index} claims {length} bytes, "
                f"{len(payload) - cursor} remain"
            )
        results.append((status, payload[cursor : cursor + length]))
        cursor += length
    if cursor != len(payload):
        raise ValueError(
            f"result container has {len(payload) - cursor} trailing bytes"
        )
    return results


# ----------------------------------------------------------------------
# Fused batch containers (cross-key worker IPC)
# ----------------------------------------------------------------------
# A *fused batch* ships one coalesced window whose items are pinned to
# different named keys.  The container carries a small key-ref table (in
# first-seen order), a per-item row index into that table, and the plain
# batch container of bodies::
#
#     +------------------+----------------------------+
#     | ref_count (u32)  | ref_count key refs         |
#     +------------------+----------------------------+
#     | row_count (u32)  | row_count row idx (u32)    |
#     +------------------+----------------------------+
#     | encode_batch(bodies)                          |
#     +-----------------------------------------------+
#
# ``row_count`` must equal the body count, and every row index must be
# < ref_count — a one-ref table with all-zero rows is exactly the old
# single-key keyed batch, just spelled in the fused container.


def encode_fused_batch(
    refs: "Sequence[tuple[str, int]]",
    rows: "Sequence[int]",
    bodies: "Sequence[bytes]",
    max_frame: int = IPC_MAX_FRAME_BYTES,
) -> bytes:
    """Pack one cross-key window: key-ref table + rows + bodies."""
    if len(rows) != len(bodies):
        raise ValueError(
            f"fused batch has {len(rows)} rows for {len(bodies)} bodies"
        )
    if not refs:
        raise ValueError("fused batch needs at least one key ref")
    parts = [_COUNT.pack(len(refs))]
    for name, generation in refs:
        parts.append(encode_key_ref(name, generation))
    parts.append(_COUNT.pack(len(rows)))
    for row in rows:
        if not 0 <= row < len(refs):
            raise ValueError(
                f"fused row {row} out of range for a "
                f"{len(refs)}-ref table"
            )
        parts.append(_COUNT.pack(row))
    parts.append(encode_batch(bodies, max_frame))
    payload = b"".join(parts)
    if len(payload) > max_frame - _ENVELOPE.size:
        raise ValueError(
            f"fused batch of {len(payload)} bytes exceeds the "
            f"{max_frame}-byte frame limit"
        )
    return payload


def decode_fused_batch(
    payload: bytes,
) -> "tuple[list[tuple[str, int]], list[int], list[bytes]]":
    """Strict inverse of :func:`encode_fused_batch`."""
    if len(payload) < _COUNT.size:
        raise ValueError("fused batch is shorter than its ref count")
    (ref_count,) = _COUNT.unpack_from(payload)
    if ref_count == 0:
        raise ValueError("fused batch needs at least one key ref")
    rest = payload[_COUNT.size :]
    refs = []
    for index in range(ref_count):
        try:
            name, generation, rest = decode_key_ref(rest)
        except ValueError as exc:
            raise ValueError(
                f"fused batch key ref {index} is malformed: {exc}"
            ) from None
        refs.append((name, generation))
    if len(rest) < _COUNT.size:
        raise ValueError("fused batch truncated before its row count")
    (row_count,) = _COUNT.unpack_from(rest)
    cursor = _COUNT.size
    if len(rest) - cursor < row_count * _COUNT.size:
        raise ValueError("fused batch truncated inside its row table")
    rows = []
    for index in range(row_count):
        (row,) = _COUNT.unpack_from(rest, cursor)
        cursor += _COUNT.size
        if row >= ref_count:
            raise ValueError(
                f"fused row {row} out of range for a "
                f"{ref_count}-ref table"
            )
        rows.append(row)
    bodies = decode_batch(rest[cursor:])
    if len(bodies) != row_count:
        raise ValueError(
            f"fused batch has {row_count} rows for {len(bodies)} bodies"
        )
    return refs, rows, bodies


# ----------------------------------------------------------------------
# Blocking frame I/O (worker side of the IPC pipe)
# ----------------------------------------------------------------------
def read_frame_blocking(
    stream, max_frame: int = MAX_FRAME_BYTES
) -> Optional[bytes]:
    """Synchronous :func:`read_frame` over a blocking binary stream."""
    prefix = b""
    while len(prefix) < _LENGTH.size:
        chunk = stream.read(_LENGTH.size - len(prefix))
        if not chunk:
            if not prefix:
                return None
            raise ValueError("stream closed mid length prefix")
        prefix += chunk
    (length,) = _LENGTH.unpack(prefix)
    if length > max_frame:
        raise ValueError(
            f"frame of {length} bytes exceeds the "
            f"{max_frame}-byte limit"
        )
    payload = b""
    while len(payload) < length:
        chunk = stream.read(length - len(payload))
        if not chunk:
            raise ValueError(
                f"stream closed mid frame ({len(payload)} of "
                f"{length} bytes)"
            )
        payload += chunk
    return payload


def write_frame_blocking(stream, frame: bytes) -> None:
    """Write one already-encoded frame and flush the stream."""
    stream.write(frame)
    stream.flush()
