"""Length-prefixed binary framing for the key-transport service.

Every message on the wire is one *frame*::

    +----------------+---------------------------+
    | length  (u32be)| payload (length bytes)    |
    +----------------+---------------------------+

A request payload is ``request_id (u32be) + opcode (u8) + body``; a
response payload is ``request_id (u32be) + status (u8) + body``.  The
request id is chosen by the client and echoed back verbatim, which lets
a client pipeline many requests over one connection and match
out-of-order responses — the property the server's micro-batching
coalescer depends on for its batches.

Bodies reuse the self-describing :mod:`repro.core.serialize` wire
objects (public keys, ciphertexts, encapsulations); the framing layer
itself never inspects them.  All parse failures raise
:exc:`ValueError`, which the server maps to a ``BAD_REQUEST`` response
instead of tearing down the connection.
"""

from __future__ import annotations

import asyncio
import struct
from dataclasses import dataclass
from typing import Optional

#: Upper bound on one frame; the largest legitimate payload (a P4
#: public key response) is under 10 KiB, so 1 MiB leaves headroom
#: while bounding a hostile length prefix.
MAX_FRAME_BYTES = 1 << 20

# Opcodes ---------------------------------------------------------------
OP_PING = 0
OP_GET_PUBLIC_KEY = 1
OP_ENCRYPT = 2
OP_DECRYPT = 3
OP_ENCAPSULATE = 4
OP_DECAPSULATE = 5

OPCODE_NAMES = {
    OP_PING: "ping",
    OP_GET_PUBLIC_KEY: "get_public_key",
    OP_ENCRYPT: "encrypt",
    OP_DECRYPT: "decrypt",
    OP_ENCAPSULATE: "encapsulate",
    OP_DECAPSULATE: "decapsulate",
}

# Response statuses -----------------------------------------------------
STATUS_OK = 0
STATUS_BAD_REQUEST = 1
STATUS_DECAPSULATION_FAILED = 2
STATUS_INTERNAL_ERROR = 3

STATUS_NAMES = {
    STATUS_OK: "ok",
    STATUS_BAD_REQUEST: "bad_request",
    STATUS_DECAPSULATION_FAILED: "decapsulation_failed",
    STATUS_INTERNAL_ERROR: "internal_error",
}

_LENGTH = struct.Struct("!I")
_ENVELOPE = struct.Struct("!IB")  # request id + opcode/status

#: Request id the server uses to address errors about frames whose own
#: id could not be decoded.  Clients never allocate it.
RESERVED_REQUEST_ID = 0xFFFFFFFF


class ServiceError(Exception):
    """A non-OK service response (or a request the server must reject).

    Carries the wire ``status`` so the server can encode it and the
    client can surface it.
    """

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status

    @property
    def status_name(self) -> str:
        return STATUS_NAMES.get(self.status, f"status-{self.status}")


@dataclass(frozen=True)
class Request:
    request_id: int
    opcode: int
    body: bytes


@dataclass(frozen=True)
class Response:
    request_id: int
    status: int
    body: bytes


def _encode_envelope(request_id: int, tag: int, body: bytes) -> bytes:
    if not 0 <= request_id < 1 << 32:
        raise ValueError(f"request id {request_id} out of u32 range")
    if not 0 <= tag < 1 << 8:
        raise ValueError(f"opcode/status {tag} out of u8 range")
    payload_len = _ENVELOPE.size + len(body)
    if payload_len > MAX_FRAME_BYTES:
        raise ValueError(
            f"payload of {payload_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return (
        _LENGTH.pack(payload_len)
        + _ENVELOPE.pack(request_id, tag)
        + body
    )


def _decode_envelope(payload: bytes, what: str) -> "tuple[int, int, bytes]":
    if len(payload) < _ENVELOPE.size:
        raise ValueError(
            f"{what} payload of {len(payload)} bytes is shorter than "
            f"the {_ENVELOPE.size}-byte envelope"
        )
    request_id, tag = _ENVELOPE.unpack_from(payload)
    return request_id, tag, payload[_ENVELOPE.size :]


def encode_request(request: Request) -> bytes:
    """One request as a full frame (length prefix included)."""
    return _encode_envelope(request.request_id, request.opcode, request.body)


def decode_request(payload: bytes) -> Request:
    request_id, opcode, body = _decode_envelope(payload, "request")
    return Request(request_id, opcode, body)


def encode_response(response: Response) -> bytes:
    """One response as a full frame (length prefix included)."""
    return _encode_envelope(response.request_id, response.status, response.body)


def decode_response(payload: bytes) -> Response:
    request_id, status, body = _decode_envelope(payload, "response")
    return Response(request_id, status, body)


async def read_frame(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read one frame's payload; ``None`` on clean EOF between frames."""
    prefix = await reader.read(_LENGTH.size)
    if not prefix:
        return None
    while len(prefix) < _LENGTH.size:
        more = await reader.read(_LENGTH.size - len(prefix))
        if not more:
            raise ValueError("connection closed mid length prefix")
        prefix += more
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ValueError(
            f"connection closed mid frame ({len(exc.partial)} of "
            f"{length} bytes)"
        ) from None


def write_frame(writer: asyncio.StreamWriter, frame: bytes) -> None:
    """Queue one already-encoded frame; the caller drains."""
    writer.write(frame)
