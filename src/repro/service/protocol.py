"""Length-prefixed binary framing for the key-transport service.

Every message on the wire is one *frame*::

    +----------------+---------------------------+
    | length  (u32be)| payload (length bytes)    |
    +----------------+---------------------------+

A request payload is ``request_id (u32be) + opcode (u8) + body``; a
response payload is ``request_id (u32be) + status (u8) + body``.  The
request id is chosen by the client and echoed back verbatim, which lets
a client pipeline many requests over one connection and match
out-of-order responses — the property the server's micro-batching
coalescer depends on for its batches.

Bodies reuse the self-describing :mod:`repro.core.serialize` wire
objects (public keys, ciphertexts, encapsulations); the framing layer
itself never inspects them.  All parse failures raise
:exc:`ValueError`, which the server maps to a ``BAD_REQUEST`` response
instead of tearing down the connection.
"""

from __future__ import annotations

import asyncio
import struct
from dataclasses import dataclass
from typing import Optional

#: Upper bound on one public-socket frame; the largest legitimate
#: payload there (a P4 public key response) is under 10 KiB, so 1 MiB
#: leaves headroom while bounding a hostile length prefix.
MAX_FRAME_BYTES = 1 << 20

#: Upper bound on one worker-IPC frame.  The pipe between the server
#: and its pool workers is a trusted channel carrying whole coalesced
#: batches (batch containers of ciphertexts/encapsulations), so the
#: cap only guards against corruption, not hostile peers: 64 MiB fits
#: a 4096-wide window of P4 encapsulations with room to spare.
IPC_MAX_FRAME_BYTES = 64 << 20

# Opcodes ---------------------------------------------------------------
OP_PING = 0
OP_GET_PUBLIC_KEY = 1
OP_ENCRYPT = 2
OP_DECRYPT = 3
OP_ENCAPSULATE = 4
OP_DECAPSULATE = 5
OP_STATS = 6

#: Worker-IPC-only opcode: the first frame a pool worker receives,
#: carrying the serialized keypair / seed / backend broadcast.  Never
#: valid on the public socket.
OP_WORKER_CONFIG = 0x40

OPCODE_NAMES = {
    OP_PING: "ping",
    OP_GET_PUBLIC_KEY: "get_public_key",
    OP_ENCRYPT: "encrypt",
    OP_DECRYPT: "decrypt",
    OP_ENCAPSULATE: "encapsulate",
    OP_DECAPSULATE: "decapsulate",
    OP_STATS: "stats",
    OP_WORKER_CONFIG: "worker_config",
}

# Response statuses -----------------------------------------------------
STATUS_OK = 0
STATUS_BAD_REQUEST = 1
STATUS_DECAPSULATION_FAILED = 2
STATUS_INTERNAL_ERROR = 3

STATUS_NAMES = {
    STATUS_OK: "ok",
    STATUS_BAD_REQUEST: "bad_request",
    STATUS_DECAPSULATION_FAILED: "decapsulation_failed",
    STATUS_INTERNAL_ERROR: "internal_error",
}

_LENGTH = struct.Struct("!I")
_ENVELOPE = struct.Struct("!IB")  # request id + opcode/status

#: Request id the server uses to address errors about frames whose own
#: id could not be decoded.  Clients never allocate it.
RESERVED_REQUEST_ID = 0xFFFFFFFF


class ServiceError(Exception):
    """A non-OK service response (or a request the server must reject).

    Carries the wire ``status`` so the server can encode it and the
    client can surface it.
    """

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status

    @property
    def status_name(self) -> str:
        return STATUS_NAMES.get(self.status, f"status-{self.status}")


@dataclass(frozen=True)
class Request:
    request_id: int
    opcode: int
    body: bytes


@dataclass(frozen=True)
class Response:
    request_id: int
    status: int
    body: bytes


def _encode_envelope(
    request_id: int,
    tag: int,
    body: bytes,
    max_frame: int = MAX_FRAME_BYTES,
) -> bytes:
    if not 0 <= request_id < 1 << 32:
        raise ValueError(f"request id {request_id} out of u32 range")
    if not 0 <= tag < 1 << 8:
        raise ValueError(f"opcode/status {tag} out of u8 range")
    payload_len = _ENVELOPE.size + len(body)
    if payload_len > max_frame:
        raise ValueError(
            f"payload of {payload_len} bytes exceeds the "
            f"{max_frame}-byte frame limit"
        )
    return (
        _LENGTH.pack(payload_len)
        + _ENVELOPE.pack(request_id, tag)
        + body
    )


def _decode_envelope(payload: bytes, what: str) -> "tuple[int, int, bytes]":
    if len(payload) < _ENVELOPE.size:
        raise ValueError(
            f"{what} payload of {len(payload)} bytes is shorter than "
            f"the {_ENVELOPE.size}-byte envelope"
        )
    request_id, tag = _ENVELOPE.unpack_from(payload)
    return request_id, tag, payload[_ENVELOPE.size :]


def encode_request(
    request: Request, max_frame: int = MAX_FRAME_BYTES
) -> bytes:
    """One request as a full frame (length prefix included)."""
    return _encode_envelope(
        request.request_id, request.opcode, request.body, max_frame
    )


def decode_request(payload: bytes) -> Request:
    request_id, opcode, body = _decode_envelope(payload, "request")
    return Request(request_id, opcode, body)


def encode_response(
    response: Response, max_frame: int = MAX_FRAME_BYTES
) -> bytes:
    """One response as a full frame (length prefix included)."""
    return _encode_envelope(
        response.request_id, response.status, response.body, max_frame
    )


def decode_response(payload: bytes) -> Response:
    request_id, status, body = _decode_envelope(payload, "response")
    return Response(request_id, status, body)


async def read_frame(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME_BYTES
) -> Optional[bytes]:
    """Read one frame's payload; ``None`` on clean EOF between frames."""
    prefix = await reader.read(_LENGTH.size)
    if not prefix:
        return None
    while len(prefix) < _LENGTH.size:
        more = await reader.read(_LENGTH.size - len(prefix))
        if not more:
            raise ValueError("connection closed mid length prefix")
        prefix += more
    (length,) = _LENGTH.unpack(prefix)
    if length > max_frame:
        raise ValueError(
            f"frame of {length} bytes exceeds the "
            f"{max_frame}-byte limit"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ValueError(
            f"connection closed mid frame ({len(exc.partial)} of "
            f"{length} bytes)"
        ) from None


def write_frame(writer: asyncio.StreamWriter, frame: bytes) -> None:
    """Queue one already-encoded frame; the caller drains."""
    writer.write(frame)


# ----------------------------------------------------------------------
# Batch containers (worker IPC)
# ----------------------------------------------------------------------
# The worker-pool executor ships whole coalesced batches between the
# event-loop process and its workers.  A *batch container* packs many
# bodies into one payload; a *result container* pairs each body with a
# per-item status byte so one failed item never poisons its batch.
# Both follow the serialize-layer contract: strict parsing, exact
# length, ValueError on anything malformed — the IPC pipe carries the
# same hardened encoding as the public socket, never pickle.

_COUNT = struct.Struct("!I")
_ITEM_LEN = struct.Struct("!I")
_RESULT_HEAD = struct.Struct("!BI")  # status + length


def encode_batch(
    bodies: "Sequence[bytes]", max_frame: int = IPC_MAX_FRAME_BYTES
) -> bytes:
    """Pack request bodies into one batch-container payload."""
    parts = [_COUNT.pack(len(bodies))]
    for body in bodies:
        parts.append(_ITEM_LEN.pack(len(body)))
        parts.append(body)
    payload = b"".join(parts)
    if len(payload) > max_frame - _ENVELOPE.size:
        raise ValueError(
            f"batch container of {len(payload)} bytes exceeds the "
            f"{max_frame}-byte frame limit"
        )
    return payload


def decode_batch(payload: bytes) -> "list[bytes]":
    """Strict inverse of :func:`encode_batch`."""
    if len(payload) < _COUNT.size:
        raise ValueError(
            f"batch container of {len(payload)} bytes is shorter than "
            f"its {_COUNT.size}-byte count"
        )
    (count,) = _COUNT.unpack_from(payload)
    cursor = _COUNT.size
    bodies = []
    for index in range(count):
        if len(payload) - cursor < _ITEM_LEN.size:
            raise ValueError(f"batch container truncated at item {index}")
        (length,) = _ITEM_LEN.unpack_from(payload, cursor)
        cursor += _ITEM_LEN.size
        if len(payload) - cursor < length:
            raise ValueError(
                f"batch item {index} claims {length} bytes, "
                f"{len(payload) - cursor} remain"
            )
        bodies.append(payload[cursor : cursor + length])
        cursor += length
    if cursor != len(payload):
        raise ValueError(
            f"batch container has {len(payload) - cursor} trailing bytes"
        )
    return bodies


def encode_result_batch(
    results: "Sequence[tuple[int, bytes]]",
    max_frame: int = IPC_MAX_FRAME_BYTES,
) -> bytes:
    """Pack per-item ``(status, body)`` results into one payload."""
    parts = [_COUNT.pack(len(results))]
    for status, body in results:
        if not 0 <= status < 1 << 8:
            raise ValueError(f"status {status} out of u8 range")
        parts.append(_RESULT_HEAD.pack(status, len(body)))
        parts.append(body)
    payload = b"".join(parts)
    if len(payload) > max_frame - _ENVELOPE.size:
        raise ValueError(
            f"result container of {len(payload)} bytes exceeds the "
            f"{max_frame}-byte frame limit"
        )
    return payload


def decode_result_batch(payload: bytes) -> "list[tuple[int, bytes]]":
    """Strict inverse of :func:`encode_result_batch`."""
    if len(payload) < _COUNT.size:
        raise ValueError(
            f"result container of {len(payload)} bytes is shorter than "
            f"its {_COUNT.size}-byte count"
        )
    (count,) = _COUNT.unpack_from(payload)
    cursor = _COUNT.size
    results = []
    for index in range(count):
        if len(payload) - cursor < _RESULT_HEAD.size:
            raise ValueError(f"result container truncated at item {index}")
        status, length = _RESULT_HEAD.unpack_from(payload, cursor)
        cursor += _RESULT_HEAD.size
        if len(payload) - cursor < length:
            raise ValueError(
                f"result item {index} claims {length} bytes, "
                f"{len(payload) - cursor} remain"
            )
        results.append((status, payload[cursor : cursor + length]))
        cursor += length
    if cursor != len(payload):
        raise ValueError(
            f"result container has {len(payload) - cursor} trailing bytes"
        )
    return results


# ----------------------------------------------------------------------
# Blocking frame I/O (worker side of the IPC pipe)
# ----------------------------------------------------------------------
def read_frame_blocking(
    stream, max_frame: int = MAX_FRAME_BYTES
) -> Optional[bytes]:
    """Synchronous :func:`read_frame` over a blocking binary stream."""
    prefix = b""
    while len(prefix) < _LENGTH.size:
        chunk = stream.read(_LENGTH.size - len(prefix))
        if not chunk:
            if not prefix:
                return None
            raise ValueError("stream closed mid length prefix")
        prefix += chunk
    (length,) = _LENGTH.unpack(prefix)
    if length > max_frame:
        raise ValueError(
            f"frame of {length} bytes exceeds the "
            f"{max_frame}-byte limit"
        )
    payload = b""
    while len(payload) < length:
        chunk = stream.read(length - len(payload))
        if not chunk:
            raise ValueError(
                f"stream closed mid frame ({len(payload)} of "
                f"{length} bytes)"
            )
        payload += chunk
    return payload


def write_frame_blocking(stream, frame: bytes) -> None:
    """Write one already-encoded frame and flush the stream."""
    stream.write(frame)
    stream.flush()
