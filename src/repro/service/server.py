"""The asyncio key-transport server (``rlwe-repro serve``).

Three layers:

* :class:`RlweService` — transport-agnostic application logic.  It owns
  a keypair and one :class:`~repro.service.coalescer.MicroBatcher` per
  batchable operation, so concurrent requests flush through the PR 1
  batched backend APIs.
* an execution engine (:mod:`repro.service.executor`) — where a flushed
  batch computes: inline on the event loop, or sharded across a pool of
  worker processes that keep the loop free to accept and coalesce.
* :class:`RlweServiceServer` — the socket layer: accepts connections,
  reads frames, and dispatches each request as its own task (responses
  are matched by request id, so pipelined requests on one connection
  coalesce into batches).

Operations
----------
``ping``
    Echo; liveness and framing check.
``get_public_key``
    The server's serialized public key.
``encrypt``
    Body: raw message bytes (up to ``params.message_bytes``).  The
    server encrypts under *its own* public key and returns the
    serialized ciphertext.
``decrypt``
    Body: a serialized ciphertext; returns the full decoded payload
    (clients trim to their expected length).
``encapsulate``
    Empty body.  Returns ``32-byte session key || serialized
    encapsulation``.  This models a key-distribution service handing a
    fresh session key plus the transport blob to a trusted frontend;
    see the README security notes — the CPA scheme itself is not a
    secure channel.
``decapsulate``
    Body: a serialized encapsulation; returns the 32-byte session key
    or a ``decapsulation_failed`` response when the confirmation tag
    rejects it.
``stats``
    Empty body.  Returns the server's live per-op batch/latency and
    per-shard executor counters as a JSON object, so a running server
    is inspectable without restarting it (``rlwe-repro stats``).

Every parse failure of untrusted bytes surfaces as :exc:`ValueError`
from the :mod:`repro.core.serialize` layer and maps to a
``bad_request`` response — the connection survives malformed input.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional

from repro.core.kem import SECRET_BYTES, RlweKem
from repro.core.scheme import KeyPair, RlweEncryptionScheme
from repro.core import serialize
from repro.service import protocol
from repro.service.coalescer import MicroBatcher
from repro.service.executor import (
    Executor,
    InlineExecutor,
    OpRunner,
    require_kem,
)
from repro.service.protocol import (
    OP_DECAPSULATE,
    OP_DECRYPT,
    OP_ENCAPSULATE,
    OP_ENCRYPT,
    OP_GET_PUBLIC_KEY,
    OP_PING,
    OP_STATS,
    STATUS_BAD_REQUEST,
    STATUS_INTERNAL_ERROR,
    STATUS_OK,
    Request,
    Response,
    ServiceError,
)

#: Batchable operations, by wire name, in opcode order.
BATCHED_OPS = {
    "encrypt": OP_ENCRYPT,
    "decrypt": OP_DECRYPT,
    "encapsulate": OP_ENCAPSULATE,
    "decapsulate": OP_DECAPSULATE,
}


class RlweService:
    """Application logic: batched crypto behind per-op coalescers.

    Dispatch validates each untrusted body (cheap header/length peeks),
    the per-op :class:`MicroBatcher` coalesces raw bodies into windows,
    and the execution engine turns each flushed window into response
    bodies.  With ``executor=None`` batches run inline on the event
    loop — bit-identical to the pre-executor server.
    """

    def __init__(
        self,
        scheme: RlweEncryptionScheme,
        keypair: Optional[KeyPair] = None,
        *,
        max_batch: int = 32,
        max_wait: float = 0.002,
        executor: Optional[Executor] = None,
    ):
        self.scheme = scheme
        self.keypair = keypair if keypair is not None else scheme.generate_keypair()
        self.kem = (
            RlweKem(scheme)
            if scheme.params.message_bytes >= SECRET_BYTES
            else None
        )
        #: With ``max_batch=1`` coalescing is off and every request runs
        #: through the scheme's single-message API — the unbatched
        #: baseline a server without a coalescer would be.  Any larger
        #: window flushes through the PR 1 batched engine.
        self.direct_path = max_batch == 1
        if executor is None:
            executor = InlineExecutor(
                OpRunner(scheme, self.keypair, direct=self.direct_path)
            )
        self.executor = executor
        self._public_key_bytes = serialize.serialize_public_key(
            self.keypair.public
        )

        def batcher(opcode: int) -> MicroBatcher:
            async def flush(bodies: List[bytes]):
                return await self.executor.run_batch(opcode, bodies)

            return MicroBatcher(
                flush, max_batch=max_batch, max_wait=max_wait
            )

        self.batchers: Dict[str, MicroBatcher] = {
            name: batcher(opcode) for name, opcode in BATCHED_OPS.items()
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bring the execution engine up (spawns pool workers)."""
        await self.executor.start()

    async def aclose(self) -> None:
        """Flush and drain every batcher, then close the engine."""
        for batcher in self.batchers.values():
            batcher.close()
        for batcher in self.batchers.values():
            await batcher.drain()
        await self.executor.close()

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def _require_kem(self) -> RlweKem:
        return require_kem(self.kem, self.scheme.params)

    async def dispatch(self, opcode: int, body: bytes) -> bytes:
        """Execute one operation body-to-body; raises ServiceError."""
        params = self.scheme.params
        if opcode == OP_PING:
            return body
        if opcode == OP_GET_PUBLIC_KEY:
            return self._public_key_bytes
        if opcode == OP_STATS:
            if body:
                raise ServiceError(
                    STATUS_BAD_REQUEST, "stats takes an empty body"
                )
            return json.dumps(self.stats()).encode()
        if opcode == OP_ENCRYPT:
            if len(body) > params.message_bytes:
                raise ServiceError(
                    STATUS_BAD_REQUEST,
                    f"message of {len(body)} bytes exceeds the "
                    f"{params.message_bytes}-byte capacity of {params.name}",
                )
            return await self.batchers["encrypt"].submit(body)
        if opcode == OP_DECRYPT:
            try:
                ct_params = serialize.peek_ciphertext_params(body)
            except ValueError as exc:
                raise ServiceError(STATUS_BAD_REQUEST, str(exc)) from None
            if ct_params != params:
                raise ServiceError(
                    STATUS_BAD_REQUEST,
                    f"ciphertext is for {ct_params.name}, "
                    f"this server runs {params.name}",
                )
            return await self.batchers["decrypt"].submit(body)
        if opcode == OP_ENCAPSULATE:
            self._require_kem()
            if body:
                raise ServiceError(
                    STATUS_BAD_REQUEST, "encapsulate takes an empty body"
                )
            return await self.batchers["encapsulate"].submit(b"")
        if opcode == OP_DECAPSULATE:
            self._require_kem()
            try:
                cap_params = serialize.peek_encapsulation_params(body)
            except ValueError as exc:
                raise ServiceError(STATUS_BAD_REQUEST, str(exc)) from None
            if cap_params != params:
                raise ServiceError(
                    STATUS_BAD_REQUEST,
                    f"encapsulation is for {cap_params.name}, "
                    f"this server runs {params.name}",
                )
            return await self.batchers["decapsulate"].submit(body)
        raise ServiceError(STATUS_BAD_REQUEST, f"unknown opcode {opcode}")

    async def handle(self, request: Request) -> Response:
        """One request to one response; never raises."""
        try:
            body = await self.dispatch(request.opcode, request.body)
            return Response(request.request_id, STATUS_OK, body)
        except ServiceError as exc:
            return Response(
                request.request_id, exc.status, str(exc).encode()
            )
        except Exception as exc:  # noqa: BLE001 - boundary
            return Response(
                request.request_id,
                STATUS_INTERNAL_ERROR,
                f"{type(exc).__name__}: {exc}".encode(),
            )

    def stats(self) -> Dict:
        """Per-op coalescing counters plus execution-engine counters."""
        return {
            "ops": {
                name: dict(
                    batcher.stats,
                    mean_batch_size=batcher.mean_batch_size,
                    mean_flush_ms=batcher.mean_flush_ms,
                    inflight_flushes=batcher.inflight_flushes,
                )
                for name, batcher in self.batchers.items()
            },
            "executor": self.executor.stats(),
        }


class RlweServiceServer:
    """Socket layer: frames in, per-request tasks, frames out."""

    def __init__(
        self,
        service: RlweService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: "set[asyncio.Task]" = set()
        self.connections_served = 0

    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self._host

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, drain batchers, stop the engine and tasks."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.service.aclose()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)

    async def __aenter__(self) -> "RlweServiceServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_served += 1
        connection_tasks: "set[asyncio.Task]" = set()
        try:
            while True:
                try:
                    payload = await protocol.read_frame(reader)
                except ValueError:
                    # Unframeable garbage: nothing to address a reply
                    # to, so drop the connection.
                    break
                if payload is None:
                    # Clean EOF (the client may have half-closed after
                    # pipelining): finish in-flight requests so their
                    # responses still go out before we close.
                    if connection_tasks:
                        await asyncio.gather(
                            *connection_tasks, return_exceptions=True
                        )
                    break
                try:
                    request = protocol.decode_request(payload)
                except ValueError as exc:
                    protocol.write_frame(
                        writer,
                        protocol.encode_response(
                            Response(
                                protocol.RESERVED_REQUEST_ID,
                                STATUS_BAD_REQUEST,
                                str(exc).encode(),
                            )
                        ),
                    )
                    await writer.drain()
                    continue
                task = asyncio.ensure_future(
                    self._handle_request(request, writer)
                )
                self._tasks.add(task)
                connection_tasks.add(task)
                task.add_done_callback(self._tasks.discard)
                task.add_done_callback(connection_tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            # Close without awaiting wait_closed(): the handler task must
            # finish promptly so loop shutdown never cancels it mid-close.
            writer.close()

    async def _handle_request(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        response = await self.service.handle(request)
        try:
            protocol.write_frame(writer, protocol.encode_response(response))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def start_server(
    scheme: RlweEncryptionScheme,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_batch: int = 32,
    max_wait: float = 0.002,
    keypair: Optional[KeyPair] = None,
    executor: Optional[Executor] = None,
) -> RlweServiceServer:
    """Build and start a server in one call; caller closes it."""
    service = RlweService(
        scheme,
        keypair,
        max_batch=max_batch,
        max_wait=max_wait,
        executor=executor,
    )
    server = RlweServiceServer(service, host=host, port=port)
    await server.start()
    return server
