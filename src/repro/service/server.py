"""The asyncio key-transport server (``rlwe-repro serve``).

Three layers:

* :class:`RlweService` — transport-agnostic application logic.  It owns
  a keypair and one :class:`~repro.service.coalescer.MicroBatcher` per
  batchable operation, so concurrent requests flush through the PR 1
  batched backend APIs.
* an execution engine (:mod:`repro.service.executor`) — where a flushed
  batch computes: inline on the event loop, or sharded across a pool of
  worker processes that keep the loop free to accept and coalesce.
* :class:`RlweServiceServer` — the socket layer: accepts connections,
  reads frames, and dispatches each request as its own task (responses
  are matched by request id, so pipelined requests on one connection
  coalesce into batches).

Operations
----------
``ping``
    Echo; liveness and framing check.
``get_public_key``
    The server's serialized public key.
``encrypt``
    Body: raw message bytes (up to ``params.message_bytes``).  The
    server encrypts under *its own* public key and returns the
    serialized ciphertext.
``decrypt``
    Body: a serialized ciphertext; returns the full decoded payload
    (clients trim to their expected length).
``encapsulate``
    Empty body.  Returns ``32-byte session key || serialized
    encapsulation``.  This models a key-distribution service handing a
    fresh session key plus the transport blob to a trusted frontend;
    see the README security notes — the CPA scheme itself is not a
    secure channel.
``decapsulate``
    Body: a serialized encapsulation; returns the 32-byte session key
    or a ``decapsulation_failed`` response when the confirmation tag
    rejects it.
``stats``
    Empty body.  Returns the server's live per-op batch/latency
    counters (default key under ``ops``, cross-key fusion counters
    under ``fused``, named keys nested per key under ``keys``),
    keystore lifecycle counters, and per-shard executor counters as a
    JSON object, so a running server is inspectable without
    restarting it (``rlwe-repro stats``).

Multi-tenant keys
-----------------
The server owns a :class:`~repro.keystore.KeyStore`: ``create_key`` /
``rotate_key`` / ``retire_key`` / ``list_keys`` manage named keypairs
(bodies are the raw UTF-8 key name; responses are JSON key infos), and
the ``OP_KEY_*`` twins of the four crypto operations address one —
their bodies carry a key ref (name + pinned generation) before the
operation's normal payload, and ``key_get_public`` returns ``current
generation (u32) || serialized public key``.  Requests pinned to a
rotated-past generation fail with ``stale_key_generation``; unknown or
retired names with ``key_not_found``.  Coalescing is *fused*: one
window per operation carries items pinned to different keys, and the
whole window computes as one batched backend call over a small
per-flush key matrix (per-item row gather), so mean batch size stays
at ``max_batch`` no matter how many keys are hot.  A rotation racing a
queued window fails only its stale-tagged rows.  The unprefixed
opcodes keep serving the default key through their own batchers (and
randomness streams), bit-identical to before the keystore existed.

Every parse failure of untrusted bytes surfaces as :exc:`ValueError`
from the :mod:`repro.core.serialize` layer and maps to a
``bad_request`` response — the connection survives malformed input.
"""

from __future__ import annotations

import asyncio
import json
import struct
import time
from typing import Dict, List, Optional

from typing import TYPE_CHECKING

from repro.core.kem import SECRET_BYTES, RlweKem
from repro.core.scheme import KeyPair, RlweEncryptionScheme
from repro.core import serialize
from repro.metrics import ServiceMetrics
from repro.service import protocol

if TYPE_CHECKING:  # runtime import is lazy; keystore imports service
    from repro.keystore import KeyStore
from repro.service.coalescer import FusedBatcherGroup, MicroBatcher
from repro.service.executor import (
    Executor,
    InlineExecutor,
    OpRunner,
    require_kem,
)
from repro.service.protocol import (
    GENERATION_CURRENT,
    KEYED_TO_BASE,
    OP_CREATE_KEY,
    OP_DECAPSULATE,
    OP_DECRYPT,
    OP_ENCAPSULATE,
    OP_ENCRYPT,
    OP_GET_PUBLIC_KEY,
    OP_KEY_GET_PUBLIC,
    OP_LIST_KEYS,
    OP_PING,
    OP_RETIRE_KEY,
    OP_ROTATE_KEY,
    OP_STATS,
    STATUS_BAD_REQUEST,
    STATUS_INTERNAL_ERROR,
    STATUS_OK,
    Request,
    Response,
    ServiceError,
)

#: Batchable operations, by wire name, in opcode order.
BATCHED_OPS = {
    "encrypt": OP_ENCRYPT,
    "decrypt": OP_DECRYPT,
    "encapsulate": OP_ENCAPSULATE,
    "decapsulate": OP_DECAPSULATE,
}

#: Opcode -> wire name for the batchable ops (keyed windows index).
_OP_NAMES = {opcode: name for name, opcode in BATCHED_OPS.items()}

_GENERATION = struct.Struct("!I")


class RlweService:
    """Application logic: batched crypto behind per-op coalescers.

    Dispatch validates each untrusted body (cheap header/length peeks),
    the per-op :class:`MicroBatcher` coalesces raw bodies into windows,
    and the execution engine turns each flushed window into response
    bodies.  With ``executor=None`` batches run inline on the event
    loop — bit-identical to the pre-executor server.
    """

    def __init__(
        self,
        scheme: RlweEncryptionScheme,
        keypair: Optional[KeyPair] = None,
        *,
        max_batch: int = 32,
        max_wait: float = 0.002,
        executor: Optional[Executor] = None,
        keystore: Optional[KeyStore] = None,
        keystore_seed: int = 0,
        hot_keys: int = 8,
        metrics: Optional[ServiceMetrics] = None,
    ):
        self.scheme = scheme
        #: Every layer's instruments funnel into this registry; the
        #: ``/metrics`` listener and the STATS opcode are two views of
        #: it (``stats()['ops']`` is re-derived from the registry).
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.keypair = keypair if keypair is not None else scheme.generate_keypair()
        self.kem = (
            RlweKem(scheme)
            if scheme.params.message_bytes >= SECRET_BYTES
            else None
        )
        #: With ``max_batch=1`` coalescing is off and every request runs
        #: through the scheme's single-message API — the unbatched
        #: baseline a server without a coalescer would be.  Any larger
        #: window flushes through the PR 1 batched engine.
        self.direct_path = max_batch == 1
        if executor is None:
            executor = InlineExecutor(
                OpRunner(scheme, self.keypair, direct=self.direct_path)
            )
        self.executor = executor
        # Named keys derive from keystore_seed (the CLI's --seed), not
        # the serving stream, and building the store draws no
        # randomness — the default key path stays bit-identical to a
        # keystore-free server.
        if keystore is None:
            from repro.keystore import KeyStore

            keystore = KeyStore(
                scheme.params,
                seed=keystore_seed,
                backend=scheme.backend,
                hot_capacity=hot_keys,
                default_keypair=self.keypair,
            )
        self.keystore = keystore
        self._public_key_bytes = serialize.serialize_public_key(
            self.keypair.public
        )

        def batcher(name: str, opcode: int) -> MicroBatcher:
            async def flush(bodies: List[bytes]):
                return await self.executor.run_batch(opcode, bodies)

            return MicroBatcher(
                flush,
                max_batch=max_batch,
                max_wait=max_wait,
                observer=self.metrics.batcher_observer(name),
            )

        self.batchers: Dict[str, MicroBatcher] = {
            name: batcher(name, opcode)
            for name, opcode in BATCHED_OPS.items()
        }

        # Per-key *stat* entries track active keys, not all keys ever
        # served: idle entries LRU out well above the hot-material
        # budget so the stats payload never grows with lifetime tenant
        # count.  The windows themselves are shared per op.
        window_cap = max(self.keystore.hot_capacity * 8, 64)

        def fused_group(name: str, opcode: int) -> FusedBatcherGroup:
            def flush(tags, bodies):
                return self._run_fused(opcode, tags, bodies)

            return FusedBatcherGroup(
                flush,
                max_batch=max_batch,
                max_wait=max_wait,
                max_keys=window_cap,
                observer=self.metrics.fused_observer(name),
            )

        self.key_batchers: Dict[str, FusedBatcherGroup] = {
            name: fused_group(name, opcode)
            for name, opcode in BATCHED_OPS.items()
        }

        # Scrape-time mirrors: the executor, keystore, and (when the
        # compiled backend's stage profiler is enabled) per-stage NTT
        # timings surface through the same registry without hot-path
        # hooks in those layers.
        self.metrics.preregister_ops(tuple(BATCHED_OPS))
        self.metrics.register_executor(self.executor)
        self.metrics.register_keystore(self.keystore)
        self.metrics.register_ntt_backend(scheme.backend)
        from repro import __version__

        self.metrics.register_build_info(
            __version__, scheme.params.name, scheme.backend.name
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bring the execution engine up (spawns pool workers)."""
        await self.executor.start()

    async def aclose(self) -> None:
        """Flush and drain every batcher, then close the engine."""
        for batcher in self.batchers.values():
            batcher.close()
        for group in self.key_batchers.values():
            group.close()
        for batcher in self.batchers.values():
            await batcher.drain()
        for group in self.key_batchers.values():
            await group.drain()
        await self.executor.close()

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def _require_kem(self) -> RlweKem:
        return require_kem(self.kem, self.scheme.params)

    def _validate_encrypt(self, body: bytes) -> bytes:
        params = self.scheme.params
        if len(body) > params.message_bytes:
            raise ServiceError(
                STATUS_BAD_REQUEST,
                f"message of {len(body)} bytes exceeds the "
                f"{params.message_bytes}-byte capacity of {params.name}",
            )
        return body

    def _validate_decrypt(self, body: bytes) -> bytes:
        params = self.scheme.params
        try:
            ct_params = serialize.peek_ciphertext_params(body)
        except ValueError as exc:
            raise ServiceError(STATUS_BAD_REQUEST, str(exc)) from None
        if ct_params != params:
            raise ServiceError(
                STATUS_BAD_REQUEST,
                f"ciphertext is for {ct_params.name}, "
                f"this server runs {params.name}",
            )
        return body

    def _validate_encapsulate(self, body: bytes) -> bytes:
        self._require_kem()
        if body:
            raise ServiceError(
                STATUS_BAD_REQUEST, "encapsulate takes an empty body"
            )
        return b""

    def _validate_decapsulate(self, body: bytes) -> bytes:
        self._require_kem()
        params = self.scheme.params
        try:
            cap_params = serialize.peek_encapsulation_params(body)
        except ValueError as exc:
            raise ServiceError(STATUS_BAD_REQUEST, str(exc)) from None
        if cap_params != params:
            raise ServiceError(
                STATUS_BAD_REQUEST,
                f"encapsulation is for {cap_params.name}, "
                f"this server runs {params.name}",
            )
        return body

    _VALIDATORS = {
        "encrypt": _validate_encrypt,
        "decrypt": _validate_decrypt,
        "encapsulate": _validate_encapsulate,
        "decapsulate": _validate_decapsulate,
    }

    def _decode_key_name(self, body: bytes) -> str:
        """Admin-op bodies are the raw UTF-8 key name."""
        try:
            name = body.decode("utf-8")
        except UnicodeDecodeError:
            raise ServiceError(
                STATUS_BAD_REQUEST, "key name is not valid UTF-8"
            ) from None
        try:
            return protocol.validate_key_name(name)
        except ValueError as exc:
            raise ServiceError(STATUS_BAD_REQUEST, str(exc)) from None

    def _flush_key_windows(self) -> None:
        """Flush every queued fused window now (rotate/retire path).

        Material resolves per row inside the flush, so rows pinned to
        the superseded generation fail with the typed stale/not-found
        error immediately — without waiting out their window timers —
        while every other row of the same window computes normally.
        """
        for group in self.key_batchers.values():
            group.flush_pending()

    async def _run_fused(self, opcode: int, tags, bodies):
        """One flushed cross-key window, end to end.

        Resolves material per distinct ``(name, generation)`` tag (a
        stale or retired tag fails only its own rows), pins the
        resolved keys for the duration of the flush so LRU eviction
        cannot regenerate a key under the running batch, and runs the
        surviving rows as one fused executor batch.
        """
        results: List = [None] * len(bodies)
        materials: Dict = {}
        failures: Dict = {}
        pinned: List[str] = []
        try:
            for tag in tags:
                if tag in materials or tag in failures:
                    continue
                name, generation = tag
                # Pin before materializing: a window wider than the
                # hot LRU would otherwise evict its own freshly
                # materialized entries before they could be pinned.
                self.keystore.pin(name)
                try:
                    material = self.keystore.materialize(name, generation)
                except ServiceError as exc:
                    failures[tag] = exc
                    self.keystore.unpin(name)
                    continue
                materials[tag] = material
                pinned.append(name)
            live = [
                index
                for index, tag in enumerate(tags)
                if tag in materials
            ]
            for index, tag in enumerate(tags):
                if tag in failures:
                    results[index] = failures[tag]
            if live:
                sub_bodies = [bodies[index] for index in live]
                keys_vec = [materials[tags[index]] for index in live]
                try:
                    sub = await self.executor.run_batch(
                        opcode, sub_bodies, keys=keys_vec
                    )
                except ServiceError as exc:
                    sub = [exc] * len(live)
                for index, result in zip(live, sub):
                    results[index] = result
        finally:
            for name in pinned:
                self.keystore.unpin(name)
        return results

    async def _dispatch_keyed(self, opcode: int, body: bytes) -> bytes:
        """One ``OP_KEY_*`` crypto request: key ref + op payload."""
        try:
            name, generation, payload = protocol.decode_key_ref(body)
        except ValueError as exc:
            raise ServiceError(STATUS_BAD_REQUEST, str(exc)) from None
        if generation == GENERATION_CURRENT:
            raise ServiceError(
                STATUS_BAD_REQUEST,
                "key-addressed crypto requests must pin a concrete "
                "generation (fetch one via key_get_public)",
            )
        # Fail unknown/retired/stale before queueing, so a bad ref
        # never occupies a window.
        self.keystore.resolve_generation(name, generation)
        op_name = _OP_NAMES[KEYED_TO_BASE[opcode]]
        payload = self._VALIDATORS[op_name](self, payload)
        queued = time.perf_counter()
        result = await self.key_batchers[op_name].submit(
            name, generation, payload
        )
        self.metrics.observe_keyed_request(
            op_name, name, time.perf_counter() - queued
        )
        return result

    async def dispatch(self, opcode: int, body: bytes) -> bytes:
        """Execute one operation body-to-body; raises ServiceError."""
        if opcode == OP_PING:
            return body
        if opcode == OP_GET_PUBLIC_KEY:
            return self._public_key_bytes
        if opcode == OP_STATS:
            if body:
                raise ServiceError(
                    STATUS_BAD_REQUEST, "stats takes an empty body"
                )
            return json.dumps(self.stats()).encode()
        if opcode == OP_ENCRYPT:
            return await self.batchers["encrypt"].submit(
                self._validate_encrypt(body)
            )
        if opcode == OP_DECRYPT:
            return await self.batchers["decrypt"].submit(
                self._validate_decrypt(body)
            )
        if opcode == OP_ENCAPSULATE:
            return await self.batchers["encapsulate"].submit(
                self._validate_encapsulate(body)
            )
        if opcode == OP_DECAPSULATE:
            return await self.batchers["decapsulate"].submit(
                self._validate_decapsulate(body)
            )
        if opcode == OP_CREATE_KEY:
            info = self.keystore.create(self._decode_key_name(body))
            return json.dumps(info.to_dict()).encode()
        if opcode == OP_ROTATE_KEY:
            info = self.keystore.rotate(self._decode_key_name(body))
            self._flush_key_windows()
            return json.dumps(info.to_dict()).encode()
        if opcode == OP_RETIRE_KEY:
            info = self.keystore.retire(self._decode_key_name(body))
            self._flush_key_windows()
            return json.dumps(info.to_dict()).encode()
        if opcode == OP_LIST_KEYS:
            if body:
                raise ServiceError(
                    STATUS_BAD_REQUEST, "list_keys takes an empty body"
                )
            return json.dumps(
                {"keys": [info.to_dict() for info in self.keystore.list()]}
            ).encode()
        if opcode == OP_KEY_GET_PUBLIC:
            try:
                name, generation, rest = protocol.decode_key_ref(body)
            except ValueError as exc:
                raise ServiceError(STATUS_BAD_REQUEST, str(exc)) from None
            if rest:
                raise ServiceError(
                    STATUS_BAD_REQUEST,
                    f"key_get_public has {len(rest)} trailing bytes",
                )
            material = self.keystore.materialize(name, generation)
            return (
                _GENERATION.pack(material.generation)
                + material.public_bytes
            )
        if opcode in KEYED_TO_BASE:
            return await self._dispatch_keyed(opcode, body)
        raise ServiceError(STATUS_BAD_REQUEST, f"unknown opcode {opcode}")

    async def handle(self, request: Request) -> Response:
        """One request to one response; never raises."""
        started = time.perf_counter()
        try:
            body = await self.dispatch(request.opcode, request.body)
            response = Response(request.request_id, STATUS_OK, body)
        except ServiceError as exc:
            response = Response(
                request.request_id, exc.status, str(exc).encode()
            )
        except Exception as exc:  # lint: disable=EXC001(response boundary: handle() never raises, every failure becomes a status frame)
            response = Response(
                request.request_id,
                STATUS_INTERNAL_ERROR,
                f"{type(exc).__name__}: {exc}".encode(),
            )
        self.metrics.observe_request(
            protocol.OPCODE_NAMES.get(
                request.opcode, f"opcode-{request.opcode}"
            ),
            protocol.STATUS_NAMES.get(
                response.status, f"status-{response.status}"
            ),
            time.perf_counter() - started,
        )
        return response

    def stats(self) -> Dict:
        """Per-op coalescing counters plus engine/keystore counters.

        ``ops`` holds the default key's counters (the pre-keystore
        shape, unchanged); ``fused`` holds each op's cross-key window
        counters (``windows``, ``fused_rows``, ``keys_per_window``,
        ``mean_rows_per_window``); ``keys`` nests per-key counters
        (items/windows/generation) under each recently active named
        key; ``keystore`` reports lifecycle and hot-cache counters.
        """
        keys: Dict[str, Dict[str, Dict]] = {}
        for op_name, group in self.key_batchers.items():
            for key_name, counters in group.stats_by_key().items():
                keys.setdefault(key_name, {})[op_name] = counters
        # ``ops`` is *derived from the metrics registry*, not read from
        # the batchers — the registry is the single source of truth and
        # this wire view is pinned byte-stable against the old
        # batcher-dict shape (tests diff the JSON against counters the
        # batchers still keep for standalone use).
        return {
            "ops": self.metrics.ops_stats(tuple(self.batchers)),
            "fused": {
                name: group.stats_fused()
                for name, group in self.key_batchers.items()
            },
            "keys": keys,
            "keystore": self.keystore.stats(),
            "executor": self.executor.stats(),
        }


class RlweServiceServer:
    """Socket layer: frames in, per-request tasks, frames out."""

    def __init__(
        self,
        service: RlweService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: "set[asyncio.Task]" = set()
        self.connections_served = 0

    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self._host

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, drain batchers, stop the engine and tasks."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.service.aclose()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)

    async def __aenter__(self) -> "RlweServiceServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_served += 1
        connection_tasks: "set[asyncio.Task]" = set()
        try:
            while True:
                try:
                    payload = await protocol.read_frame(reader)
                except ValueError:
                    # Unframeable garbage: nothing to address a reply
                    # to, so drop the connection.
                    break
                if payload is None:
                    # Clean EOF (the client may have half-closed after
                    # pipelining): finish in-flight requests so their
                    # responses still go out before we close.
                    if connection_tasks:
                        await asyncio.gather(
                            *connection_tasks, return_exceptions=True
                        )
                    break
                try:
                    request = protocol.decode_request(payload)
                except ValueError as exc:
                    protocol.write_frame(
                        writer,
                        protocol.encode_response(
                            Response(
                                protocol.RESERVED_REQUEST_ID,
                                STATUS_BAD_REQUEST,
                                str(exc).encode(),
                            )
                        ),
                    )
                    await writer.drain()
                    continue
                task = asyncio.ensure_future(
                    self._handle_request(request, writer)
                )
                self._tasks.add(task)
                connection_tasks.add(task)
                task.add_done_callback(self._tasks.discard)
                task.add_done_callback(connection_tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            # Close without awaiting wait_closed(): the handler task must
            # finish promptly so loop shutdown never cancels it mid-close.
            writer.close()

    async def _handle_request(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        response = await self.service.handle(request)
        try:
            protocol.write_frame(writer, protocol.encode_response(response))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def start_server(
    scheme: RlweEncryptionScheme,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_batch: int = 32,
    max_wait: float = 0.002,
    keypair: Optional[KeyPair] = None,
    executor: Optional[Executor] = None,
    keystore: Optional[KeyStore] = None,
    keystore_seed: int = 0,
    hot_keys: int = 8,
    metrics: Optional[ServiceMetrics] = None,
) -> RlweServiceServer:
    """Build and start a server in one call; caller closes it."""
    service = RlweService(
        scheme,
        keypair,
        max_batch=max_batch,
        max_wait=max_wait,
        executor=executor,
        keystore=keystore,
        keystore_seed=keystore_seed,
        hot_keys=hot_keys,
        metrics=metrics,
    )
    server = RlweServiceServer(service, host=host, port=port)
    await server.start()
    return server
