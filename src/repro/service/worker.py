"""Worker-process entry point for the pool executor.

``python -m repro.service.worker`` speaks the service wire protocol
over stdin/stdout: length-prefixed frames whose bodies are
:func:`~repro.service.protocol.encode_batch` containers.  The first
frame must be an ``OP_WORKER_CONFIG`` request carrying the serialized
keypair / seed / backend broadcast
(:func:`~repro.service.executor.decode_worker_config`); every later
frame is one coalesced batch, answered with an
:func:`~repro.service.protocol.encode_result_batch` container of
per-item ``(status, body)`` results.  No pickle ever crosses the pipe.

The worker builds its own scheme + backend instance from the config, so
each shard carries warm precomputed NTT/sampler tables and its own
deterministic randomness stream — the natural home for future
per-shard parameter-set multiplexing.

A clean EOF on stdin is the shutdown signal (the parent closes our pipe
on executor close); the worker drains nothing and exits 0.  ``OP_PING``
batches echo their bodies — the shard health check.  Only when the
``REPRO_WORKER_FAULT_HOOKS=1`` environment variable is set does a ping
body of the form ``sleep:<seconds>`` additionally block the worker for
that long first: the fault-injection hook the graceful-degradation
tests use, inert in production.
"""

from __future__ import annotations

import os
import sys
import time

from repro.core.scheme import RlweEncryptionScheme
from repro.service import protocol
from repro.service.executor import OpRunner, decode_worker_config
from repro.service.protocol import (
    OP_PING,
    OP_WORKER_CONFIG,
    STATUS_BAD_REQUEST,
    STATUS_INTERNAL_ERROR,
    STATUS_OK,
    Response,
)
from repro.trng.bitsource import PrngBitSource
from repro.trng.xorshift import Xorshift128


def _runner_from_config(payload: bytes) -> "tuple[OpRunner, str]":
    config = decode_worker_config(payload)
    keypair = config["keypair"]
    scheme = RlweEncryptionScheme(
        keypair.public.params,
        bits=PrngBitSource(Xorshift128(config["seed"])),
        backend=config["backend"],
    )
    runner = OpRunner(scheme, keypair, direct=config["direct"])
    return runner, scheme.backend.name


_FAULT_HOOKS = os.environ.get("REPRO_WORKER_FAULT_HOOKS") == "1"


def _ping_item(body: bytes) -> bytes:
    if _FAULT_HOOKS and body.startswith(b"sleep:"):
        time.sleep(float(body[len(b"sleep:") :]))
    return body


def run_worker(stdin, stdout) -> int:
    """Serve batches until EOF; returns the process exit code."""
    payload = protocol.read_frame_blocking(
        stdin, protocol.IPC_MAX_FRAME_BYTES
    )
    if payload is None:
        return 0
    request = protocol.decode_request(payload)
    if request.opcode != OP_WORKER_CONFIG:
        protocol.write_frame_blocking(
            stdout,
            protocol.encode_response(
                Response(
                    request.request_id,
                    STATUS_BAD_REQUEST,
                    b"first frame must be a worker config",
                )
            ),
        )
        return 1
    try:
        runner, backend_name = _runner_from_config(request.body)
    except (ValueError, KeyError) as exc:
        protocol.write_frame_blocking(
            stdout,
            protocol.encode_response(
                Response(
                    request.request_id,
                    STATUS_BAD_REQUEST,
                    str(exc).encode(),
                )
            ),
        )
        return 1
    protocol.write_frame_blocking(
        stdout,
        protocol.encode_response(
            Response(request.request_id, STATUS_OK, backend_name.encode())
        ),
    )

    while True:
        payload = protocol.read_frame_blocking(
            stdin, protocol.IPC_MAX_FRAME_BYTES
        )
        if payload is None:
            return 0
        # Batch boundary: one corrupt frame answers with an error (on
        # the reserved id when its own id is unrecoverable) instead of
        # crashing the shard.
        request_id = protocol.RESERVED_REQUEST_ID
        try:
            request = protocol.decode_request(payload)
            request_id = request.request_id
            bodies = protocol.decode_batch(request.body)
            if request.opcode == OP_PING:
                results = [(STATUS_OK, _ping_item(body)) for body in bodies]
            else:
                results = runner.run(request.opcode, bodies)
            body = protocol.encode_result_batch(results)
            status = STATUS_OK
        except Exception as exc:  # noqa: BLE001 - batch boundary
            body = f"{type(exc).__name__}: {exc}".encode()
            status = STATUS_INTERNAL_ERROR
        protocol.write_frame_blocking(
            stdout,
            protocol.encode_response(
                Response(request_id, status, body),
                protocol.IPC_MAX_FRAME_BYTES,
            ),
        )


def main() -> int:
    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    # Stray prints (ours or a dependency's) must never corrupt the
    # framed stdout stream.
    sys.stdout = sys.stderr
    return run_worker(stdin, stdout)


if __name__ == "__main__":
    sys.exit(main())
