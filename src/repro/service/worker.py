"""Worker-process entry point for the pool executor.

``python -m repro.service.worker`` speaks the service wire protocol
over stdin/stdout: length-prefixed frames whose bodies are
:func:`~repro.service.protocol.encode_batch` containers.  The first
frame must be an ``OP_WORKER_CONFIG`` request carrying the serialized
keypair / seed / backend broadcast
(:func:`~repro.service.executor.decode_worker_config`); every later
frame is one coalesced batch, answered with an
:func:`~repro.service.protocol.encode_result_batch` container of
per-item ``(status, body)`` results.  No pickle ever crosses the pipe.

The worker builds its own scheme + backend instance from the config, so
each shard carries warm precomputed NTT/sampler tables and its own
deterministic randomness stream — the natural home for future
per-shard parameter-set multiplexing.

Named keys (the multi-tenant keystore) reach the shard lazily: the
startup config carries only the *default* keypair, and
``OP_WORKER_SET_KEY`` / ``OP_WORKER_SET_KEYS`` frames install named
keys into a bounded shard-local LRU as traffic for them arrives.  A
key-addressed batch (``OP_KEY_*``: a *fused batch* container — a key
ref table, per-item row indices, and the bodies) may mix items under
different keys; any refs the shard has not pinned — never installed,
LRU-evicted, or wiped by a respawn — answer ``key_not_found`` with the
exact missing refs in the body, which the parent executor treats as a
cache miss: it reinstalls those keys in one round trip and retries, so
rotated keys propagate on demand instead of by broadcast.

A clean EOF on stdin is the shutdown signal (the parent closes our pipe
on executor close); the worker drains nothing and exits 0.  ``OP_PING``
batches echo their bodies — the shard health check.  Only when the
``REPRO_WORKER_FAULT_HOOKS=1`` environment variable is set does a ping
body of the form ``sleep:<seconds>`` additionally block the worker for
that long first (and one of the form ``drop-key:<name>`` evict that
key from the shard cache): the fault-injection hooks the
graceful-degradation and cache-miss-refetch tests use, inert in
production.
"""

from __future__ import annotations

import os
import sys
import time
from collections import OrderedDict

from repro.core.scheme import KeyPair, RlweEncryptionScheme
from repro.service import protocol
from repro.service.executor import (
    OpRunner,
    decode_worker_config,
    decode_worker_key,
)
from repro.service.protocol import (
    KEYED_TO_BASE,
    OP_PING,
    OP_WORKER_CONFIG,
    OP_WORKER_SET_KEY,
    OP_WORKER_SET_KEYS,
    STATUS_BAD_REQUEST,
    STATUS_INTERNAL_ERROR,
    STATUS_KEY_NOT_FOUND,
    STATUS_OK,
    Response,
)
from repro.trng.bitsource import PrngBitSource
from repro.trng.xorshift import Xorshift128

#: Named keys one shard keeps materialized; least recently used beyond
#: this are dropped and refetched from the parent on the next batch.
#: Sized so one fused window's whole key table (at most ``max_batch``
#: distinct refs, in practice far fewer) fits without self-eviction.
WORKER_KEY_CACHE_CAPACITY = 128


def _runner_from_config(payload: bytes) -> "tuple[OpRunner, str]":
    config = decode_worker_config(payload)
    keypair = config["keypair"]
    scheme = RlweEncryptionScheme(
        keypair.public.params,
        bits=PrngBitSource(Xorshift128(config["seed"])),
        backend=config["backend"],
    )
    runner = OpRunner(scheme, keypair, direct=config["direct"])
    return runner, scheme.backend.name


_FAULT_HOOKS = os.environ.get("REPRO_WORKER_FAULT_HOOKS") == "1"


class _KeyCache:
    """The shard-local LRU of installed named keys."""

    def __init__(self, capacity: int = WORKER_KEY_CACHE_CAPACITY):
        self.capacity = capacity
        self._keys: "OrderedDict[str, tuple[int, KeyPair]]" = OrderedDict()

    def install(self, name: str, generation: int, pair: KeyPair) -> None:
        self._keys[name] = (generation, pair)
        self._keys.move_to_end(name)
        while len(self._keys) > self.capacity:
            self._keys.popitem(last=False)

    def lookup(self, name: str, generation: int) -> "KeyPair | None":
        entry = self._keys.get(name)
        if entry is None or entry[0] != generation:
            return None
        self._keys.move_to_end(name)
        return entry[1]

    def drop(self, name: str) -> None:
        self._keys.pop(name, None)


def _ping_item(body: bytes, keys: _KeyCache) -> bytes:
    if _FAULT_HOOKS and body.startswith(b"sleep:"):
        time.sleep(float(body[len(b"sleep:") :]))
    if _FAULT_HOOKS and body.startswith(b"drop-key:"):
        keys.drop(body[len(b"drop-key:") :].decode(errors="replace"))
    return body


def run_worker(stdin, stdout) -> int:
    """Serve batches until EOF; returns the process exit code."""
    payload = protocol.read_frame_blocking(
        stdin, protocol.IPC_MAX_FRAME_BYTES
    )
    if payload is None:
        return 0
    request = protocol.decode_request(payload)
    if request.opcode != OP_WORKER_CONFIG:
        protocol.write_frame_blocking(
            stdout,
            protocol.encode_response(
                Response(
                    request.request_id,
                    STATUS_BAD_REQUEST,
                    b"first frame must be a worker config",
                )
            ),
        )
        return 1
    try:
        runner, backend_name = _runner_from_config(request.body)
    except (ValueError, KeyError) as exc:
        protocol.write_frame_blocking(
            stdout,
            protocol.encode_response(
                Response(
                    request.request_id,
                    STATUS_BAD_REQUEST,
                    str(exc).encode(),
                )
            ),
        )
        return 1
    protocol.write_frame_blocking(
        stdout,
        protocol.encode_response(
            Response(request.request_id, STATUS_OK, backend_name.encode())
        ),
    )

    keys = _KeyCache()
    while True:
        payload = protocol.read_frame_blocking(
            stdin, protocol.IPC_MAX_FRAME_BYTES
        )
        if payload is None:
            return 0
        # Batch boundary: one corrupt frame answers with an error (on
        # the reserved id when its own id is unrecoverable) instead of
        # crashing the shard.
        request_id = protocol.RESERVED_REQUEST_ID
        try:
            request = protocol.decode_request(payload)
            request_id = request.request_id
            if request.opcode == OP_WORKER_SET_KEY:
                name, generation, pair = decode_worker_key(request.body)
                keys.install(name, generation, pair)
                body = b""
                status = STATUS_OK
            elif request.opcode == OP_WORKER_SET_KEYS:
                for item in protocol.decode_batch(request.body):
                    name, generation, pair = decode_worker_key(item)
                    keys.install(name, generation, pair)
                body = b""
                status = STATUS_OK
            elif request.opcode in KEYED_TO_BASE:
                refs, rows, bodies = protocol.decode_fused_batch(
                    request.body
                )
                table = []
                missing = []
                for name, generation in refs:
                    pair = keys.lookup(name, generation)
                    if pair is None:
                        missing.append((name, generation))
                    table.append(pair)
                if missing:
                    # The parent reinstalls the reported misses and
                    # retries on this status — the worker never sees
                    # the keystore, only its own cache.  The body is a
                    # batch container of the exact missing refs, so
                    # one refetch round trip covers the whole window.
                    body = protocol.encode_batch(
                        [
                            protocol.encode_key_ref(name, generation)
                            for name, generation in missing
                        ]
                    )
                    status = STATUS_KEY_NOT_FOUND
                else:
                    results = runner.run(
                        KEYED_TO_BASE[request.opcode],
                        bodies,
                        keypairs=[table[row] for row in rows],
                    )
                    body = protocol.encode_result_batch(results)
                    status = STATUS_OK
            else:
                bodies = protocol.decode_batch(request.body)
                if request.opcode == OP_PING:
                    results = [
                        (STATUS_OK, _ping_item(body, keys))
                        for body in bodies
                    ]
                else:
                    results = runner.run(request.opcode, bodies)
                body = protocol.encode_result_batch(results)
                status = STATUS_OK
        except Exception as exc:  # lint: disable=EXC001(batch boundary: any per-batch failure becomes an INTERNAL_ERROR response, the pipe stays up)
            body = f"{type(exc).__name__}: {exc}".encode()
            status = STATUS_INTERNAL_ERROR
        protocol.write_frame_blocking(
            stdout,
            protocol.encode_response(
                Response(request_id, status, body),
                protocol.IPC_MAX_FRAME_BYTES,
            ),
        )


def main() -> int:
    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    # Stray prints (ours or a dependency's) must never corrupt the
    # framed stdout stream.
    sys.stdout = sys.stderr
    return run_worker(stdin, stdout)


if __name__ == "__main__":
    sys.exit(main())
