"""Micro-batching request coalescer.

The PR 1 batched backend APIs (``encrypt_polynomial_batch``,
``encapsulate_many``) reach ~14x the single-message throughput at batch
64, but a server sees *single* requests.  :class:`MicroBatcher` bridges
the two: concurrent ``submit`` calls queue into a window and flush
through one batched backend call when either

* the window holds ``max_batch`` items, or
* ``max_wait`` seconds have passed since the first queued item —

the classic inference-server trade of a bounded per-request latency
penalty for batched throughput.  With ``max_batch=1`` every request
flushes immediately, which is the unbatched baseline the benchmarks
compare against.

Where a flushed batch *runs* is the execution engine's business
(:mod:`repro.service.executor`), not the coalescer's.  A synchronous
flush function computes on the event loop — the
:class:`~repro.service.executor.InlineExecutor` model, right for a
single-process server where the crypto is GIL-bound anyway.  A flush
function that returns an awaitable hands the batch to an engine that
completes it elsewhere — the
:class:`~repro.service.executor.WorkerPoolExecutor` model, where whole
batches ship to worker processes and *overlapping windows stay in
flight concurrently*: while one batch computes on a worker, the event
loop keeps accepting, coalescing, and dispatching the next window to
another worker.  Either way, new arrivals queue for the next window
while a batch computes — which is exactly what keeps subsequent
batches full under load.
"""

from __future__ import annotations

import asyncio
import inspect
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Sequence, Tuple

_Window = List[Tuple[Any, asyncio.Future]]

__all__ = ["MicroBatcher", "FusedBatcherGroup"]


class MicroBatcher:
    """Coalesce concurrent awaited items into batched flush calls.

    Parameters
    ----------
    flush:
        ``flush(items) -> results`` or ``flush(items) -> awaitable of
        results``, one result per item, in order.  A result that is an
        :class:`Exception` instance is raised to that item's waiter
        only; if ``flush`` itself raises (or the awaitable does), every
        waiter in that batch gets the exception.  An awaitable flush
        does not block the window: further batches flush while earlier
        ones are still in flight.
    max_batch:
        Flush as soon as the window holds this many items (>= 1).
    max_wait:
        Flush a partial window this many seconds after its first item
        arrived.  ``0`` still yields to the event loop once, so
        already-concurrent requests coalesce.
    observer:
        Optional metrics hook (duck-typed like
        :class:`repro.metrics.BatcherObserver`):
        ``window_flushed(rows)`` as a window leaves the queue,
        ``flush_finished(rows, seconds)`` when its flush completes
        (sync or async; ``seconds`` is the exact value added to
        ``stats["flush_seconds"]``, so a registry-derived view stays
        bit-identical to these counters), and
        ``inflight_changed(current)`` when the number of in-flight
        async flushes moves.  ``None`` keeps the batcher
        metrics-free.
    """

    def __init__(
        self,
        flush: Callable[[List[Any]], Sequence[Any]],
        *,
        max_batch: int = 32,
        max_wait: float = 0.002,
        observer=None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self._flush = flush
        self._observer = observer
        self.max_batch = max_batch
        self.max_wait = max_wait
        self._window: _Window = []
        self._timer: "asyncio.TimerHandle | None" = None
        self._inflight: "set[asyncio.Task]" = set()
        #: Cumulative counters for benchmarks and the server's stats op.
        self.stats: Dict[str, float] = {
            "items": 0,
            "flushes": 0,
            "max_batch_seen": 0,
            "flush_seconds": 0.0,
            "inflight_max": 0,
        }

    async def submit(self, item: Any) -> Any:
        """Queue ``item`` and await its result from a batched flush."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._window.append((item, future))
        if len(self._window) >= self.max_batch:
            self.flush_pending()
        elif self._timer is None:
            self._timer = loop.call_later(self.max_wait, self.flush_pending)
        return await future

    def flush_pending(self) -> None:
        """Flush the current window immediately (idempotent when empty)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._window:
            return
        window, self._window = self._window, []
        items = [item for item, _ in window]
        self.stats["items"] += len(items)
        self.stats["flushes"] += 1
        self.stats["max_batch_seen"] = max(
            self.stats["max_batch_seen"], len(items)
        )
        if self._observer is not None:
            self._observer.window_flushed(len(items))
        started = time.perf_counter()
        try:
            outcome = self._flush(items)
        except Exception as exc:  # lint: disable=EXC001(flush boundary: any compute failure must fan out to every waiter's future)
            self._account_flush(len(items), time.perf_counter() - started)
            self._fail(window, exc)
            return
        if inspect.isawaitable(outcome):
            task = asyncio.ensure_future(
                self._finish_async(window, outcome, started)
            )
            self._inflight.add(task)
            task.add_done_callback(self._on_inflight_done)
            self.stats["inflight_max"] = max(
                self.stats["inflight_max"], len(self._inflight)
            )
            if self._observer is not None:
                self._observer.inflight_changed(len(self._inflight))
        else:
            self._account_flush(len(items), time.perf_counter() - started)
            self._deliver(window, outcome)

    def _account_flush(self, rows: int, elapsed: float) -> None:
        """Add one flush's wall time to the counters and the observer.

        One ``perf_counter`` delta feeds both sinks, so a metrics
        histogram's ``_sum`` accumulates the exact floats
        ``stats["flush_seconds"]`` does — the byte-stability the
        registry-derived ``stats()`` view pins.
        """
        self.stats["flush_seconds"] += elapsed
        if self._observer is not None:
            self._observer.flush_finished(rows, elapsed)

    def _on_inflight_done(self, task: "asyncio.Task") -> None:
        self._inflight.discard(task)
        if self._observer is not None:
            self._observer.inflight_changed(len(self._inflight))

    async def _finish_async(
        self, window: _Window, outcome, started: float
    ) -> None:
        try:
            results = await outcome
        except Exception as exc:  # lint: disable=EXC001(flush boundary: any compute failure must fan out to every waiter's future)
            self._fail(window, exc)
            return
        finally:
            self._account_flush(
                len(window), time.perf_counter() - started
            )
        self._deliver(window, results)

    def _fail(self, window: _Window, exc: Exception) -> None:
        for _, future in window:
            if not future.done():
                future.set_exception(exc)

    def _deliver(self, window: _Window, results: Sequence[Any]) -> None:
        if len(results) != len(window):
            self._fail(
                window,
                RuntimeError(
                    f"flush returned {len(results)} results for "
                    f"{len(window)} items"
                ),
            )
            return
        for (_, future), result in zip(window, results):
            if future.done():
                continue
            if isinstance(result, Exception):
                future.set_exception(result)
            else:
                future.set_result(result)

    @property
    def mean_batch_size(self) -> float:
        """Average items per flush so far (0.0 before any flush)."""
        flushes = self.stats["flushes"]
        return self.stats["items"] / flushes if flushes else 0.0

    @property
    def mean_flush_ms(self) -> float:
        """Average submit-to-completion milliseconds per flush."""
        flushes = self.stats["flushes"]
        return (
            self.stats["flush_seconds"] / flushes * 1e3 if flushes else 0.0
        )

    @property
    def inflight_flushes(self) -> int:
        """Async flushes currently awaiting completion."""
        return len(self._inflight)

    async def drain(self) -> None:
        """Wait until every in-flight async flush has completed."""
        while self._inflight:
            await asyncio.gather(
                *list(self._inflight), return_exceptions=True
            )

    def close(self) -> None:
        """Cancel the pending timer and flush any queued items.

        Async flushes started here keep running; awaiting
        :meth:`drain` afterwards guarantees every waiter is resolved.
        """
        self.flush_pending()


class FusedBatcherGroup:
    """One *fused* :class:`MicroBatcher` per operation, across all keys.

    The multi-tenant server batches across keys: one flushed window
    mixes items pinned to different ``(name, generation)`` tags, and
    the whole window maps onto one batched backend call whose key
    operand is a small per-flush key matrix with per-item row indices
    (:meth:`repro.backend.base.PolyBackend.pointwise_mul_rows`).  Mean
    batch size therefore stays at ``max_batch`` no matter how many keys
    are hot — the per-(key, op) window fragmentation this design
    replaces collapsed to ``max_batch / hot_keys``.

    Rotation semantics are per *row*, not per window: a rotation only
    fails the stale-tagged rows of an in-flight window (they fail at
    material resolution inside the flush), never the window itself.

    Parameters
    ----------
    flush:
        ``flush(tags, bodies) -> results`` or an awaitable of results —
        one result per body, in order, where ``tags[i]`` is item ``i``'s
        ``(name, generation)`` pin.  Same exception contract as
        :class:`MicroBatcher`'s ``flush``.
    max_batch / max_wait:
        Window shape of the underlying :class:`MicroBatcher`.
    max_keys:
        Upper bound on per-key *stat* entries (>= 1).  The window
        itself is shared, so idle keys cost nothing at all; this only
        bounds the ``stats`` response, evicting the least recently
        active name's counters.
    observer:
        Optional metrics hook (duck-typed like
        :class:`repro.metrics.FusedObserver`):
        ``window_flushed(rows_by_key)`` per flushed window, where
        ``rows_by_key`` maps each distinct key name in the window to
        its row count.  Independent of the underlying batcher's own
        observer, which this class does not set.
    """

    def __init__(
        self,
        flush: Callable[[List[Tuple[str, int]], List[Any]], Any],
        *,
        max_batch: int = 32,
        max_wait: float = 0.002,
        max_keys: int = 1024,
        observer=None,
    ):
        if max_keys < 1:
            raise ValueError(f"max_keys must be >= 1, got {max_keys}")
        self._flush = flush
        self._observer = observer
        self.max_keys = max_keys
        self._batcher = MicroBatcher(
            self._flush_window, max_batch=max_batch, max_wait=max_wait
        )
        self._per_key: "OrderedDict[str, Dict[str, float]]" = OrderedDict()
        #: Fusion counters: windows flushed, rows carried, cumulative
        #: distinct keys per window (for the keys_per_window mean), and
        #: the widest key table any single window has carried.
        self.fused_stats: Dict[str, float] = {
            "windows": 0,
            "fused_rows": 0,
            "keys_seen": 0,
            "max_keys_in_window": 0,
        }

    @property
    def max_batch(self) -> int:
        return self._batcher.max_batch

    @property
    def max_wait(self) -> float:
        return self._batcher.max_wait

    async def submit(self, name: str, generation: int, body: Any) -> Any:
        """Queue one ``(name, generation)``-tagged item into the window."""
        return await self._batcher.submit(((name, generation), body))

    def _flush_window(self, items: List[Any]):
        tags = [tag for tag, _ in items]
        bodies = [body for _, body in items]
        names: "OrderedDict[str, int]" = OrderedDict()
        for name, generation in tags:
            names[name] = generation
            entry = self._per_key.get(name)
            if entry is None:
                entry = {
                    "items": 0,
                    "windows": 0,
                    "generation": generation,
                }
                self._per_key[name] = entry
                while len(self._per_key) > self.max_keys:
                    self._per_key.popitem(last=False)
            self._per_key.move_to_end(name)
            entry["items"] += 1
            entry["generation"] = generation
        for name in names:
            entry = self._per_key.get(name)
            if entry is not None:
                entry["windows"] += 1
        self.fused_stats["windows"] += 1
        self.fused_stats["fused_rows"] += len(items)
        self.fused_stats["keys_seen"] += len(names)
        self.fused_stats["max_keys_in_window"] = max(
            self.fused_stats["max_keys_in_window"], len(names)
        )
        if self._observer is not None:
            rows_by_key: Dict[str, int] = {}
            for name, _ in tags:
                rows_by_key[name] = rows_by_key.get(name, 0) + 1
            self._observer.window_flushed(rows_by_key)
        return self._flush(tags, bodies)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def keys_per_window(self) -> float:
        """Mean distinct keys per flushed window (0.0 before any)."""
        windows = self.fused_stats["windows"]
        return self.fused_stats["keys_seen"] / windows if windows else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self._batcher.mean_batch_size

    @property
    def mean_flush_ms(self) -> float:
        return self._batcher.mean_flush_ms

    @property
    def inflight_flushes(self) -> int:
        return self._batcher.inflight_flushes

    def stats_fused(self) -> Dict[str, float]:
        """The fusion counters of this op's shared window."""
        return dict(
            self.fused_stats,
            max_batch=self.max_batch,
            mean_rows_per_window=self.mean_batch_size,
            keys_per_window=self.keys_per_window,
            mean_flush_ms=self.mean_flush_ms,
            inflight_flushes=self.inflight_flushes,
        )

    def stats_by_key(self) -> Dict[str, Dict[str, float]]:
        """Per-key counters, keyed by name (LRU-bounded by max_keys)."""
        return {
            name: dict(
                entry,
                mean_batch_size=self.mean_batch_size,
            )
            for name, entry in self._per_key.items()
        }

    # ------------------------------------------------------------------
    # Lifecycle (delegated to the shared window)
    # ------------------------------------------------------------------
    def flush_pending(self) -> None:
        """Flush the shared window now (rotation/retire fail-fast)."""
        self._batcher.flush_pending()

    def close(self) -> None:
        self._batcher.close()

    async def drain(self) -> None:
        await self._batcher.drain()
