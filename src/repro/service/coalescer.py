"""Micro-batching request coalescer.

The PR 1 batched backend APIs (``encrypt_polynomial_batch``,
``encapsulate_many``) reach ~14x the single-message throughput at batch
64, but a server sees *single* requests.  :class:`MicroBatcher` bridges
the two: concurrent ``submit`` calls queue into a window and flush
through one batched backend call when either

* the window holds ``max_batch`` items, or
* ``max_wait`` seconds have passed since the first queued item —

the classic inference-server trade of a bounded per-request latency
penalty for batched throughput.  With ``max_batch=1`` every request
flushes immediately, which is the unbatched baseline the benchmarks
compare against.

Where a flushed batch *runs* is the execution engine's business
(:mod:`repro.service.executor`), not the coalescer's.  A synchronous
flush function computes on the event loop — the
:class:`~repro.service.executor.InlineExecutor` model, right for a
single-process server where the crypto is GIL-bound anyway.  A flush
function that returns an awaitable hands the batch to an engine that
completes it elsewhere — the
:class:`~repro.service.executor.WorkerPoolExecutor` model, where whole
batches ship to worker processes and *overlapping windows stay in
flight concurrently*: while one batch computes on a worker, the event
loop keeps accepting, coalescing, and dispatching the next window to
another worker.  Either way, new arrivals queue for the next window
while a batch computes — which is exactly what keeps subsequent
batches full under load.
"""

from __future__ import annotations

import asyncio
import inspect
import time
from typing import Any, Callable, Dict, List, Sequence, Tuple

_Window = List[Tuple[Any, asyncio.Future]]


class MicroBatcher:
    """Coalesce concurrent awaited items into batched flush calls.

    Parameters
    ----------
    flush:
        ``flush(items) -> results`` or ``flush(items) -> awaitable of
        results``, one result per item, in order.  A result that is an
        :class:`Exception` instance is raised to that item's waiter
        only; if ``flush`` itself raises (or the awaitable does), every
        waiter in that batch gets the exception.  An awaitable flush
        does not block the window: further batches flush while earlier
        ones are still in flight.
    max_batch:
        Flush as soon as the window holds this many items (>= 1).
    max_wait:
        Flush a partial window this many seconds after its first item
        arrived.  ``0`` still yields to the event loop once, so
        already-concurrent requests coalesce.
    """

    def __init__(
        self,
        flush: Callable[[List[Any]], Sequence[Any]],
        *,
        max_batch: int = 32,
        max_wait: float = 0.002,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self._flush = flush
        self.max_batch = max_batch
        self.max_wait = max_wait
        self._window: _Window = []
        self._timer: "asyncio.TimerHandle | None" = None
        self._inflight: "set[asyncio.Task]" = set()
        #: Cumulative counters for benchmarks and the server's stats op.
        self.stats: Dict[str, float] = {
            "items": 0,
            "flushes": 0,
            "max_batch_seen": 0,
            "flush_seconds": 0.0,
            "inflight_max": 0,
        }

    async def submit(self, item: Any) -> Any:
        """Queue ``item`` and await its result from a batched flush."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._window.append((item, future))
        if len(self._window) >= self.max_batch:
            self.flush_pending()
        elif self._timer is None:
            self._timer = loop.call_later(self.max_wait, self.flush_pending)
        return await future

    def flush_pending(self) -> None:
        """Flush the current window immediately (idempotent when empty)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._window:
            return
        window, self._window = self._window, []
        items = [item for item, _ in window]
        self.stats["items"] += len(items)
        self.stats["flushes"] += 1
        self.stats["max_batch_seen"] = max(
            self.stats["max_batch_seen"], len(items)
        )
        started = time.perf_counter()
        try:
            outcome = self._flush(items)
        except Exception as exc:
            self.stats["flush_seconds"] += time.perf_counter() - started
            self._fail(window, exc)
            return
        if inspect.isawaitable(outcome):
            task = asyncio.ensure_future(
                self._finish_async(window, outcome, started)
            )
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)
            self.stats["inflight_max"] = max(
                self.stats["inflight_max"], len(self._inflight)
            )
        else:
            self.stats["flush_seconds"] += time.perf_counter() - started
            self._deliver(window, outcome)

    async def _finish_async(
        self, window: _Window, outcome, started: float
    ) -> None:
        try:
            results = await outcome
        except Exception as exc:
            self._fail(window, exc)
            return
        finally:
            self.stats["flush_seconds"] += time.perf_counter() - started
        self._deliver(window, results)

    def _fail(self, window: _Window, exc: Exception) -> None:
        for _, future in window:
            if not future.done():
                future.set_exception(exc)

    def _deliver(self, window: _Window, results: Sequence[Any]) -> None:
        if len(results) != len(window):
            self._fail(
                window,
                RuntimeError(
                    f"flush returned {len(results)} results for "
                    f"{len(window)} items"
                ),
            )
            return
        for (_, future), result in zip(window, results):
            if future.done():
                continue
            if isinstance(result, Exception):
                future.set_exception(result)
            else:
                future.set_result(result)

    @property
    def mean_batch_size(self) -> float:
        """Average items per flush so far (0.0 before any flush)."""
        flushes = self.stats["flushes"]
        return self.stats["items"] / flushes if flushes else 0.0

    @property
    def mean_flush_ms(self) -> float:
        """Average submit-to-completion milliseconds per flush."""
        flushes = self.stats["flushes"]
        return (
            self.stats["flush_seconds"] / flushes * 1e3 if flushes else 0.0
        )

    @property
    def inflight_flushes(self) -> int:
        """Async flushes currently awaiting completion."""
        return len(self._inflight)

    async def drain(self) -> None:
        """Wait until every in-flight async flush has completed."""
        while self._inflight:
            await asyncio.gather(
                *list(self._inflight), return_exceptions=True
            )

    def close(self) -> None:
        """Cancel the pending timer and flush any queued items.

        Async flushes started here keep running; awaiting
        :meth:`drain` afterwards guarantees every waiter is resolved.
        """
        self.flush_pending()
