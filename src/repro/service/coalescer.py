"""Micro-batching request coalescer.

The PR 1 batched backend APIs (``encrypt_polynomial_batch``,
``encapsulate_many``) reach ~14x the single-message throughput at batch
64, but a server sees *single* requests.  :class:`MicroBatcher` bridges
the two: concurrent ``submit`` calls queue into a window and flush
through one batched backend call when either

* the window holds ``max_batch`` items, or
* ``max_wait`` seconds have passed since the first queued item —

the classic inference-server trade of a bounded per-request latency
penalty for batched throughput.  With ``max_batch=1`` every request
flushes immediately, which is the unbatched baseline the benchmarks
compare against.

The flush function is synchronous and runs *on the event loop*: the
work is GIL-bound NumPy/Python crypto, so a thread pool would add
handoff latency without adding parallelism.  While a batch computes,
new arrivals queue for the next window — which is exactly what keeps
subsequent batches full under load.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Sequence, Tuple


class MicroBatcher:
    """Coalesce concurrent awaited items into batched flush calls.

    Parameters
    ----------
    flush:
        ``flush(items) -> results``, one result per item, in order.  A
        result that is an :class:`Exception` instance is raised to that
        item's waiter only; if ``flush`` itself raises, every waiter in
        the batch gets the exception.
    max_batch:
        Flush as soon as the window holds this many items (>= 1).
    max_wait:
        Flush a partial window this many seconds after its first item
        arrived.  ``0`` still yields to the event loop once, so
        already-concurrent requests coalesce.
    """

    def __init__(
        self,
        flush: Callable[[List[Any]], Sequence[Any]],
        *,
        max_batch: int = 32,
        max_wait: float = 0.002,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self._flush = flush
        self.max_batch = max_batch
        self.max_wait = max_wait
        self._window: List[Tuple[Any, asyncio.Future]] = []
        self._timer: "asyncio.TimerHandle | None" = None
        #: Cumulative counters for benchmarks and the server's stats op.
        self.stats: Dict[str, int] = {
            "items": 0,
            "flushes": 0,
            "max_batch_seen": 0,
        }

    async def submit(self, item: Any) -> Any:
        """Queue ``item`` and await its result from a batched flush."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._window.append((item, future))
        if len(self._window) >= self.max_batch:
            self.flush_pending()
        elif self._timer is None:
            self._timer = loop.call_later(self.max_wait, self.flush_pending)
        return await future

    def flush_pending(self) -> None:
        """Flush the current window immediately (idempotent when empty)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._window:
            return
        window, self._window = self._window, []
        items = [item for item, _ in window]
        self.stats["items"] += len(items)
        self.stats["flushes"] += 1
        self.stats["max_batch_seen"] = max(
            self.stats["max_batch_seen"], len(items)
        )
        try:
            results = self._flush(items)
            if len(results) != len(items):
                raise RuntimeError(
                    f"flush returned {len(results)} results for "
                    f"{len(items)} items"
                )
        except Exception as exc:
            for _, future in window:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), result in zip(window, results):
            if future.done():
                continue
            if isinstance(result, Exception):
                future.set_exception(result)
            else:
                future.set_result(result)

    @property
    def mean_batch_size(self) -> float:
        """Average items per flush so far (0.0 before any flush)."""
        flushes = self.stats["flushes"]
        return self.stats["items"] / flushes if flushes else 0.0

    def close(self) -> None:
        """Cancel the pending timer and flush any queued items."""
        self.flush_pending()
