"""Micro-batching request coalescer.

The PR 1 batched backend APIs (``encrypt_polynomial_batch``,
``encapsulate_many``) reach ~14x the single-message throughput at batch
64, but a server sees *single* requests.  :class:`MicroBatcher` bridges
the two: concurrent ``submit`` calls queue into a window and flush
through one batched backend call when either

* the window holds ``max_batch`` items, or
* ``max_wait`` seconds have passed since the first queued item —

the classic inference-server trade of a bounded per-request latency
penalty for batched throughput.  With ``max_batch=1`` every request
flushes immediately, which is the unbatched baseline the benchmarks
compare against.

Where a flushed batch *runs* is the execution engine's business
(:mod:`repro.service.executor`), not the coalescer's.  A synchronous
flush function computes on the event loop — the
:class:`~repro.service.executor.InlineExecutor` model, right for a
single-process server where the crypto is GIL-bound anyway.  A flush
function that returns an awaitable hands the batch to an engine that
completes it elsewhere — the
:class:`~repro.service.executor.WorkerPoolExecutor` model, where whole
batches ship to worker processes and *overlapping windows stay in
flight concurrently*: while one batch computes on a worker, the event
loop keeps accepting, coalescing, and dispatching the next window to
another worker.  Either way, new arrivals queue for the next window
while a batch computes — which is exactly what keeps subsequent
batches full under load.
"""

from __future__ import annotations

import asyncio
import inspect
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Sequence, Tuple

_Window = List[Tuple[Any, asyncio.Future]]

__all__ = ["MicroBatcher", "KeyedBatcherGroup"]


class MicroBatcher:
    """Coalesce concurrent awaited items into batched flush calls.

    Parameters
    ----------
    flush:
        ``flush(items) -> results`` or ``flush(items) -> awaitable of
        results``, one result per item, in order.  A result that is an
        :class:`Exception` instance is raised to that item's waiter
        only; if ``flush`` itself raises (or the awaitable does), every
        waiter in that batch gets the exception.  An awaitable flush
        does not block the window: further batches flush while earlier
        ones are still in flight.
    max_batch:
        Flush as soon as the window holds this many items (>= 1).
    max_wait:
        Flush a partial window this many seconds after its first item
        arrived.  ``0`` still yields to the event loop once, so
        already-concurrent requests coalesce.
    """

    def __init__(
        self,
        flush: Callable[[List[Any]], Sequence[Any]],
        *,
        max_batch: int = 32,
        max_wait: float = 0.002,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self._flush = flush
        self.max_batch = max_batch
        self.max_wait = max_wait
        self._window: _Window = []
        self._timer: "asyncio.TimerHandle | None" = None
        self._inflight: "set[asyncio.Task]" = set()
        #: Cumulative counters for benchmarks and the server's stats op.
        self.stats: Dict[str, float] = {
            "items": 0,
            "flushes": 0,
            "max_batch_seen": 0,
            "flush_seconds": 0.0,
            "inflight_max": 0,
        }

    async def submit(self, item: Any) -> Any:
        """Queue ``item`` and await its result from a batched flush."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._window.append((item, future))
        if len(self._window) >= self.max_batch:
            self.flush_pending()
        elif self._timer is None:
            self._timer = loop.call_later(self.max_wait, self.flush_pending)
        return await future

    def flush_pending(self) -> None:
        """Flush the current window immediately (idempotent when empty)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._window:
            return
        window, self._window = self._window, []
        items = [item for item, _ in window]
        self.stats["items"] += len(items)
        self.stats["flushes"] += 1
        self.stats["max_batch_seen"] = max(
            self.stats["max_batch_seen"], len(items)
        )
        started = time.perf_counter()
        try:
            outcome = self._flush(items)
        except Exception as exc:
            self.stats["flush_seconds"] += time.perf_counter() - started
            self._fail(window, exc)
            return
        if inspect.isawaitable(outcome):
            task = asyncio.ensure_future(
                self._finish_async(window, outcome, started)
            )
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)
            self.stats["inflight_max"] = max(
                self.stats["inflight_max"], len(self._inflight)
            )
        else:
            self.stats["flush_seconds"] += time.perf_counter() - started
            self._deliver(window, outcome)

    async def _finish_async(
        self, window: _Window, outcome, started: float
    ) -> None:
        try:
            results = await outcome
        except Exception as exc:
            self._fail(window, exc)
            return
        finally:
            self.stats["flush_seconds"] += time.perf_counter() - started
        self._deliver(window, results)

    def _fail(self, window: _Window, exc: Exception) -> None:
        for _, future in window:
            if not future.done():
                future.set_exception(exc)

    def _deliver(self, window: _Window, results: Sequence[Any]) -> None:
        if len(results) != len(window):
            self._fail(
                window,
                RuntimeError(
                    f"flush returned {len(results)} results for "
                    f"{len(window)} items"
                ),
            )
            return
        for (_, future), result in zip(window, results):
            if future.done():
                continue
            if isinstance(result, Exception):
                future.set_exception(result)
            else:
                future.set_result(result)

    @property
    def mean_batch_size(self) -> float:
        """Average items per flush so far (0.0 before any flush)."""
        flushes = self.stats["flushes"]
        return self.stats["items"] / flushes if flushes else 0.0

    @property
    def mean_flush_ms(self) -> float:
        """Average submit-to-completion milliseconds per flush."""
        flushes = self.stats["flushes"]
        return (
            self.stats["flush_seconds"] / flushes * 1e3 if flushes else 0.0
        )

    @property
    def inflight_flushes(self) -> int:
        """Async flushes currently awaiting completion."""
        return len(self._inflight)

    async def drain(self) -> None:
        """Wait until every in-flight async flush has completed."""
        while self._inflight:
            await asyncio.gather(
                *list(self._inflight), return_exceptions=True
            )

    def close(self) -> None:
        """Cancel the pending timer and flush any queued items.

        Async flushes started here keep running; awaiting
        :meth:`drain` afterwards guarantees every waiter is resolved.
        """
        self.flush_pending()


class KeyedBatcherGroup:
    """One :class:`MicroBatcher` per key for a single operation.

    The multi-tenant server batches *within* a key, never across keys:
    items in one flushed window all compute under the same
    ``(name, generation)``, so the window maps onto exactly one batched
    backend call under one keypair.  Windows are keyed by
    ``(name, generation)`` — a rotation does not disturb the old
    generation's queued window (its flush fails with the stale-key
    error when it resolves material), while new-generation arrivals
    open a fresh window immediately.

    Parameters
    ----------
    flush_factory:
        ``flush_factory(name, generation) -> flush`` builds the flush
        callable one key's batcher uses (same contract as
        :class:`MicroBatcher`'s ``flush``).
    max_batch / max_wait:
        Shared window shape for every per-key batcher.
    max_keys:
        Upper bound on live per-key windows (>= 1).  A server can see
        far more keys over its lifetime than are ever active at once;
        beyond the bound the least recently used window is closed (its
        queued items still flush and resolve normally) and recreated
        on the key's next request, so idle keys cost nothing and the
        ``stats`` response stays bounded.
    """

    def __init__(
        self,
        flush_factory: Callable[[str, int], Callable],
        *,
        max_batch: int = 32,
        max_wait: float = 0.002,
        max_keys: int = 1024,
    ):
        if max_keys < 1:
            raise ValueError(f"max_keys must be >= 1, got {max_keys}")
        self._flush_factory = flush_factory
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.max_keys = max_keys
        self._batchers: "OrderedDict[Tuple[str, int], MicroBatcher]" = (
            OrderedDict()
        )
        #: Batchers closed by rotation/retire/LRU, kept only until
        #: their in-flight flushes drain.
        self._retiring: List[MicroBatcher] = []

    def _retire(self, batcher: MicroBatcher) -> None:
        batcher.close()
        self._retiring.append(batcher)

    def batcher(self, name: str, generation: int) -> MicroBatcher:
        """The (lazily created) window for ``(name, generation)``.

        Creating a new generation's window closes the superseded ones
        for the same name: their queued items flush now (and fail with
        the stale-generation error at material resolution) instead of
        waiting out their timers.
        """
        key = (name, generation)
        batcher = self._batchers.get(key)
        if batcher is None:
            stale = [
                other
                for other in self._batchers
                if other[0] == name and other[1] != generation
            ]
            for other in stale:
                self._retire(self._batchers.pop(other))
            self._retiring = [
                b for b in self._retiring if b.inflight_flushes
            ]
            batcher = MicroBatcher(
                self._flush_factory(name, generation),
                max_batch=self.max_batch,
                max_wait=self.max_wait,
            )
            self._batchers[key] = batcher
            while len(self._batchers) > self.max_keys:
                # Oldest-first eviction; the entry just added is the
                # newest, so it is never the one dropped.
                _, evicted = self._batchers.popitem(last=False)
                self._retire(evicted)
        else:
            self._batchers.move_to_end(key)
        return batcher

    def discard(self, name: str) -> None:
        """Close every window for ``name`` (retire/evict path)."""
        for key in [k for k in self._batchers if k[0] == name]:
            retired = self._batchers.pop(key)
            retired.close()
            self._retiring.append(retired)

    def stats_by_key(self) -> Dict[str, Dict[str, float]]:
        """Live per-key counters, keyed by name (current windows only)."""
        out: Dict[str, Dict[str, float]] = {}
        for (name, generation), batcher in self._batchers.items():
            out[name] = dict(
                batcher.stats,
                generation=generation,
                mean_batch_size=batcher.mean_batch_size,
                mean_flush_ms=batcher.mean_flush_ms,
                inflight_flushes=batcher.inflight_flushes,
            )
        return out

    def close(self) -> None:
        for batcher in self._batchers.values():
            batcher.close()

    async def drain(self) -> None:
        for batcher in list(self._batchers.values()) + self._retiring:
            await batcher.drain()
        self._retiring = []
