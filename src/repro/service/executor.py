"""Pluggable execution engines for coalesced crypto batches.

The service stack is three layers: the framing/socket layer accepts and
multiplexes requests, the :class:`~repro.service.coalescer.MicroBatcher`
coalesces them into batches, and an *execution engine* — this module —
decides where a flushed batch actually computes:

* :class:`InlineExecutor` runs the batch synchronously on the event
  loop, exactly the single-process behavior the PR 2 server had.
  Cheapest per batch, but the loop cannot accept new requests while
  crypto computes, so throughput is capped at one core.
* :class:`WorkerPoolExecutor` forks N worker processes
  (``python -m repro.service.worker``), broadcasts the serialized
  keypair / parameter set / backend to each at startup, and ships whole
  coalesced batches to the least-loaded worker.  The event loop keeps
  accepting and coalescing while crypto computes in parallel — the
  Python-scale analogue of the paper's workload spread across parallel
  hardware tiles.  A worker that dies mid-flight fails only its own
  outstanding batches (each waiter gets a uniform
  :class:`~repro.service.protocol.ServiceError`) and is respawned.

Every IPC payload rides the PR 2 hardened wire format — length-prefixed
frames whose bodies are :func:`~repro.service.protocol.encode_batch`
containers of :mod:`repro.core.serialize` objects.  No pickle crosses a
process boundary, so a compromised worker cannot feed the parent
arbitrary object graphs, and the parent↔worker contract is exactly as
strict as the public socket.  That ban is machine-checked:
``rlwe-repro lint`` (IPC001, see README "Developer tooling") fails CI
on any ``pickle``/``marshal`` import in the transport packages, and
ASY001 keeps blocking calls off the event loop these engines share.

Both engines share :class:`OpRunner`, the body-in/body-out compute core
(deserialize → batched backend call → serialize, with per-item error
capture), so inline and pooled execution are bit-identical for the same
random streams: ``InlineExecutor`` and ``WorkerPoolExecutor(workers=1)``
produce byte-equal wire responses for the same seeded requests.
"""

from __future__ import annotations

import asyncio
import os
import struct
import sys
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.kem import SECRET_BYTES, EncapsulationError, RlweKem
from repro.core.scheme import KeyPair, RlweEncryptionScheme
from repro.core import serialize
from repro.service import protocol
from repro.service.protocol import (
    OP_DECAPSULATE,
    OP_DECRYPT,
    OP_ENCAPSULATE,
    OP_ENCRYPT,
    OP_WORKER_CONFIG,
    STATUS_BAD_REQUEST,
    STATUS_DECAPSULATION_FAILED,
    STATUS_INTERNAL_ERROR,
    STATUS_OK,
    Request,
    ServiceError,
)

#: One executor result: a response body, or the error to raise to that
#: item's waiter.
BatchResult = Union[bytes, ServiceError]

_SEED = struct.Struct("!Q")
_FLAG_DIRECT = 0x01

#: Domain separator between key-generation and serving randomness.  A
#: deployment seeded with S must not serve encryption/encapsulation
#: noise from the same PRNG stream that drew the keypair: the public
#: ``a_hat`` is a verbatim slice of that stream, so reusing it would
#: hand an observer the serving stream's prefix.  Keygen uses stream S,
#: serving (inline, and pool shard 0's first spawn) uses stream
#: ``serving_seed(S)``.
#:
#: The simulated TRNG (:class:`repro.trng.xorshift.Xorshift128`) has a
#: 32-bit seed space, so all seed arithmetic here is mod 2^32 — two
#: seeds equal mod 2^32 are the same stream.  The wire config still
#: carries a u64 field for a future wider-seeded entropy source.
#: Derivations run through a non-linear finalizer (:func:`_mix32`), not
#: a plain offset, so *related* base seeds (S and S+1, or one server's
#: base equalling another's derived seed) do not land on each other's
#: streams.  In a 32-bit space collisions can never be ruled out —
#: only made non-adjacent; the real guarantee is per-pool (every spawn
#: distinct), and the TRNG is an explicitly non-cryptographic
#: simulation either way.
SERVING_SEED_DELTA = 0x9E3779B9
_SEED_MASK = 0xFFFFFFFF


def _mix32(value: int) -> int:
    """A 32-bit bijective finalizer (splitmix-style avalanche)."""
    value &= _SEED_MASK
    value ^= value >> 16
    value = (value * 0x45D9F3B) & _SEED_MASK
    value ^= value >> 16
    value = (value * 0x45D9F3B) & _SEED_MASK
    value ^= value >> 16
    return value


def serving_seed(seed: int) -> int:
    """The serving-stream seed derived from a base (keygen) seed."""
    return _mix32((seed + SERVING_SEED_DELTA) & _SEED_MASK)


def require_kem(kem: Optional[RlweKem], params) -> RlweKem:
    """The shared KEM-capability guard (dispatch and engine side)."""
    if kem is None:
        raise ServiceError(
            STATUS_BAD_REQUEST,
            f"{params.name} carries {params.message_bytes} bytes per "
            f"ciphertext; the KEM needs {SECRET_BYTES}",
        )
    return kem


class OpRunner:
    """Body-in/body-out batched compute for one shard.

    Owns one scheme + keypair + KEM and turns a list of raw request
    bodies into per-item ``(status, body)`` results.  Deserialization
    errors, parameter mismatches, and decapsulation failures are
    captured per item so one bad body never poisons its batch.  With
    ``direct=True`` every item runs through the single-message scheme
    API (the unbatched baseline a ``max_batch=1`` server serves).

    ``self.keypair`` is the *default* key; a key-addressed batch passes
    its own ``keypair`` override to :meth:`run`, sharing the scheme
    (and so the serving randomness stream) with every other key on this
    shard — the keystore owns key material, the runner only computes.
    """

    def __init__(
        self,
        scheme: RlweEncryptionScheme,
        keypair: KeyPair,
        *,
        direct: bool = False,
    ):
        self.scheme = scheme
        self.keypair = keypair
        self.kem = (
            RlweKem(scheme)
            if scheme.params.message_bytes >= SECRET_BYTES
            else None
        )
        self.direct = direct

    def run(
        self,
        opcode: int,
        bodies: Sequence[bytes],
        *,
        keypair: Optional[KeyPair] = None,
        keypairs: Optional[Sequence[KeyPair]] = None,
    ) -> List[Tuple[int, bytes]]:
        """Execute one batch; one ``(status, body)`` per input body.

        ``keypair`` overrides the default key for the whole batch;
        ``keypairs`` (mutually exclusive) pins item ``i`` to
        ``keypairs[i]`` — the fused-window path, where one batch mixes
        items under different keys.  A keypair vector that names only
        one distinct pair collapses to the per-batch override, so fused
        single-key windows stay bit-identical to the legacy path.
        """
        if keypairs is not None:
            if keypair is not None:
                raise ValueError("pass keypair or keypairs, not both")
            if len(keypairs) != len(bodies):
                raise ValueError(
                    f"keypair vector of {len(keypairs)} entries for "
                    f"{len(bodies)} bodies"
                )
            if not bodies:
                return []
            distinct: List[KeyPair] = []
            index_of: Dict[int, int] = {}
            rows: List[int] = []
            for pair in keypairs:
                row = index_of.get(id(pair))
                if row is None:
                    row = len(distinct)
                    index_of[id(pair)] = row
                    distinct.append(pair)
                rows.append(row)
            if len(distinct) > 1:
                if opcode == OP_ENCRYPT:
                    return self._encrypt_multi(bodies, distinct, rows)
                if opcode == OP_DECRYPT:
                    return self._decrypt_multi(bodies, distinct, rows)
                if opcode == OP_ENCAPSULATE:
                    return self._encapsulate_multi(bodies, distinct, rows)
                if opcode == OP_DECAPSULATE:
                    return self._decapsulate_multi(bodies, distinct, rows)
                raise ValueError(
                    f"opcode {opcode} is not a batchable operation"
                )
            keypair = distinct[0]
        pair = keypair if keypair is not None else self.keypair
        if opcode == OP_ENCRYPT:
            return self._encrypt(bodies, pair)
        if opcode == OP_DECRYPT:
            return self._decrypt(bodies, pair)
        if opcode == OP_ENCAPSULATE:
            return self._encapsulate(bodies, pair)
        if opcode == OP_DECAPSULATE:
            return self._decapsulate(bodies, pair)
        raise ValueError(f"opcode {opcode} is not a batchable operation")

    # ------------------------------------------------------------------
    def _encrypt(
        self, bodies: Sequence[bytes], pair: KeyPair
    ) -> List[Tuple[int, bytes]]:
        params = self.scheme.params
        results: List[Optional[Tuple[int, bytes]]] = [None] * len(bodies)
        messages, slots = [], []
        for index, body in enumerate(bodies):
            if len(body) > params.message_bytes:
                results[index] = (
                    STATUS_BAD_REQUEST,
                    f"message of {len(body)} bytes exceeds the "
                    f"{params.message_bytes}-byte capacity of "
                    f"{params.name}".encode(),
                )
            else:
                messages.append(body)
                slots.append(index)
        if messages:
            if self.direct:
                ciphertexts = [
                    self.scheme.encrypt(pair.public, message)
                    for message in messages
                ]
            else:
                ciphertexts = self.scheme.encrypt_batch(
                    pair.public, messages
                )
            for index, ct in zip(slots, ciphertexts):
                results[index] = (
                    STATUS_OK,
                    serialize.serialize_ciphertext(ct),
                )
        return results  # type: ignore[return-value]

    def _decrypt(
        self, bodies: Sequence[bytes], pair: KeyPair
    ) -> List[Tuple[int, bytes]]:
        params = self.scheme.params
        results: List[Optional[Tuple[int, bytes]]] = [None] * len(bodies)
        ciphertexts, slots = [], []
        for index, body in enumerate(bodies):
            try:
                ct = serialize.deserialize_ciphertext(body)
            except ValueError as exc:
                results[index] = (STATUS_BAD_REQUEST, str(exc).encode())
                continue
            if ct.params != params:
                results[index] = (
                    STATUS_BAD_REQUEST,
                    f"ciphertext is for {ct.params.name}, "
                    f"this server runs {params.name}".encode(),
                )
                continue
            ciphertexts.append(ct)
            slots.append(index)
        if ciphertexts:
            if self.direct:
                plains = [
                    self.scheme.decrypt(pair.private, ct)
                    for ct in ciphertexts
                ]
            else:
                plains = self.scheme.decrypt_batch(
                    pair.private, ciphertexts
                )
            for index, plain in zip(slots, plains):
                results[index] = (STATUS_OK, plain)
        return results  # type: ignore[return-value]

    def _encapsulate(
        self, bodies: Sequence[bytes], pair: KeyPair
    ) -> List[Tuple[int, bytes]]:
        kem = self._require_kem()
        if self.direct:
            pairs = [kem.encapsulate(pair.public) for _ in bodies]
        else:
            pairs = kem.encapsulate_many(pair.public, len(bodies))
        return [
            (
                STATUS_OK,
                secret.key
                + serialize.serialize_encapsulation(encapsulation),
            )
            for encapsulation, secret in pairs
        ]

    def _decapsulate(
        self, bodies: Sequence[bytes], pair: KeyPair
    ) -> List[Tuple[int, bytes]]:
        kem = self._require_kem()
        params = self.scheme.params
        results: List[Optional[Tuple[int, bytes]]] = [None] * len(bodies)
        encapsulations, slots = [], []
        for index, body in enumerate(bodies):
            try:
                encapsulation = serialize.deserialize_encapsulation(body)
            except ValueError as exc:
                results[index] = (STATUS_BAD_REQUEST, str(exc).encode())
                continue
            if encapsulation.ciphertext.params != params:
                results[index] = (
                    STATUS_BAD_REQUEST,
                    f"encapsulation is for "
                    f"{encapsulation.ciphertext.params.name}, "
                    f"this server runs {params.name}".encode(),
                )
                continue
            encapsulations.append(encapsulation)
            slots.append(index)
        if encapsulations:
            if self.direct:
                secrets = []
                for encapsulation in encapsulations:
                    try:
                        secrets.append(
                            kem.decapsulate(
                                pair.private,
                                pair.public,
                                encapsulation,
                            )
                        )
                    except EncapsulationError:
                        secrets.append(None)
            else:
                secrets = kem.decapsulate_many(
                    pair.private,
                    pair.public,
                    encapsulations,
                )
            for index, secret in zip(slots, secrets):
                if secret is None:
                    results[index] = (
                        STATUS_DECAPSULATION_FAILED,
                        b"key confirmation failed (decryption failure "
                        b"or tampered encapsulation)",
                    )
                else:
                    results[index] = (STATUS_OK, secret.key)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Fused (per-item keypair) batch compute
    # ------------------------------------------------------------------
    def _encrypt_multi(
        self,
        bodies: Sequence[bytes],
        pairs: Sequence[KeyPair],
        rows: Sequence[int],
    ) -> List[Tuple[int, bytes]]:
        params = self.scheme.params
        results: List[Optional[Tuple[int, bytes]]] = [None] * len(bodies)
        messages, slots, sub_rows = [], [], []
        for index, body in enumerate(bodies):
            if len(body) > params.message_bytes:
                results[index] = (
                    STATUS_BAD_REQUEST,
                    f"message of {len(body)} bytes exceeds the "
                    f"{params.message_bytes}-byte capacity of "
                    f"{params.name}".encode(),
                )
            else:
                messages.append(body)
                slots.append(index)
                sub_rows.append(rows[index])
        if messages:
            publics = [pair.public for pair in pairs]
            if self.direct:
                ciphertexts = [
                    self.scheme.encrypt(publics[row], message)
                    for row, message in zip(sub_rows, messages)
                ]
            else:
                ciphertexts = self.scheme.encrypt_batch_multi(
                    publics, sub_rows, messages
                )
            for index, ct in zip(slots, ciphertexts):
                results[index] = (
                    STATUS_OK,
                    serialize.serialize_ciphertext(ct),
                )
        return results  # type: ignore[return-value]

    def _decrypt_multi(
        self,
        bodies: Sequence[bytes],
        pairs: Sequence[KeyPair],
        rows: Sequence[int],
    ) -> List[Tuple[int, bytes]]:
        params = self.scheme.params
        results: List[Optional[Tuple[int, bytes]]] = [None] * len(bodies)
        ciphertexts, slots, sub_rows = [], [], []
        for index, body in enumerate(bodies):
            try:
                ct = serialize.deserialize_ciphertext(body)
            except ValueError as exc:
                results[index] = (STATUS_BAD_REQUEST, str(exc).encode())
                continue
            if ct.params != params:
                results[index] = (
                    STATUS_BAD_REQUEST,
                    f"ciphertext is for {ct.params.name}, "
                    f"this server runs {params.name}".encode(),
                )
                continue
            ciphertexts.append(ct)
            slots.append(index)
            sub_rows.append(rows[index])
        if ciphertexts:
            privates = [pair.private for pair in pairs]
            if self.direct:
                plains = [
                    self.scheme.decrypt(privates[row], ct)
                    for row, ct in zip(sub_rows, ciphertexts)
                ]
            else:
                plains = self.scheme.decrypt_batch_multi(
                    privates, sub_rows, ciphertexts
                )
            for index, plain in zip(slots, plains):
                results[index] = (STATUS_OK, plain)
        return results  # type: ignore[return-value]

    def _encapsulate_multi(
        self,
        bodies: Sequence[bytes],
        pairs: Sequence[KeyPair],
        rows: Sequence[int],
    ) -> List[Tuple[int, bytes]]:
        kem = self._require_kem()
        publics = [pair.public for pair in pairs]
        if self.direct:
            out = [kem.encapsulate(publics[row]) for row in rows]
        else:
            out = kem.encapsulate_many_multi(publics, rows)
        return [
            (
                STATUS_OK,
                secret.key
                + serialize.serialize_encapsulation(encapsulation),
            )
            for encapsulation, secret in out
        ]

    def _decapsulate_multi(
        self,
        bodies: Sequence[bytes],
        pairs: Sequence[KeyPair],
        rows: Sequence[int],
    ) -> List[Tuple[int, bytes]]:
        kem = self._require_kem()
        params = self.scheme.params
        results: List[Optional[Tuple[int, bytes]]] = [None] * len(bodies)
        encapsulations, slots, sub_rows = [], [], []
        for index, body in enumerate(bodies):
            try:
                encapsulation = serialize.deserialize_encapsulation(body)
            except ValueError as exc:
                results[index] = (STATUS_BAD_REQUEST, str(exc).encode())
                continue
            if encapsulation.ciphertext.params != params:
                results[index] = (
                    STATUS_BAD_REQUEST,
                    f"encapsulation is for "
                    f"{encapsulation.ciphertext.params.name}, "
                    f"this server runs {params.name}".encode(),
                )
                continue
            encapsulations.append(encapsulation)
            slots.append(index)
            sub_rows.append(rows[index])
        if encapsulations:
            publics = [pair.public for pair in pairs]
            privates = [pair.private for pair in pairs]
            if self.direct:
                secrets = []
                for row, encapsulation in zip(sub_rows, encapsulations):
                    try:
                        secrets.append(
                            kem.decapsulate(
                                privates[row],
                                publics[row],
                                encapsulation,
                            )
                        )
                    except EncapsulationError:
                        secrets.append(None)
            else:
                secrets = kem.decapsulate_many_multi(
                    privates, publics, sub_rows, encapsulations
                )
            for index, secret in zip(slots, secrets):
                if secret is None:
                    results[index] = (
                        STATUS_DECAPSULATION_FAILED,
                        b"key confirmation failed (decryption failure "
                        b"or tampered encapsulation)",
                    )
                else:
                    results[index] = (STATUS_OK, secret.key)
        return results  # type: ignore[return-value]

    def _require_kem(self) -> RlweKem:
        return require_kem(self.kem, self.scheme.params)


def results_to_batch(
    results: Sequence[Tuple[int, bytes]]
) -> List[BatchResult]:
    """``(status, body)`` pairs to MicroBatcher-ready per-item results."""
    return [
        body
        if status == STATUS_OK
        else ServiceError(status, body.decode(errors="replace"))
        for status, body in results
    ]


# ----------------------------------------------------------------------
# Worker config broadcast (wire-format encoded, no pickle)
# ----------------------------------------------------------------------
def encode_worker_config(
    public_bytes: bytes,
    private_bytes: bytes,
    *,
    seed: int,
    backend: Optional[str],
    direct: bool,
) -> bytes:
    """The startup broadcast: keypair + seed + backend + path flags."""
    if not 0 <= seed < 1 << 64:
        raise ValueError(f"seed {seed} out of u64 range")
    return protocol.encode_batch(
        [
            _SEED.pack(seed),
            (backend or "").encode(),
            bytes([_FLAG_DIRECT if direct else 0]),
            public_bytes,
            private_bytes,
        ]
    )


def decode_worker_config(payload: bytes) -> Dict:
    """Strict inverse of :func:`encode_worker_config`."""
    fields = protocol.decode_batch(payload)
    if len(fields) != 5:
        raise ValueError(
            f"worker config carries {len(fields)} fields, expected 5"
        )
    seed_bytes, backend_bytes, flags, public_bytes, private_bytes = fields
    if len(seed_bytes) != _SEED.size:
        raise ValueError(f"seed field of {len(seed_bytes)} bytes != 8")
    if len(flags) != 1:
        raise ValueError(f"flags field of {len(flags)} bytes != 1")
    public = serialize.deserialize_public_key(public_bytes)
    private = serialize.deserialize_private_key(private_bytes)
    if public.params != private.params:
        raise ValueError(
            f"keypair mixes {public.params.name} and {private.params.name}"
        )
    try:
        backend = backend_bytes.decode("ascii")
    except UnicodeDecodeError:
        raise ValueError("backend name is not ASCII") from None
    return {
        "seed": _SEED.unpack(seed_bytes)[0],
        "backend": backend or None,
        "direct": bool(flags[0] & _FLAG_DIRECT),
        "keypair": KeyPair(public, private),
    }


# ----------------------------------------------------------------------
# Worker key install (wire-format encoded, no pickle)
# ----------------------------------------------------------------------
def encode_worker_key(
    name: str,
    generation: int,
    public_bytes: bytes,
    private_bytes: bytes,
) -> bytes:
    """One ``OP_WORKER_SET_KEY`` body: key ref + serialized keypair."""
    return protocol.encode_batch(
        [
            protocol.encode_key_ref(name, generation),
            public_bytes,
            private_bytes,
        ]
    )


def decode_worker_key(payload: bytes) -> "tuple[str, int, KeyPair]":
    """Strict inverse of :func:`encode_worker_key`."""
    fields = protocol.decode_batch(payload)
    if len(fields) != 3:
        raise ValueError(
            f"worker key install carries {len(fields)} fields, expected 3"
        )
    ref_bytes, public_bytes, private_bytes = fields
    name, generation, rest = protocol.decode_key_ref(ref_bytes)
    if rest:
        raise ValueError(
            f"worker key ref has {len(rest)} trailing bytes"
        )
    if generation == protocol.GENERATION_CURRENT:
        raise ValueError("worker key install must pin a concrete generation")
    public = serialize.deserialize_public_key(public_bytes)
    private = serialize.deserialize_private_key(private_bytes)
    if public.params != private.params:
        raise ValueError(
            f"keypair mixes {public.params.name} and {private.params.name}"
        )
    return name, generation, KeyPair(public, private)


# ----------------------------------------------------------------------
# Executor interface
# ----------------------------------------------------------------------
class Executor:
    """Where a coalesced batch computes; see the module docstring.

    ``key`` on :meth:`run_batch` is the per-batch key context for
    key-addressed operations: any object with ``name`` /
    ``generation`` / ``keypair`` / ``public_bytes`` / ``private_bytes``
    attributes (in practice a
    :class:`~repro.keystore.KeyMaterial`).  ``None`` means the default
    key — the engine's startup keypair, exactly the pre-keystore path.
    ``keys`` (mutually exclusive with ``key``) is the fused-window
    form: one key context *per body*, so a single batch mixes items
    under different named keys; ``key=k`` is shorthand for
    ``keys=[k] * len(bodies)``.
    """

    kind = "abstract"

    async def start(self) -> None:
        """Bring the engine up (spawn workers, broadcast config)."""

    async def close(self) -> None:
        """Tear the engine down; outstanding batches fail cleanly."""

    async def run_batch(
        self, opcode: int, bodies: Sequence[bytes], key=None, keys=None
    ) -> List[BatchResult]:
        """Execute one coalesced batch; one result per body, in order."""
        raise NotImplementedError

    @staticmethod
    def _normalize_keys(bodies: Sequence[bytes], key, keys):
        """Collapse the ``key``/``keys`` forms to one per-item vector."""
        if key is not None and keys is not None:
            raise ValueError("pass key or keys, not both")
        if key is not None:
            return [key] * len(bodies)
        if keys is not None and len(keys) != len(bodies):
            raise ValueError(
                f"key vector of {len(keys)} entries for "
                f"{len(bodies)} bodies"
            )
        return keys

    def stats(self) -> Dict:
        """Engine counters for the server's stats op."""
        raise NotImplementedError


class InlineExecutor(Executor):
    """Run batches synchronously on the event loop (PR 2 behavior)."""

    kind = "inline"

    def __init__(self, runner: OpRunner):
        self.runner = runner
        self._batches = 0
        self._items = 0

    async def run_batch(
        self, opcode: int, bodies: Sequence[bytes], key=None, keys=None
    ) -> List[BatchResult]:
        self._batches += 1
        self._items += len(bodies)
        keys = self._normalize_keys(bodies, key, keys)
        if keys is not None:
            return results_to_batch(
                self.runner.run(
                    opcode,
                    bodies,
                    keypairs=[material.keypair for material in keys],
                )
            )
        return results_to_batch(self.runner.run(opcode, bodies))

    def stats(self) -> Dict:
        return {
            "kind": self.kind,
            "workers": 0,
            "batches": self._batches,
            "items": self._items,
        }


class _Worker:
    """Parent-side handle on one worker process."""

    def __init__(self, index: int, proc: asyncio.subprocess.Process):
        self.index = index
        self.proc = proc
        #: Serializes write+drain on stdin: concurrent drain() calls on
        #: one transport are not supported before Python 3.11.
        self.write_lock = asyncio.Lock()
        self.jobs: Dict[int, asyncio.Future] = {}
        self.outstanding_items = 0
        self.jobs_done = 0
        self.items_done = 0
        self.reader_task: Optional[asyncio.Task] = None
        self.alive = True
        #: Named keys this shard has pinned, name -> generation.  The
        #: parent-side view of the worker's key cache; a respawned
        #: worker starts empty, and a shard-side LRU eviction shows up
        #: as a cache-miss response that triggers a reinstall.
        self.key_generations: Dict[str, int] = {}

    @property
    def pid(self) -> int:
        return self.proc.pid

    # The job table and key-generation view are mutated only through
    # these methods, so the shared state has exactly one writer class
    # (machine-checked: CONC001, `rlwe-repro lint`).

    def register_job(self, job_id: int, future: asyncio.Future) -> None:
        self.jobs[job_id] = future

    def forget_job(self, job_id: int) -> None:
        self.jobs.pop(job_id, None)

    def take_jobs(self) -> Dict[int, asyncio.Future]:
        """Detach and return every in-flight job (worker death path)."""
        jobs, self.jobs = dict(self.jobs), {}
        return jobs

    def pin_key(self, name: str, generation: int) -> None:
        self.key_generations[name] = generation

    def drop_key(self, name: str) -> None:
        self.key_generations.pop(name, None)


class WorkerPoolExecutor(Executor):
    """Shard coalesced batches across a pool of worker processes.

    Parameters
    ----------
    public_bytes / private_bytes:
        The serialized keypair broadcast to every worker at startup
        (:func:`repro.core.serialize.serialize_keypair` output).  The
        parameter set rides inside the keys' self-describing headers.
    seed:
        Base of the per-shard deterministic randomness streams.  Shard
        ``i`` on its ``g``-th (re)spawn seeds
        ``mix32(seed) ^ mix32(i + g*workers)`` — distinct for every
        spawn of this pool, so two shards never draw identical "fresh"
        KEM secrets and a respawned worker never replays the secrets
        its predecessor already issued.  Shard 0's first spawn uses
        ``seed`` unchanged, which is what lets ``workers=1`` replay the
        exact stream an inline server with the same seed would consume.
    backend:
        Compute-backend name each worker resolves locally (``None``
        honours the worker's ``REPRO_BACKEND`` environment).  Each
        worker pins its own backend instance, so NTT/sampler tables are
        precomputed once per shard and stay warm.
    workers:
        Pool size (>= 1).
    direct:
        Serve through the single-message scheme API (``max_batch=1``
        servers).
    respawn:
        Replace a worker that dies; only its own in-flight batches fail.
    spawn_timeout:
        Seconds to wait for a worker to come up (or for a live worker to
        appear when all shards died at once) before failing fast.
    job_timeout:
        Seconds a dispatched batch may take before the worker is
        declared wedged, killed (which fails its in-flight batches and
        triggers a respawn), and the batch erred — the fail-fast path
        for a worker that is alive but stuck.  ``None`` disables it.
    """

    kind = "pool"

    def __init__(
        self,
        public_bytes: bytes,
        private_bytes: bytes,
        *,
        seed: int = 0,
        backend: Optional[str] = None,
        workers: int = 2,
        direct: bool = False,
        respawn: bool = True,
        spawn_timeout: float = 60.0,
        job_timeout: Optional[float] = 120.0,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.job_timeout = job_timeout
        self._public_bytes = public_bytes
        self._private_bytes = private_bytes
        self._seed = seed
        self._backend = backend
        self._direct = direct
        self.workers = workers
        self._spawn_counts = [0] * workers
        self.respawn = respawn
        self.spawn_timeout = spawn_timeout
        self._pool: List[Optional[_Worker]] = [None] * workers
        self._respawn_tasks: "set[asyncio.Task]" = set()
        self._available = asyncio.Event()
        self._next_job_id = 0
        self._rr = 0
        self._respawns = 0
        self._key_installs = 0
        self._key_refetches = 0
        self._closing = False
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._started:
            return
        self._started = True
        spawned = await asyncio.gather(
            *(self._spawn(index) for index in range(self.workers)),
            return_exceptions=True,
        )
        failures = [w for w in spawned if isinstance(w, BaseException)]
        if failures:
            # Reap the siblings that did come up before re-raising.
            for worker in spawned:
                if isinstance(worker, _Worker):
                    if worker.reader_task is not None:
                        worker.reader_task.cancel()
                    worker.alive = False
                    worker.proc.kill()
                    await worker.proc.wait()
            raise failures[0]
        for index, worker in enumerate(spawned):
            self._pool[index] = worker
        self._available.set()

    def _shard_config(self, index: int) -> bytes:
        """The config broadcast for shard ``index``'s next spawn.

        ``index + generation*workers`` is unique per (shard, spawn),
        and ``_mix32`` is a bijection, so no two spawns of this pool
        ever share a randomness stream; counter 0 keeps the base seed
        verbatim for the inline-replay property.
        """
        generation = self._spawn_counts[index]
        self._spawn_counts[index] += 1
        counter = index + generation * self.workers
        shard_seed = (
            self._seed & _SEED_MASK
            if counter == 0
            else _mix32(self._seed) ^ _mix32(counter)
        )
        return encode_worker_config(
            self._public_bytes,
            self._private_bytes,
            seed=shard_seed,
            backend=self._backend,
            direct=self._direct,
        )

    async def _spawn(self, index: int) -> _Worker:
        config = self._shard_config(index)
        env = dict(os.environ)
        # The worker must import `repro` from wherever the parent did —
        # source checkouts run with PYTHONPATH=src, installs resolve
        # normally.
        package_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env["PYTHONPATH"] = package_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = await asyncio.create_subprocess_exec(
            sys.executable,
            "-m",
            "repro.service.worker",
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            env=env,
        )
        worker = _Worker(index, proc)
        try:
            protocol.write_frame(
                proc.stdin,
                protocol.encode_request(
                    Request(0, OP_WORKER_CONFIG, config),
                    protocol.IPC_MAX_FRAME_BYTES,
                ),
            )
            await proc.stdin.drain()
            payload = await asyncio.wait_for(
                protocol.read_frame(
                    proc.stdout, protocol.IPC_MAX_FRAME_BYTES
                ),
                timeout=self.spawn_timeout,
            )
            if payload is None:
                raise ServiceError(
                    STATUS_INTERNAL_ERROR,
                    f"worker {index} exited during config handshake",
                )
            response = protocol.decode_response(payload)
            if response.status != STATUS_OK:
                raise ServiceError(
                    response.status,
                    f"worker {index} rejected config: "
                    f"{response.body.decode(errors='replace')}",
                )
        except BaseException:
            # Including CancelledError: an abandoned handshake must not
            # leave an orphan process parked on its config read.
            proc.kill()
            await proc.wait()
            raise
        worker.reader_task = asyncio.ensure_future(self._read_loop(worker))
        return worker

    async def close(self) -> None:
        self._closing = True
        for task in list(self._respawn_tasks):
            task.cancel()
        if self._respawn_tasks:
            await asyncio.gather(
                *self._respawn_tasks, return_exceptions=True
            )
        workers = [w for w in self._pool if w is not None]
        self._pool = [None] * self.workers
        for worker in workers:
            worker.alive = False
            self._fail_jobs(
                worker,
                ServiceError(
                    STATUS_INTERNAL_ERROR, "executor is shutting down"
                ),
            )
            if worker.proc.returncode is None:
                try:
                    worker.proc.stdin.close()  # workers exit on EOF
                except (BrokenPipeError, ConnectionResetError):
                    pass
        for worker in workers:
            try:
                await asyncio.wait_for(worker.proc.wait(), timeout=10.0)
            except asyncio.TimeoutError:
                worker.proc.kill()
                await worker.proc.wait()
            if worker.reader_task is not None:
                worker.reader_task.cancel()
                try:
                    await worker.reader_task
                except (asyncio.CancelledError, Exception):  # lint: disable=EXC001(teardown: the cancelled reader's own failure must not abort close)
                    pass

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _pick_worker(self) -> Optional[_Worker]:
        """Least outstanding items; round-robin breaks ties."""
        alive = [w for w in self._pool if w is not None and w.alive]
        if not alive:
            return None
        self._rr += 1
        return min(
            (
                alive[(self._rr + offset) % len(alive)]
                for offset in range(len(alive))
            ),
            key=lambda w: w.outstanding_items,
        )

    async def _await_worker(self) -> _Worker:
        """A live worker, waiting out a full-pool respawn if needed."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.spawn_timeout
        while True:
            worker = self._pick_worker()
            if worker is not None:
                return worker
            # Every shard is down; wait for a respawn to land.
            if self._closing or loop.time() >= deadline:
                raise ServiceError(
                    STATUS_INTERNAL_ERROR,
                    "no live workers in the pool",
                )
            self._available.clear()
            try:
                await asyncio.wait_for(
                    self._available.wait(),
                    timeout=max(0.0, deadline - loop.time()),
                )
            except asyncio.TimeoutError:
                raise ServiceError(
                    STATUS_INTERNAL_ERROR,
                    "no live workers in the pool",
                ) from None

    async def _dispatch(
        self, worker: _Worker, opcode: int, body: bytes, items: int
    ):
        """One IPC job on ``worker``; returns the raw wire response."""
        loop = asyncio.get_running_loop()
        job_id = self._next_job_id
        self._next_job_id = (self._next_job_id + 1) & 0xFFFFFFFF
        if self._next_job_id == protocol.RESERVED_REQUEST_ID:
            self._next_job_id = 0
        future = loop.create_future()
        worker.register_job(job_id, future)
        worker.outstanding_items += items
        try:
            try:
                async with worker.write_lock:
                    protocol.write_frame(
                        worker.proc.stdin,
                        protocol.encode_request(
                            Request(job_id, opcode, body),
                            protocol.IPC_MAX_FRAME_BYTES,
                        ),
                    )
                    await worker.proc.stdin.drain()
            except (
                BrokenPipeError,
                ConnectionResetError,
                RuntimeError,
            ) as exc:
                # The reader loop may already have failed this job's
                # future (worker death races the drain); consume that
                # exception so it never logs as unretrieved.
                if future.cancelled():
                    pass
                elif future.done():
                    future.exception()
                else:
                    future.cancel()
                raise ServiceError(
                    STATUS_INTERNAL_ERROR,
                    f"worker {worker.index} (pid {worker.pid}) is "
                    f"unreachable: {exc}",
                ) from None
            try:
                response = await asyncio.wait_for(
                    future, timeout=self.job_timeout
                )
            except asyncio.TimeoutError:
                # Alive but wedged: kill it so supervision fails its
                # other in-flight batches and respawns the shard.
                if worker.proc.returncode is None:
                    worker.proc.kill()
                raise ServiceError(
                    STATUS_INTERNAL_ERROR,
                    f"worker {worker.index} (pid {worker.pid}) did not "
                    f"answer within {self.job_timeout:g}s; killed and "
                    f"respawning",
                ) from None
        finally:
            worker.forget_job(job_id)
            worker.outstanding_items -= items
        worker.jobs_done += 1
        worker.items_done += items
        return response

    async def _install_key(self, worker: _Worker, key) -> None:
        """Pin one named key generation in ``worker``'s cache."""
        body = encode_worker_key(
            key.name, key.generation, key.public_bytes, key.private_bytes
        )
        response = await self._dispatch(
            worker, protocol.OP_WORKER_SET_KEY, body, 0
        )
        if response.status != STATUS_OK:
            raise ServiceError(
                STATUS_INTERNAL_ERROR,
                f"worker {worker.index} rejected key "
                f"{key.name!r}@{key.generation}: "
                f"{response.body.decode(errors='replace')}",
            )
        worker.pin_key(key.name, key.generation)
        self._key_installs += 1

    async def _install_keys(self, worker: _Worker, materials) -> None:
        """Pin many named key generations in one IPC round trip."""
        if not materials:
            return
        if len(materials) == 1:
            await self._install_key(worker, materials[0])
            return
        body = protocol.encode_batch(
            [
                encode_worker_key(
                    material.name,
                    material.generation,
                    material.public_bytes,
                    material.private_bytes,
                )
                for material in materials
            ]
        )
        response = await self._dispatch(
            worker, protocol.OP_WORKER_SET_KEYS, body, 0
        )
        if response.status != STATUS_OK:
            raise ServiceError(
                STATUS_INTERNAL_ERROR,
                f"worker {worker.index} rejected a "
                f"{len(materials)}-key install: "
                f"{response.body.decode(errors='replace')}",
            )
        for material in materials:
            worker.pin_key(material.name, material.generation)
        self._key_installs += len(materials)

    @staticmethod
    def _missing_refs(body: bytes, refs):
        """The key refs a ``key_not_found`` response names.

        The worker reports the exact misses as a batch container of
        key refs; a legacy/human-text body falls back to "all of them".
        """
        try:
            out = []
            for part in protocol.decode_batch(body):
                name, generation, rest = protocol.decode_key_ref(part)
                if rest:
                    raise ValueError("trailing bytes in a miss ref")
                out.append((name, generation))
            if out:
                return out
        except ValueError:
            pass
        return list(refs)

    async def run_batch(
        self, opcode: int, bodies: Sequence[bytes], key=None, keys=None
    ) -> List[BatchResult]:
        if self._closing:
            raise ServiceError(
                STATUS_INTERNAL_ERROR, "executor is closed"
            )
        if not self._started:
            raise ServiceError(
                STATUS_INTERNAL_ERROR, "executor is not started"
            )
        keys = self._normalize_keys(bodies, key, keys)
        worker = await self._await_worker()
        if keys is None:
            response = await self._dispatch(
                worker, opcode, protocol.encode_batch(bodies), len(bodies)
            )
        else:
            # Fused window: dedupe the per-item key contexts into a
            # small ref table (first-seen order) + per-item row indices.
            wire_opcode = protocol.BASE_TO_KEYED[opcode]
            distinct = []
            index_of: Dict[Tuple[str, int], int] = {}
            rows: List[int] = []
            for material in keys:
                ident = (material.name, material.generation)
                row = index_of.get(ident)
                if row is None:
                    row = len(distinct)
                    index_of[ident] = row
                    distinct.append(material)
                rows.append(row)
            refs = [(m.name, m.generation) for m in distinct]
            body = protocol.encode_fused_batch(refs, rows, bodies)
            # Lazy pin: install every key of the window the shard does
            # not hold, in one IPC round trip.
            await self._install_keys(
                worker,
                [
                    m
                    for m in distinct
                    if worker.key_generations.get(m.name) != m.generation
                ],
            )
            response = await self._dispatch(
                worker, wire_opcode, body, len(bodies)
            )
            if response.status == protocol.STATUS_KEY_NOT_FOUND:
                # The shard's own LRU dropped key(s) of the window (or
                # a respawn raced our view of its cache): one refetch
                # round trip reinstalls every reported miss.
                missing = self._missing_refs(response.body, refs)
                for name, _generation in missing:
                    worker.drop_key(name)
                self._key_refetches += 1
                by_ref = {
                    (m.name, m.generation): m for m in distinct
                }
                await self._install_keys(
                    worker,
                    [by_ref[ref] for ref in missing if ref in by_ref],
                )
                response = await self._dispatch(
                    worker, wire_opcode, body, len(bodies)
                )
                if response.status == protocol.STATUS_KEY_NOT_FOUND:
                    # Evicted again between reinstall and dispatch
                    # (shard cache thrashing under more active keys
                    # than it holds).  The keys *exist* — report an
                    # engine-side failure, never key_not_found.
                    still = self._missing_refs(response.body, refs)
                    for name, _generation in still:
                        worker.drop_key(name)
                    name, generation = still[0]
                    raise ServiceError(
                        STATUS_INTERNAL_ERROR,
                        f"worker {worker.index} key cache is "
                        f"thrashing: {name!r}@{generation} "
                        f"evicted twice mid-batch",
                    )
        if response.status != STATUS_OK:
            raise ServiceError(
                response.status, response.body.decode(errors="replace")
            )
        results = protocol.decode_result_batch(response.body)
        if len(results) != len(bodies):
            raise ServiceError(
                STATUS_INTERNAL_ERROR,
                f"worker {worker.index} returned {len(results)} results "
                f"for {len(bodies)} items",
            )
        return results_to_batch(results)

    # ------------------------------------------------------------------
    # Worker supervision
    # ------------------------------------------------------------------
    async def _read_loop(self, worker: _Worker) -> None:
        try:
            while True:
                payload = await protocol.read_frame(
                    worker.proc.stdout, protocol.IPC_MAX_FRAME_BYTES
                )
                if payload is None:
                    break
                response = protocol.decode_response(payload)
                future = worker.jobs.get(response.request_id)
                if future is not None and not future.done():
                    future.set_result(response)
        except asyncio.CancelledError:
            raise
        except (OSError, ValueError):
            # Pipe boundary: a dying worker tears the stream (OSError)
            # or truncates/corrupts a frame (ValueError from
            # read_frame/decode_response); either way the exit path
            # below respawns the shard.
            pass
        finally:
            self._on_worker_exit(worker)

    def _fail_jobs(self, worker: _Worker, exc: ServiceError) -> None:
        jobs = worker.take_jobs()
        for future in jobs.values():
            if not future.done():
                future.set_exception(exc)

    def _on_worker_exit(self, worker: _Worker) -> None:
        if not worker.alive:
            return
        worker.alive = False
        self._fail_jobs(
            worker,
            ServiceError(
                STATUS_INTERNAL_ERROR,
                f"worker {worker.index} (pid {worker.pid}) died "
                f"mid-batch; the request was not completed",
            ),
        )
        if self._closing or not self.respawn:
            return
        self._respawns += 1
        task = asyncio.ensure_future(self._respawn(worker.index))
        self._respawn_tasks.add(task)
        task.add_done_callback(self._respawn_tasks.discard)

    async def _respawn(self, index: int) -> None:
        old = self._pool[index]
        self._pool[index] = None
        if old is not None and old.proc.returncode is None:
            old.proc.kill()
            await old.proc.wait()
        # Retry until the shard is back or the pool shuts down: a
        # transient spawn failure (fork pressure, slow imports) must
        # not permanently strand the slot.
        attempt = 0
        while not self._closing:
            try:
                replacement = await self._spawn(index)
            except Exception as exc:  # lint: disable=EXC001(supervisor: any spawn failure is logged and retried, the pool must stay up)
                attempt += 1
                print(
                    f"worker {index} respawn attempt {attempt} "
                    f"failed: {exc}",
                    file=sys.stderr,
                )
                await asyncio.sleep(min(0.5 * attempt, 5.0))
                continue
            self._pool[index] = replacement
            self._available.set()
            return

    # ------------------------------------------------------------------
    def alive_workers(self) -> int:
        return sum(
            1 for w in self._pool if w is not None and w.alive
        )

    def worker_pids(self) -> List[Optional[int]]:
        """Per-slot pids (``None`` while a slot respawns)."""
        return [w.pid if w is not None else None for w in self._pool]

    def stats(self) -> Dict:
        return {
            "kind": self.kind,
            "workers": self.workers,
            "alive": self.alive_workers(),
            "respawns": self._respawns,
            "key_installs": self._key_installs,
            "key_refetches": self._key_refetches,
            "shards": [
                {
                    "index": index,
                    "pid": worker.pid if worker is not None else None,
                    "alive": bool(worker is not None and worker.alive),
                    "jobs": worker.jobs_done if worker is not None else 0,
                    "items": (
                        worker.items_done if worker is not None else 0
                    ),
                    "outstanding_items": (
                        worker.outstanding_items
                        if worker is not None
                        else 0
                    ),
                    "cached_keys": (
                        len(worker.key_generations)
                        if worker is not None
                        else 0
                    ),
                }
                for index, worker in enumerate(self._pool)
            ],
        }


def pool_executor_for(
    scheme: RlweEncryptionScheme,
    keypair: KeyPair,
    *,
    seed: int = 0,
    workers: int = 2,
    direct: bool = False,
    backend: Optional[str] = None,
    respawn: bool = True,
    job_timeout: Optional[float] = 120.0,
) -> WorkerPoolExecutor:
    """A :class:`WorkerPoolExecutor` broadcasting ``keypair``.

    ``backend`` defaults to the scheme's own backend name so every
    shard runs the engine the caller benchmarked.
    """
    public_bytes, private_bytes = serialize.serialize_keypair(keypair)
    return WorkerPoolExecutor(
        public_bytes,
        private_bytes,
        seed=seed,
        backend=backend if backend is not None else scheme.backend.name,
        workers=workers,
        direct=direct,
        respawn=respawn,
        job_timeout=job_timeout,
    )
