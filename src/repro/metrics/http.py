"""A tiny asyncio HTTP listener for ``/metrics``, plus its scraper.

The service's wire protocol is a compact binary framing; Prometheus
speaks HTTP.  Rather than grow the binary protocol a new opcode (the
wire-contract artifact pins that surface closed), the server opens a
*second*, read-only listener that speaks just enough HTTP/1.1 to serve
``GET /metrics`` with ``Connection: close`` semantics — no keep-alive,
no chunking, no dependencies.  ``scrape()`` is the matching client,
used by the ``rlwe-repro metrics`` CLI and the run-table benchmark
runner.

Routes: ``/metrics`` (the exposition), ``/healthz`` (liveness probe
for CI smoke jobs); anything else is 404.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.metrics.registry import MetricsRegistry

__all__ = ["CONTENT_TYPE", "MetricsHttpServer", "ScrapeError", "scrape"]

#: The exposition-format content type Prometheus expects.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Header lines a request may send before we stop reading (sanity
#: bound; a scraper sends a handful).
_MAX_HEADER_LINES = 128

#: Longest request head line we accept.
_MAX_LINE_BYTES = 8192


class ScrapeError(RuntimeError):
    """A scrape failed: connect, HTTP status, or malformed response."""


class MetricsHttpServer:
    """Serve one registry's exposition over HTTP.

    Binds lazily in :meth:`start` (``port=0`` picks a free port, read
    it back from :attr:`port`); :meth:`close` stops accepting and
    waits for the listener to go away.  Request handling is
    per-connection, one request, ``Connection: close`` — the simplest
    contract that every HTTP client (including Prometheus itself)
    speaks.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.registry = registry
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        if self._server is None:
            raise RuntimeError("metrics server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "MetricsHttpServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            status, body = await self._respond(reader)
            payload = body.encode("utf-8")
            head = (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {CONTENT_TYPE}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n"
                f"\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> "tuple[str, str]":
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=5.0
            )
        except asyncio.TimeoutError:
            return "408 Request Timeout", "request timeout\n"
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) < 2:
            return "400 Bad Request", "malformed request line\n"
        method, path = parts[0], parts[1]
        # Drain (and ignore) the header block; a bounded loop so
        # garbage can't pin the handler.
        for _ in range(_MAX_HEADER_LINES):
            try:
                header = await asyncio.wait_for(
                    reader.readline(), timeout=5.0
                )
            except asyncio.TimeoutError:
                break
            if header in (b"\r\n", b"\n", b""):
                break
            if len(header) > _MAX_LINE_BYTES:
                return "431 Request Header Fields Too Large", "no\n"
        if method != "GET":
            return "405 Method Not Allowed", f"{method} not allowed\n"
        path = path.split("?", 1)[0]
        if path in ("/metrics", "/metrics/"):
            return "200 OK", self.registry.expose()
        if path == "/healthz":
            return "200 OK", "ok\n"
        return "404 Not Found", f"no route {path}\n"


async def scrape(
    host: str,
    port: int,
    *,
    path: str = "/metrics",
    timeout: float = 5.0,
) -> str:
    """Fetch one exposition over HTTP; returns the body text.

    Raises :class:`ScrapeError` on connection failure, a non-200
    status, or an unframeable response.
    """
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
    except (OSError, asyncio.TimeoutError) as exc:
        raise ScrapeError(
            f"cannot connect to http://{host}:{port}{path}: {exc}"
        ) from None
    try:
        request = (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        )
        writer.write(request.encode("latin-1"))
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(-1), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
    head, separator, body = raw.partition(b"\r\n\r\n")
    if not separator:
        raise ScrapeError(
            f"unframeable HTTP response from {host}:{port} "
            f"({len(raw)} bytes, no header/body separator)"
        )
    status_line = head.split(b"\r\n", 1)[0].decode("latin-1", "replace")
    status_parts = status_line.split()
    if len(status_parts) < 2 or status_parts[1] != "200":
        raise ScrapeError(
            f"scrape of http://{host}:{port}{path} failed: {status_line}"
        )
    return body.decode("utf-8")
