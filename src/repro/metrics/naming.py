"""Metric-name conventions, shared by the runtime and the OBS001 lint.

One module owns the naming contract so the registry (which rejects a
bad name at registration time), the exposition validator (which flags
one arriving over HTTP), and the ``OBS001`` AST checker (which flags
one at review time) can never drift apart:

* every metric name matches ``repro_[a-z0-9_]+`` — one namespace
  prefix for the whole reproduction, lowercase, no dots;
* counters end in ``_total`` (and nothing else does);
* histograms end in a unit suffix — ``_seconds``, ``_bytes``, or
  ``_rows`` (batch/window occupancy is measured in rows);
* gauges are current values and carry no required suffix, but they
  must not claim the counter's ``_total``.

``_rows`` extends the classic Prometheus unit set because the
coalescer's central observable — window occupancy — is a row count,
not a duration or a size in bytes.
"""

from __future__ import annotations

import re
from typing import Optional

__all__ = [
    "METRIC_NAME_PATTERN",
    "COUNTER_SUFFIX",
    "HISTOGRAM_SUFFIXES",
    "METRIC_KINDS",
    "metric_name_error",
    "validate_metric_name",
    "label_name_error",
    "validate_label_name",
]

#: The documented shape of every metric name (full match).
METRIC_NAME_PATTERN = "repro_[a-z0-9_]+"
_METRIC_NAME_RE = re.compile(f"^{METRIC_NAME_PATTERN}$")

#: Monotonic counters end in ``_total``; nothing else may.
COUNTER_SUFFIX = "_total"

#: Histograms measure one of these units.
HISTOGRAM_SUFFIXES = ("_seconds", "_bytes", "_rows")

#: The metric kinds the registry knows how to expose.
METRIC_KINDS = ("counter", "gauge", "histogram")

_LABEL_NAME_RE = re.compile("^[a-z][a-z0-9_]*$")

#: Label names the exposition format reserves for its own samples.
_RESERVED_LABELS = frozenset({"le"})


def metric_name_error(name: str, kind: str) -> Optional[str]:
    """The convention violation in ``name`` for a ``kind`` metric.

    Returns ``None`` when the name is clean, else one human-readable
    sentence (the OBS001 finding message and the registry's
    registration error share it).
    """
    if not _METRIC_NAME_RE.match(name):
        return (
            f"metric name {name!r} must match {METRIC_NAME_PATTERN} "
            f"(repro_ namespace prefix, lowercase, underscores only)"
        )
    if kind == "counter":
        if not name.endswith(COUNTER_SUFFIX):
            return (
                f"counter {name!r} must end in '{COUNTER_SUFFIX}' "
                f"(monotonic totals carry the unit suffix)"
            )
    elif kind == "histogram":
        if not name.endswith(HISTOGRAM_SUFFIXES):
            allowed = "/".join(HISTOGRAM_SUFFIXES)
            return (
                f"histogram {name!r} must end in a unit suffix "
                f"({allowed})"
            )
        if name.endswith(COUNTER_SUFFIX):
            return (
                f"histogram {name!r} must not end in "
                f"'{COUNTER_SUFFIX}' (reserved for counters)"
            )
    elif kind == "gauge":
        if name.endswith(COUNTER_SUFFIX):
            return (
                f"gauge {name!r} must not end in '{COUNTER_SUFFIX}' "
                f"(reserved for counters; gauges are current values)"
            )
    else:
        return f"unknown metric kind {kind!r}; expected {METRIC_KINDS}"
    return None


def validate_metric_name(name: str, kind: str) -> str:
    """``name``, or raise :class:`ValueError` with the convention error."""
    error = metric_name_error(name, kind)
    if error is not None:
        raise ValueError(error)
    return name


def label_name_error(name: str) -> Optional[str]:
    """The convention violation in label ``name``, or ``None``."""
    if not _LABEL_NAME_RE.match(name):
        return (
            f"label name {name!r} must match [a-z][a-z0-9_]* "
            f"(lowercase, starts with a letter)"
        )
    if name in _RESERVED_LABELS:
        return (
            f"label name {name!r} is reserved by the exposition "
            f"format (histogram bucket bounds)"
        )
    return None


def validate_label_name(name: str) -> str:
    """``name``, or raise :class:`ValueError` with the convention error."""
    error = label_name_error(name)
    if error is not None:
        raise ValueError(error)
    return name
