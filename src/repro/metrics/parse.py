"""Round-trip parser and validator for the text exposition format.

The acceptance gate for the whole metrics layer is phrased from the
*consumer* side: a scrape of a live ``--metrics-port`` server must
parse back into families where every family is typed, HELP'd, and
clean against the naming contract, and every histogram's buckets are
cumulative and end in ``+Inf``.  This module is that consumer: a
small, strict parser for the subset of the Prometheus 0.0.4 text
format the registry emits (plus escaped label values and help text),
and a validator that turns a parsed scrape into a list of problems.

The parser is deliberately independent of the registry's writer —
it re-derives structure from the text alone — so the round-trip test
(`expose -> parse -> validate`) actually checks the wire bytes, not a
shared in-memory representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.metrics.naming import METRIC_KINDS, metric_name_error

__all__ = [
    "ExpositionParseError",
    "Sample",
    "ParsedFamily",
    "parse_exposition",
    "validate_families",
    "validate_exposition",
]

#: TYPE values the parser accepts (the emitter uses the first three).
_KNOWN_KINDS = set(METRIC_KINDS) | {"summary", "untyped"}

#: Sample-name suffixes that attach to a histogram family.
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


class ExpositionParseError(ValueError):
    """The scrape is not valid exposition text (with line context)."""


@dataclass
class Sample:
    """One sample line: name, parsed labels, float value."""

    name: str
    labels: Dict[str, str]
    value: float


@dataclass
class ParsedFamily:
    """One metric family reassembled from HELP/TYPE/sample lines."""

    name: str
    kind: Optional[str] = None
    documentation: Optional[str] = None
    samples: List[Sample] = field(default_factory=list)


def _unescape_help(text: str) -> str:
    out: List[str] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char == "\\" and index + 1 < len(text):
            nxt = text[index + 1]
            if nxt == "\\":
                out.append("\\")
                index += 2
                continue
            if nxt == "n":
                out.append("\n")
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


def _parse_labels(line: str, start: int, lineno: int) -> Tuple[Dict[str, str], int]:
    """Parse ``{name="value",...}`` starting at ``line[start] == '{'``.

    Returns (labels, index just past the closing brace).  Handles the
    three label-value escapes (backslash, quote, newline) and rejects
    anything else the emitter could not have produced.
    """
    labels: Dict[str, str] = {}
    index = start + 1
    length = len(line)
    while True:
        if index >= length:
            raise ExpositionParseError(
                f"line {lineno}: unterminated label set"
            )
        if line[index] == "}":
            return labels, index + 1
        equals = line.find("=", index)
        if equals == -1:
            raise ExpositionParseError(
                f"line {lineno}: label without '=' near {line[index:]!r}"
            )
        name = line[index:equals]
        if not name:
            raise ExpositionParseError(
                f"line {lineno}: empty label name"
            )
        if equals + 1 >= length or line[equals + 1] != '"':
            raise ExpositionParseError(
                f"line {lineno}: label {name!r} value is not quoted"
            )
        value_chars: List[str] = []
        index = equals + 2
        while True:
            if index >= length:
                raise ExpositionParseError(
                    f"line {lineno}: unterminated value for label {name!r}"
                )
            char = line[index]
            if char == "\\":
                if index + 1 >= length:
                    raise ExpositionParseError(
                        f"line {lineno}: dangling backslash in label "
                        f"{name!r}"
                    )
                escaped = line[index + 1]
                if escaped == "\\":
                    value_chars.append("\\")
                elif escaped == '"':
                    value_chars.append('"')
                elif escaped == "n":
                    value_chars.append("\n")
                else:
                    raise ExpositionParseError(
                        f"line {lineno}: unknown escape "
                        f"'\\{escaped}' in label {name!r}"
                    )
                index += 2
                continue
            if char == '"':
                index += 1
                break
            value_chars.append(char)
            index += 1
        labels[name] = "".join(value_chars)
        if index < length and line[index] == ",":
            index += 1


def _parse_value(token: str, lineno: int) -> float:
    try:
        return float(token)
    except ValueError:
        raise ExpositionParseError(
            f"line {lineno}: {token!r} is not a sample value"
        ) from None


def _family_for_sample(
    families: "Dict[str, ParsedFamily]", sample_name: str
) -> ParsedFamily:
    family = families.get(sample_name)
    if family is not None:
        return family
    for suffix in _HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            base = families.get(sample_name[: -len(suffix)])
            if base is not None and base.kind == "histogram":
                return base
    # A sample with no declared family: keep it, and let the
    # validator flag the missing TYPE/HELP.
    family = ParsedFamily(name=sample_name)
    families[sample_name] = family
    return family


def parse_exposition(text: str) -> "Dict[str, ParsedFamily]":
    """Parse exposition text into families keyed by metric name."""
    families: Dict[str, ParsedFamily] = {}
    for lineno, raw in enumerate(text.split("\n"), start=1):
        line = raw.rstrip("\r")
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP ") :]
            name, _, documentation = rest.partition(" ")
            if not name:
                raise ExpositionParseError(
                    f"line {lineno}: HELP without a metric name"
                )
            family = families.setdefault(name, ParsedFamily(name=name))
            family.documentation = _unescape_help(documentation)
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE ") :]
            name, _, kind = rest.partition(" ")
            kind = kind.strip()
            if kind not in _KNOWN_KINDS:
                raise ExpositionParseError(
                    f"line {lineno}: unknown TYPE {kind!r} for {name!r}"
                )
            family = families.setdefault(name, ParsedFamily(name=name))
            family.kind = kind
            continue
        if line.startswith("#"):
            continue  # free-form comment
        brace = line.find("{")
        space = line.find(" ")
        if brace != -1 and (space == -1 or brace < space):
            sample_name = line[:brace]
            labels, index = _parse_labels(line, brace, lineno)
            value_token = line[index:].strip()
        else:
            if space == -1:
                raise ExpositionParseError(
                    f"line {lineno}: sample without a value: {line!r}"
                )
            sample_name = line[:space]
            labels = {}
            value_token = line[space:].strip()
        # A timestamp after the value is legal 0.0.4; the emitter
        # never writes one, so reject the ambiguity loudly.
        if " " in value_token:
            raise ExpositionParseError(
                f"line {lineno}: trailing token after value: "
                f"{value_token!r}"
            )
        if not sample_name:
            raise ExpositionParseError(
                f"line {lineno}: sample without a metric name"
            )
        value = _parse_value(value_token, lineno)
        family = _family_for_sample(families, sample_name)
        family.samples.append(Sample(sample_name, labels, value))
    return families


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def _histogram_groups(
    family: ParsedFamily,
) -> "Dict[Tuple[Tuple[str, str], ...], Dict[str, List[Sample]]]":
    """Histogram samples grouped by their non-``le`` label set."""
    groups: Dict[Tuple[Tuple[str, str], ...], Dict[str, List[Sample]]] = {}
    for sample in family.samples:
        key = tuple(
            sorted(
                (name, value)
                for name, value in sample.labels.items()
                if name != "le"
            )
        )
        group = groups.setdefault(
            key, {"bucket": [], "sum": [], "count": []}
        )
        for part in ("bucket", "sum", "count"):
            if sample.name == f"{family.name}_{part}":
                group[part].append(sample)
                break
    return groups


def _validate_histogram(family: ParsedFamily, problems: List[str]) -> None:
    for key, group in _histogram_groups(family).items():
        where = (
            f"{family.name}{{{', '.join(f'{n}={v!r}' for n, v in key)}}}"
            if key
            else family.name
        )
        buckets = group["bucket"]
        if not buckets:
            problems.append(f"{where}: histogram has no _bucket samples")
            continue
        bounds: List[Tuple[float, float]] = []
        inf_count: Optional[float] = None
        for sample in buckets:
            le = sample.labels.get("le")
            if le is None:
                problems.append(
                    f"{where}: _bucket sample without an le label"
                )
                continue
            bound = float(le)
            bounds.append((bound, sample.value))
            if le == "+Inf":
                inf_count = sample.value
        if inf_count is None:
            problems.append(f"{where}: no le=\"+Inf\" bucket")
        ordered = sorted(bounds, key=lambda pair: pair[0])
        if [b for b, _ in bounds] != [b for b, _ in ordered]:
            problems.append(f"{where}: buckets are not sorted by le")
        counts = [count for _, count in ordered]
        if any(b > a for a, b in zip(counts[1:], counts)):
            problems.append(
                f"{where}: bucket counts are not cumulative "
                f"(must be non-decreasing in le)"
            )
        if len(group["count"]) != 1:
            problems.append(
                f"{where}: expected exactly one _count sample, "
                f"got {len(group['count'])}"
            )
        elif inf_count is not None and (
            group["count"][0].value != inf_count
        ):
            problems.append(
                f"{where}: _count {group['count'][0].value} != "
                f"+Inf bucket {inf_count}"
            )
        if len(group["sum"]) != 1:
            problems.append(
                f"{where}: expected exactly one _sum sample, "
                f"got {len(group['sum'])}"
            )


def validate_families(
    families: "Dict[str, ParsedFamily]",
    *,
    require_naming: bool = False,
) -> List[str]:
    """Every problem in a parsed scrape, as human-readable strings.

    Checks that every family is typed and HELP'd, counter samples are
    non-negative, histogram buckets are cumulative with ``+Inf`` /
    ``_sum`` / ``_count``, and — with ``require_naming`` — that every
    family name passes the OBS001 naming contract.
    """
    problems: List[str] = []
    for name in sorted(families):
        family = families[name]
        if family.kind is None:
            problems.append(f"{name}: family has no # TYPE line")
        if not family.documentation:
            problems.append(f"{name}: family has no # HELP line")
        if require_naming and family.kind in METRIC_KINDS:
            error = metric_name_error(name, family.kind)
            if error is not None:
                problems.append(error)
        if family.kind == "counter":
            for sample in family.samples:
                if sample.value < 0:
                    problems.append(
                        f"{name}: counter sample is negative "
                        f"({sample.value})"
                    )
        elif family.kind == "histogram":
            _validate_histogram(family, problems)
    return problems


def validate_exposition(
    text: str, *, require_naming: bool = False
) -> "Dict[str, ParsedFamily]":
    """Parse and validate; raise with every problem, else families."""
    families = parse_exposition(text)
    problems = validate_families(families, require_naming=require_naming)
    if problems:
        raise ExpositionParseError(
            "invalid exposition:\n  " + "\n  ".join(problems)
        )
    return families
