"""Service instrumentation: every stack layer funnels into one registry.

:class:`ServiceMetrics` owns the metric catalog for the whole server
process and splits the work two ways:

* **hot-path observers** — the coalescer calls tiny observer hooks at
  window flush / completion time (items, window occupancy, flush
  latency, in-flight high-water), and the server times each request
  around dispatch.  These instruments are *the* source of truth: the
  legacy ``stats()`` wire view's per-op section is re-derived from
  them (:meth:`ServiceMetrics.ops_stats`), byte-identical to the
  pre-registry counter dicts.
* **scrape-time collectors** — executor shards, keystore lifecycle,
  and compiled-NTT stage totals already keep their own counters;
  collectors mirror them into registry instruments when a scrape
  happens, so those layers stay free of metrics plumbing.

Per-key label cardinality is bounded: after ``max_key_labels``
distinct key names, further keys aggregate under the ``~other`` label
value — a scrape's size must not grow with lifetime tenant count.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.metrics.registry import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
)

__all__ = [
    "ServiceMetrics",
    "BatcherObserver",
    "FusedObserver",
    "OVERFLOW_KEY_LABEL",
    "REQUIRED_FAMILIES",
    "WINDOW_ROW_BUCKETS",
]

#: Histogram buckets for window occupancy, in rows.
WINDOW_ROW_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

#: Label value that aggregates keys beyond the cardinality bound.
OVERFLOW_KEY_LABEL = "~other"

#: Families every instrumented server exposes from startup — the CI
#: metrics-smoke job asserts each of these appears in a scrape.
REQUIRED_FAMILIES = (
    "repro_build_info",
    "repro_requests_total",
    "repro_request_seconds",
    "repro_coalescer_items_total",
    "repro_coalescer_flushes_total",
    "repro_coalescer_window_rows",
    "repro_coalescer_flush_seconds",
    "repro_coalescer_inflight_flushes",
    "repro_fused_windows_total",
    "repro_fused_rows_total",
    "repro_key_rows_total",
    "repro_executor_workers",
    "repro_executor_jobs_total",
    "repro_keystore_keys",
    "repro_keystore_materializations_total",
)


class BatcherObserver:
    """Hot-path hooks one :class:`MicroBatcher` calls for one op."""

    __slots__ = (
        "_items",
        "_flushes",
        "_window_rows",
        "_flush_seconds",
        "_inflight",
        "_max_inflight",
        "_max_batch",
    )

    def __init__(self, metrics: "ServiceMetrics", op: str):
        self._items = metrics.coalescer_items.labels(op)
        self._flushes = metrics.coalescer_flushes.labels(op)
        self._window_rows = metrics.coalescer_window_rows.labels(op)
        self._flush_seconds = metrics.coalescer_flush_seconds.labels(op)
        self._inflight = metrics.coalescer_inflight.labels(op)
        self._max_inflight = metrics.coalescer_max_inflight.labels(op)
        self._max_batch = metrics.coalescer_max_batch.labels(op)

    def window_flushed(self, rows: int) -> None:
        """A window left the queue with ``rows`` items."""
        self._items.inc(rows)
        self._flushes.inc()
        self._window_rows.observe(rows)
        self._max_batch.set_max(rows)

    def flush_finished(self, rows: int, seconds: float) -> None:
        """A flush (sync or async) completed after ``seconds``."""
        self._flush_seconds.observe(seconds)

    def inflight_changed(self, current: int) -> None:
        """The number of in-flight async flushes changed."""
        self._inflight.set(current)
        self._max_inflight.set_max(current)


class FusedObserver:
    """Hot-path hooks one :class:`FusedBatcherGroup` calls for one op."""

    __slots__ = ("_metrics", "_op", "_windows", "_rows", "_window_keys", "_max_keys")

    def __init__(self, metrics: "ServiceMetrics", op: str):
        self._metrics = metrics
        self._op = op
        self._windows = metrics.fused_windows.labels(op)
        self._rows = metrics.fused_rows.labels(op)
        self._window_keys = metrics.fused_window_keys.labels(op)
        self._max_keys = metrics.fused_max_keys.labels(op)

    def window_flushed(self, rows_by_key: "Dict[str, int]") -> None:
        """A fused window flushed carrying ``rows_by_key`` rows."""
        rows = sum(rows_by_key.values())
        self._windows.inc()
        self._rows.inc(rows)
        self._window_keys.inc(len(rows_by_key))
        self._max_keys.set_max(len(rows_by_key))
        for key, key_rows in rows_by_key.items():
            self._metrics.key_rows.labels(
                self._op, self._metrics.key_label(key)
            ).inc(key_rows)


class ServiceMetrics:
    """The server's metric catalog over one :class:`MetricsRegistry`."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        max_key_labels: int = 64,
    ):
        if max_key_labels < 1:
            raise ValueError(
                f"max_key_labels must be >= 1, got {max_key_labels}"
            )
        self.registry = registry if registry is not None else MetricsRegistry()
        self.max_key_labels = max_key_labels
        self._key_labels: "set[str]" = set()
        registry = self.registry

        # Request layer ------------------------------------------------
        self.build_info = registry.gauge(
            "repro_build_info",
            "Constant 1, labelled with the serving version, parameter "
            "set, and backend.",
            ("version", "params", "backend"),
        )
        self.requests = registry.counter(
            "repro_requests_total",
            "Service requests handled, by operation and response status.",
            ("op", "status"),
        )
        self.request_seconds = registry.histogram(
            "repro_request_seconds",
            "End-to-end request latency (dispatch to response), by "
            "operation.",
            ("op",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self.key_requests = registry.counter(
            "repro_key_requests_total",
            "Key-addressed crypto requests, by operation and key "
            "(bounded cardinality; overflow keys aggregate under "
            "'~other').",
            ("op", "key"),
        )
        self.key_request_seconds = registry.histogram(
            "repro_key_request_seconds",
            "Key-addressed request latency from queue to response, by "
            "operation and key.",
            ("op", "key"),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )

        # Coalescer ----------------------------------------------------
        self.coalescer_items = registry.counter(
            "repro_coalescer_items_total",
            "Items flushed through each operation's coalescer window.",
            ("op",),
        )
        self.coalescer_flushes = registry.counter(
            "repro_coalescer_flushes_total",
            "Windows flushed per operation.",
            ("op",),
        )
        self.coalescer_window_rows = registry.histogram(
            "repro_coalescer_window_rows",
            "Window occupancy (items per flushed window) per operation.",
            ("op",),
            buckets=WINDOW_ROW_BUCKETS,
        )
        self.coalescer_flush_seconds = registry.histogram(
            "repro_coalescer_flush_seconds",
            "Flush latency (window handoff to batch completion) per "
            "operation.",
            ("op",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self.coalescer_inflight = registry.gauge(
            "repro_coalescer_inflight_flushes",
            "Async flushes currently in flight per operation.",
            ("op",),
        )
        self.coalescer_max_inflight = registry.gauge(
            "repro_coalescer_max_inflight_flushes",
            "High-water mark of concurrently in-flight flushes per "
            "operation.",
            ("op",),
        )
        self.coalescer_max_batch = registry.gauge(
            "repro_coalescer_max_batch_rows",
            "Largest window (rows) any flush of this operation has "
            "carried.",
            ("op",),
        )

        # Cross-key fusion ---------------------------------------------
        self.fused_windows = registry.counter(
            "repro_fused_windows_total",
            "Fused cross-key windows flushed per operation.",
            ("op",),
        )
        self.fused_rows = registry.counter(
            "repro_fused_rows_total",
            "Rows carried by fused cross-key windows per operation.",
            ("op",),
        )
        self.fused_window_keys = registry.counter(
            "repro_fused_window_keys_total",
            "Cumulative distinct keys over all fused windows per "
            "operation (divide by repro_fused_windows_total for the "
            "keys-per-window mean).",
            ("op",),
        )
        self.fused_max_keys = registry.gauge(
            "repro_fused_max_keys_in_window",
            "Widest per-flush key table any fused window has carried.",
            ("op",),
        )
        self.key_rows = registry.counter(
            "repro_key_rows_total",
            "Rows served per key and operation through fused windows.",
            ("op", "key"),
        )

        # Executor mirrors ---------------------------------------------
        self.executor_workers = registry.gauge(
            "repro_executor_workers",
            "Configured executor worker processes (0 = inline engine).",
        )
        self.executor_alive = registry.gauge(
            "repro_executor_alive_workers",
            "Worker processes currently alive.",
        )
        self.executor_respawns = registry.counter(
            "repro_executor_respawns_total",
            "Worker processes respawned after a crash or stall.",
        )
        self.executor_key_installs = registry.counter(
            "repro_executor_key_installs_total",
            "Named-key materials installed into worker shards.",
        )
        self.executor_key_refetches = registry.counter(
            "repro_executor_key_refetches_total",
            "Worker cache misses that forced a key re-install.",
        )
        self.executor_jobs = registry.counter(
            "repro_executor_jobs_total",
            "Batch jobs completed, by shard ('inline' for the inline "
            "engine).",
            ("shard",),
        )
        self.executor_items = registry.counter(
            "repro_executor_items_total",
            "Items computed, by shard ('inline' for the inline engine).",
            ("shard",),
        )
        self.executor_outstanding = registry.gauge(
            "repro_executor_outstanding_items",
            "Items currently dispatched to a shard and not yet "
            "completed.",
            ("shard",),
        )
        self.executor_cached_keys = registry.gauge(
            "repro_executor_cached_keys",
            "Named keys currently cached in a worker shard.",
            ("shard",),
        )

        # Keystore mirrors ---------------------------------------------
        self.keystore_keys = registry.gauge(
            "repro_keystore_keys", "Key slots (active + retired)."
        )
        self.keystore_active = registry.gauge(
            "repro_keystore_active_keys", "Key slots in the active state."
        )
        self.keystore_retired = registry.gauge(
            "repro_keystore_retired_keys", "Key slots retired."
        )
        self.keystore_hot = registry.gauge(
            "repro_keystore_hot_keys",
            "Named keys currently materialized in the hot LRU.",
        )
        self.keystore_hot_capacity = registry.gauge(
            "repro_keystore_hot_capacity", "Hot LRU capacity."
        )
        self.keystore_pinned = registry.gauge(
            "repro_keystore_pinned_keys",
            "Keys pinned against eviction by in-flight fused windows.",
        )
        self.keystore_created = registry.counter(
            "repro_keystore_created_total", "Keys created."
        )
        self.keystore_rotated = registry.counter(
            "repro_keystore_rotated_total", "Key rotations."
        )
        self.keystore_retired_ops = registry.counter(
            "repro_keystore_retired_total", "Key retirements."
        )
        self.keystore_materializations = registry.counter(
            "repro_keystore_materializations_total",
            "Key materializations (cold generations from derived "
            "seeds).",
        )
        self.keystore_hot_hits = registry.counter(
            "repro_keystore_hot_hits_total",
            "Materialization requests served from the hot LRU.",
        )
        self.keystore_evictions = registry.counter(
            "repro_keystore_evictions_total",
            "Hot-LRU evictions of materialized key material.",
        )

        # Compiled NTT stage profile -----------------------------------
        self.ntt_stage_seconds = registry.counter(
            "repro_ntt_stage_seconds_total",
            "Cumulative in-kernel seconds per NTT stage (bitrev, "
            "stage_m*, reduce, scale) and transform direction; "
            "populated when the compiled backend's stage profiling is "
            "enabled.",
            ("direction", "stage"),
        )
        self.ntt_profiled_batches = registry.counter(
            "repro_ntt_profiled_batches_total",
            "Batched transforms measured by the in-kernel stage "
            "profiler, by direction.",
            ("direction",),
        )

    # ------------------------------------------------------------------
    # Hot-path observers
    # ------------------------------------------------------------------
    def batcher_observer(self, op: str) -> BatcherObserver:
        """The per-op observer a :class:`MicroBatcher` calls."""
        return BatcherObserver(self, op)

    def fused_observer(self, op: str) -> FusedObserver:
        """The per-op observer a :class:`FusedBatcherGroup` calls."""
        return FusedObserver(self, op)

    def key_label(self, key: str) -> str:
        """``key`` as a label value, within the cardinality bound."""
        if key in self._key_labels:
            return key
        if len(self._key_labels) >= self.max_key_labels:
            return OVERFLOW_KEY_LABEL
        self._key_labels.add(key)
        return key

    def observe_request(
        self, op: str, status: str, seconds: float
    ) -> None:
        """One handled request: count by status, time by op."""
        self.requests.labels(op, status).inc()
        self.request_seconds.labels(op).observe(seconds)

    def observe_keyed_request(
        self, op: str, key: str, seconds: float
    ) -> None:
        """One key-addressed request, from queue entry to response."""
        label = self.key_label(key)
        self.key_requests.labels(op, label).inc()
        self.key_request_seconds.labels(op, label).observe(seconds)

    # ------------------------------------------------------------------
    # The legacy stats() view, derived from the registry
    # ------------------------------------------------------------------
    def ops_stats(self, op_names: Iterable[str]) -> Dict[str, Dict]:
        """The ``stats()["ops"]`` section, from registry instruments.

        Shape and values are pinned byte-stable against the
        pre-registry per-batcher counter dicts: same keys, same order,
        same int/float types, same arithmetic.
        """
        out: Dict[str, Dict] = {}
        for op in op_names:
            items = self.coalescer_items.labels(op).value
            flushes = self.coalescer_flushes.labels(op).value
            flush_seconds = self.coalescer_flush_seconds.labels(op).sum
            out[op] = {
                "items": items,
                "flushes": flushes,
                "max_batch_seen": int(
                    self.coalescer_max_batch.labels(op).value
                ),
                "flush_seconds": flush_seconds,
                "inflight_max": int(
                    self.coalescer_max_inflight.labels(op).value
                ),
                "mean_batch_size": items / flushes if flushes else 0.0,
                "mean_flush_ms": (
                    flush_seconds / flushes * 1e3 if flushes else 0.0
                ),
                "inflight_flushes": int(
                    self.coalescer_inflight.labels(op).value
                ),
            }
        return out

    # ------------------------------------------------------------------
    # Scrape-time collectors
    # ------------------------------------------------------------------
    def register_build_info(
        self, version: str, params: str, backend: str
    ) -> None:
        self.build_info.labels(version, params, backend).set(1)

    def register_executor(self, executor) -> None:
        """Mirror ``executor.stats()`` into the registry per scrape."""

        def collect() -> None:
            stats = executor.stats()
            self.executor_workers.set(stats.get("workers", 0))
            self.executor_alive.set(
                stats.get("alive", stats.get("workers", 0))
            )
            self.executor_respawns.set_floor(stats.get("respawns", 0))
            self.executor_key_installs.set_floor(
                stats.get("key_installs", 0)
            )
            self.executor_key_refetches.set_floor(
                stats.get("key_refetches", 0)
            )
            shards = stats.get("shards")
            if shards is None:
                self.executor_jobs.labels("inline").set_floor(
                    stats.get("batches", 0)
                )
                self.executor_items.labels("inline").set_floor(
                    stats.get("items", 0)
                )
                return
            for shard in shards:
                label = str(shard["index"])
                self.executor_jobs.labels(label).set_floor(shard["jobs"])
                self.executor_items.labels(label).set_floor(
                    shard["items"]
                )
                self.executor_outstanding.labels(label).set(
                    shard["outstanding_items"]
                )
                self.executor_cached_keys.labels(label).set(
                    shard["cached_keys"]
                )

        self.registry.register_collector(collect)

    def register_keystore(self, keystore) -> None:
        """Mirror ``keystore.stats()`` into the registry per scrape."""

        def collect() -> None:
            stats = keystore.stats()
            self.keystore_keys.set(stats["keys"])
            self.keystore_active.set(stats["active"])
            self.keystore_retired.set(stats["retired"])
            self.keystore_hot.set(stats["hot"])
            self.keystore_hot_capacity.set(stats["hot_capacity"])
            self.keystore_pinned.set(stats["pinned"])
            self.keystore_created.set_floor(stats["created"])
            self.keystore_rotated.set_floor(stats["rotated"])
            self.keystore_retired_ops.set_floor(stats["retired"])
            self.keystore_materializations.set_floor(
                stats["materializations"]
            )
            self.keystore_hot_hits.set_floor(stats["hot_hits"])
            self.keystore_evictions.set_floor(stats["evictions"])

        self.registry.register_collector(collect)

    def register_ntt_backend(self, backend) -> None:
        """Mirror compiled-NTT stage totals, when the backend has them.

        A no-op for backends without ``stage_totals()`` (python,
        numpy): the stage families stay registered but empty, so the
        scrape shape is engine-independent.
        """
        totals_fn = getattr(backend, "stage_totals", None)
        if totals_fn is None:
            return

        def collect() -> None:
            totals = totals_fn()
            for direction, stages in totals.get("stages", {}).items():
                for stage, seconds in stages.items():
                    self.ntt_stage_seconds.labels(
                        direction, stage
                    ).set_floor(seconds)
            for direction, batches in totals.get("batches", {}).items():
                self.ntt_profiled_batches.labels(direction).set_floor(
                    batches
                )

        self.registry.register_collector(collect)

    def preregister_ops(self, op_names: Sequence[str]) -> None:
        """Create the per-op children now, so a startup scrape already
        shows every batchable operation at zero."""
        for op in op_names:
            self.batcher_observer(op)
            self.fused_observer(op)
            self.request_seconds.labels(op)
