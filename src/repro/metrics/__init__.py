"""Dependency-free metrics: registry, exposition, HTTP, instruments.

The observability layer the ROADMAP's "experiment harness +
observability" item calls for, modeled on the muBench experiment
methodology: instruments funnel into one
:class:`~repro.metrics.registry.MetricsRegistry`, a tiny asyncio HTTP
listener (:mod:`repro.metrics.http`) exposes it at ``/metrics`` in the
Prometheus text format, and the run-table benchmark runner
(``benchmarks/runner.py``) scrapes it per cell.  The naming contract
(:mod:`repro.metrics.naming`) is shared with the ``OBS001`` lint
checker, and :mod:`repro.metrics.parse` is the consumer-side
round-trip validator the acceptance gate runs against a live scrape.
"""

from repro.metrics.naming import (
    COUNTER_SUFFIX,
    HISTOGRAM_SUFFIXES,
    METRIC_NAME_PATTERN,
    metric_name_error,
    validate_metric_name,
)
from repro.metrics.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.metrics.parse import (
    ExpositionParseError,
    ParsedFamily,
    Sample,
    parse_exposition,
    validate_exposition,
    validate_families,
)
from repro.metrics.http import (
    CONTENT_TYPE,
    MetricsHttpServer,
    ScrapeError,
    scrape,
)
from repro.metrics.instruments import (
    OVERFLOW_KEY_LABEL,
    REQUIRED_FAMILIES,
    WINDOW_ROW_BUCKETS,
    BatcherObserver,
    FusedObserver,
    ServiceMetrics,
)

__all__ = [
    "COUNTER_SUFFIX",
    "HISTOGRAM_SUFFIXES",
    "METRIC_NAME_PATTERN",
    "metric_name_error",
    "validate_metric_name",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "ExpositionParseError",
    "ParsedFamily",
    "Sample",
    "parse_exposition",
    "validate_exposition",
    "validate_families",
    "CONTENT_TYPE",
    "MetricsHttpServer",
    "ScrapeError",
    "scrape",
    "OVERFLOW_KEY_LABEL",
    "REQUIRED_FAMILIES",
    "WINDOW_ROW_BUCKETS",
    "BatcherObserver",
    "FusedObserver",
    "ServiceMetrics",
]
