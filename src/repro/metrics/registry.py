"""A dependency-free Prometheus-style metrics registry.

Three instrument kinds — :class:`Counter` (monotonic), :class:`Gauge`
(current value), :class:`Histogram` (configurable buckets, cumulative
exposition) — with label support and text-format exposition per the
Prometheus 0.0.4 format: ``# HELP`` / ``# TYPE`` headers, escaped help
text and label values, ``_bucket{le=...}`` cumulative counts ending in
``+Inf``, plus ``_sum`` and ``_count`` samples.

Design constraints, in order:

* **stdlib only** — the container bakes no prometheus_client; the
  registry is the whole client.
* **thread-safe** — executor shards and their reader threads update
  counters concurrently with event-loop scrapes; one registry
  :class:`threading.RLock` serializes every update and snapshot.
* **exact integer arithmetic** — a counter incremented with ints stays
  an int, so the server's legacy ``stats()`` view (derived from these
  instruments) renders byte-identically to the pre-registry counter
  dicts.
* **deterministic output** — families sort by name and children by
  label values, so two scrapes of identical state are byte-identical
  (the round-trip tests diff them directly).

Collector callbacks (:meth:`MetricsRegistry.register_collector`) run
at scrape time, mirroring externally-owned counters — executor shard
stats, keystore lifecycle counters, compiled-NTT stage totals — into
registry instruments without hot-path hooks in those layers.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.metrics.naming import validate_label_name, validate_metric_name

__all__ = [
    "MetricError",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "escape_help",
    "escape_label_value",
    "format_value",
]

#: Default histogram buckets for request/flush latencies, in seconds:
#: 0.5 ms to 10 s, roughly geometric, matching the service's observed
#: range from in-process microbenchmarks to pool round-trips.
DEFAULT_LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class MetricError(ValueError):
    """Invalid registration or use of a metric."""


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` line: backslash and newline."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(text: str) -> str:
    """Escape a label value: backslash, double-quote, newline."""
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_value(value: "int | float") -> str:
    """Render a sample value: ints bare, floats via ``repr``."""
    if isinstance(value, bool):  # bools are ints; refuse the ambiguity
        raise MetricError("sample values must be int or float, not bool")
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(value)


def _label_pairs(
    labelnames: Tuple[str, ...], labelvalues: Tuple[str, ...]
) -> str:
    return ",".join(
        f'{name}="{escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    )


class _Child:
    """One labelled time series; updates hold the registry lock."""

    __slots__ = ("_lock",)

    def __init__(self, lock: threading.RLock):
        self._lock = lock


class CounterValue(_Child):
    """A monotonically non-decreasing count."""

    __slots__ = ("_value",)

    def __init__(self, lock: threading.RLock):
        super().__init__(lock)
        self._value: "int | float" = 0

    def inc(self, amount: "int | float" = 1) -> None:
        if amount < 0:
            raise MetricError(
                f"counters only go up; inc({amount}) is negative"
            )
        with self._lock:
            self._value += amount

    def set_floor(self, value: "int | float") -> None:
        """Raise the count to ``value`` if larger (collector mirrors).

        Mirroring an externally-owned monotonic counter into the
        registry at scrape time must never move it backwards — e.g. a
        respawned worker restarts its local counts while the mirror
        keeps the high-water total.
        """
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> "int | float":
        with self._lock:
            return self._value


class GaugeValue(_Child):
    """A value that can go up and down."""

    __slots__ = ("_value",)

    def __init__(self, lock: threading.RLock):
        super().__init__(lock)
        self._value: "int | float" = 0

    def set(self, value: "int | float") -> None:
        with self._lock:
            self._value = value

    def set_max(self, value: "int | float") -> None:
        """Keep the high-water mark of ``value`` seen so far."""
        with self._lock:
            if value > self._value:
                self._value = value

    def inc(self, amount: "int | float" = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: "int | float" = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> "int | float":
        with self._lock:
            return self._value


class HistogramValue(_Child):
    """Observations bucketed by upper bound (exposed cumulatively)."""

    __slots__ = ("_uppers", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.RLock, uppers: Tuple[float, ...]):
        super().__init__(lock)
        self._uppers = uppers
        self._counts = [0] * len(uppers)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: "int | float") -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for index, upper in enumerate(self._uppers):
                if value <= upper:
                    self._counts[index] += 1
                    return
            # Larger than every finite bound: only the implicit +Inf
            # bucket (== _count) holds it.

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> Tuple[List[int], float, int]:
        """(per-bucket counts (non-cumulative), sum, count), atomically."""
        with self._lock:
            return list(self._counts), self._sum, self._count

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear bucket interpolation.

        Assumes non-negative observations (bucket lower edge 0).
        Observations beyond the last finite bound clamp to that bound —
        a deliberate under-estimate rather than a fabricated +Inf.
        Monotonic in ``q``, which is what the loadgen percentile
        report relies on (p99 >= p95 >= p50).
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile must be in [0, 1], got {q}")
        counts, _, total = self.snapshot()
        if total == 0:
            return 0.0
        target = q * total
        lower = 0.0
        cumulative = 0
        for upper, count in zip(self._uppers, counts):
            if count:
                cumulative += count
                if cumulative >= target:
                    inside = max(target - (cumulative - count), 0.0)
                    return lower + (upper - lower) * inside / count
            lower = upper
        return self._uppers[-1] if self._uppers else 0.0


class MetricFamily:
    """One named metric and its labelled children."""

    kind = "untyped"
    _child_factory: Callable[..., _Child]

    def __init__(
        self,
        name: str,
        documentation: str,
        labelnames: Sequence[str],
        lock: threading.RLock,
    ):
        if not documentation:
            raise MetricError(
                f"metric {name!r} needs non-empty documentation "
                f"(the # HELP line)"
            )
        for labelname in labelnames:
            try:
                validate_label_name(labelname)
            except ValueError as exc:
                raise MetricError(str(exc)) from None
        self.name = name
        self.documentation = documentation
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._children: Dict[Tuple[str, ...], _Child] = {}

    def _new_child(self) -> _Child:
        raise NotImplementedError

    def labels(self, *labelvalues: str) -> _Child:
        """The child for these label values (created on first use)."""
        values = tuple(str(value) for value in labelvalues)
        if len(values) != len(self.labelnames):
            raise MetricError(
                f"{self.name} takes {len(self.labelnames)} label "
                f"value(s) {self.labelnames}, got {len(values)}"
            )
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._new_child()
                self._children[values] = child
            return child

    def children(self) -> List[Tuple[Tuple[str, ...], _Child]]:
        """(labelvalues, child) pairs, sorted for deterministic output."""
        with self._lock:
            return sorted(self._children.items())

    def _require_unlabelled(self) -> _Child:
        if self.labelnames:
            raise MetricError(
                f"{self.name} is labelled by {self.labelnames}; "
                f"call .labels(...) first"
            )
        return self.labels()


class Counter(MetricFamily):
    kind = "counter"

    def _new_child(self) -> CounterValue:
        return CounterValue(self._lock)

    def labels(self, *labelvalues: str) -> CounterValue:
        return super().labels(*labelvalues)  # type: ignore[return-value]

    def inc(self, amount: "int | float" = 1) -> None:
        self._require_unlabelled().inc(amount)  # type: ignore[attr-defined]

    def set_floor(self, value: "int | float") -> None:
        self._require_unlabelled().set_floor(value)  # type: ignore[attr-defined]

    @property
    def value(self) -> "int | float":
        return self._require_unlabelled().value  # type: ignore[attr-defined]


class Gauge(MetricFamily):
    kind = "gauge"

    def _new_child(self) -> GaugeValue:
        return GaugeValue(self._lock)

    def labels(self, *labelvalues: str) -> GaugeValue:
        return super().labels(*labelvalues)  # type: ignore[return-value]

    def set(self, value: "int | float") -> None:
        self._require_unlabelled().set(value)  # type: ignore[attr-defined]

    def set_max(self, value: "int | float") -> None:
        self._require_unlabelled().set_max(value)  # type: ignore[attr-defined]

    def inc(self, amount: "int | float" = 1) -> None:
        self._require_unlabelled().inc(amount)  # type: ignore[attr-defined]

    def dec(self, amount: "int | float" = 1) -> None:
        self._require_unlabelled().dec(amount)  # type: ignore[attr-defined]

    @property
    def value(self) -> "int | float":
        return self._require_unlabelled().value  # type: ignore[attr-defined]


class Histogram(MetricFamily):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        documentation: str,
        labelnames: Sequence[str],
        lock: threading.RLock,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        uppers = tuple(float(upper) for upper in buckets)
        if not uppers:
            raise MetricError(f"{name!r} needs at least one bucket")
        if any(not math.isfinite(upper) for upper in uppers):
            raise MetricError(
                f"{name!r} buckets must be finite; +Inf is implicit"
            )
        if list(uppers) != sorted(set(uppers)):
            raise MetricError(
                f"{name!r} buckets must be strictly increasing: {uppers}"
            )
        self.buckets = uppers
        super().__init__(name, documentation, labelnames, lock)

    def _new_child(self) -> HistogramValue:
        return HistogramValue(self._lock, self.buckets)

    def labels(self, *labelvalues: str) -> HistogramValue:
        return super().labels(*labelvalues)  # type: ignore[return-value]

    def observe(self, value: "int | float") -> None:
        self._require_unlabelled().observe(value)  # type: ignore[attr-defined]

    def quantile(self, q: float) -> float:
        return self._require_unlabelled().quantile(q)  # type: ignore[attr-defined]

    @property
    def sum(self) -> float:
        return self._require_unlabelled().sum  # type: ignore[attr-defined]

    @property
    def count(self) -> int:
        return self._require_unlabelled().count  # type: ignore[attr-defined]


class MetricsRegistry:
    """Registration, collection, and text-format exposition.

    ``strict_names=True`` (the default) enforces the repo's naming
    contract (:mod:`repro.metrics.naming`) at registration time;
    tests exercising the exposition format itself may relax it.
    """

    def __init__(self, *, strict_names: bool = True):
        self._lock = threading.RLock()
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Callable[[], None]] = []
        self.strict_names = strict_names

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _register(self, family: MetricFamily) -> MetricFamily:
        with self._lock:
            if family.name in self._families:
                raise MetricError(
                    f"metric {family.name!r} is already registered"
                )
            self._families[family.name] = family
            return family

    def _checked_name(self, name: str, kind: str) -> str:
        if not self.strict_names:
            return name
        try:
            return validate_metric_name(name, kind)
        except ValueError as exc:
            raise MetricError(str(exc)) from None

    def counter(
        self,
        name: str,
        documentation: str,
        labelnames: Sequence[str] = (),
    ) -> Counter:
        return self._register(  # type: ignore[return-value]
            Counter(
                self._checked_name(name, "counter"),
                documentation,
                labelnames,
                self._lock,
            )
        )

    def gauge(
        self,
        name: str,
        documentation: str,
        labelnames: Sequence[str] = (),
    ) -> Gauge:
        return self._register(  # type: ignore[return-value]
            Gauge(
                self._checked_name(name, "gauge"),
                documentation,
                labelnames,
                self._lock,
            )
        )

    def histogram(
        self,
        name: str,
        documentation: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(  # type: ignore[return-value]
            Histogram(
                self._checked_name(name, "histogram"),
                documentation,
                labelnames,
                self._lock,
                buckets,
            )
        )

    def get(self, name: str) -> MetricFamily:
        """The registered family, or :class:`KeyError`."""
        with self._lock:
            return self._families[name]

    def families(self) -> List[MetricFamily]:
        """Registered families sorted by name."""
        with self._lock:
            return [
                self._families[name] for name in sorted(self._families)
            ]

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def register_collector(self, collector: Callable[[], None]) -> None:
        """Run ``collector()`` before every exposition.

        Collectors mirror externally-owned counters (executor shards,
        keystore lifecycle, NTT stage totals) into registry
        instruments, so scrapes see live values without hot-path
        hooks in those layers.
        """
        with self._lock:
            self._collectors.append(collector)

    def run_collectors(self) -> None:
        with self._lock:
            for collector in list(self._collectors):
                collector()

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def expose(self) -> str:
        """The Prometheus 0.0.4 text exposition of every family.

        Registered families appear even before their first sample
        (HELP/TYPE headers only), so a scrape taken at startup already
        names the whole catalog.  An empty registry exposes an empty
        string.
        """
        self.run_collectors()
        lines: List[str] = []
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                lines.append(
                    f"# HELP {name} {escape_help(family.documentation)}"
                )
                lines.append(f"# TYPE {name} {family.kind}")
                if isinstance(family, Histogram):
                    self._expose_histogram(family, lines)
                else:
                    for labelvalues, child in family.children():
                        label_str = (
                            "{"
                            + _label_pairs(family.labelnames, labelvalues)
                            + "}"
                            if family.labelnames
                            else ""
                        )
                        lines.append(
                            f"{name}{label_str} "
                            f"{format_value(child.value)}"  # type: ignore[attr-defined]
                        )
        return "\n".join(lines) + ("\n" if lines else "")

    def _expose_histogram(
        self, family: Histogram, lines: List[str]
    ) -> None:
        name = family.name
        for labelvalues, child in family.children():
            counts, total_sum, total_count = child.snapshot()  # type: ignore[attr-defined]
            base = _label_pairs(family.labelnames, labelvalues)
            prefix = base + "," if base else ""
            cumulative = 0
            for upper, count in zip(family.buckets, counts):
                cumulative += count
                lines.append(
                    f'{name}_bucket{{{prefix}le="{format_value(upper)}"}}'
                    f" {cumulative}"
                )
            lines.append(
                f'{name}_bucket{{{prefix}le="+Inf"}} {total_count}'
            )
            label_str = "{" + base + "}" if base else ""
            lines.append(
                f"{name}_sum{label_str} {format_value(total_sum)}"
            )
            lines.append(f"{name}_count{label_str} {total_count}")
