"""Compute-backend registry: one switch for every hot path.

The scheme/KEM/CCA layers obtain their polynomial arithmetic through
this registry instead of importing NTT kernels directly:

    >>> from repro.backend import get_backend
    >>> backend = get_backend("python-reference")
    >>> backend.name
    'python-reference'

Registered backends
-------------------
``python-reference``
    Pure-Python Alg. 3 kernels (always available; the default).
``python-packed``
    Pure-Python Alg. 4 packed/unrolled kernels (always available).
``numpy``
    Vectorized ``int64`` engine with 2-D batched transforms; requires
    the optional NumPy dependency (``pip install repro-rlwe[numpy]``).

The legacy kernel names ``"reference"`` and ``"packed"`` (the old
``implementation=`` / ``ntt=`` strings) are accepted as aliases.

Selection
---------
``get_backend(None)`` resolves the session default: the
``REPRO_BACKEND`` environment variable when set (falling back to
``python-reference`` with a warning if it names an unavailable
backend), otherwise ``python-reference`` — i.e. with no configuration
the package behaves exactly as it did before backends existed, NumPy
installed or not.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Dict, List, Optional, Union

from repro.backend.base import PolyBackend
from repro.backend.pure_python import PurePythonBackend
from repro.numpy_support import have_numpy

__all__ = [
    "PolyBackend",
    "PurePythonBackend",
    "BackendUnavailable",
    "available_backends",
    "backend_names",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
]

#: Environment variable naming the session-default backend.
BACKEND_ENV = "REPRO_BACKEND"
#: The fallback default: today's behavior, no optional dependencies.
DEFAULT_BACKEND = "python-reference"

_ALIASES = {
    "reference": "python-reference",
    "packed": "python-packed",
}


class BackendUnavailable(KeyError):
    """A known backend cannot run here (missing optional dependency)."""


def _make_numpy_backend() -> PolyBackend:
    from repro.backend.numpy_backend import NumpyBackend

    return NumpyBackend()


_FACTORIES: Dict[str, Callable[[], PolyBackend]] = {
    "python-reference": lambda: PurePythonBackend("reference"),
    "python-packed": lambda: PurePythonBackend("packed"),
    "numpy": _make_numpy_backend,
}
_AVAILABILITY: Dict[str, Callable[[], bool]] = {
    "numpy": have_numpy,
}
_INSTANCES: Dict[str, PolyBackend] = {}


def register_backend(
    name: str,
    factory: Callable[[], PolyBackend],
    available: Optional[Callable[[], bool]] = None,
) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _FACTORIES[name] = factory
    if available is not None:
        _AVAILABILITY[name] = available
    _INSTANCES.pop(name, None)


def backend_names() -> List[str]:
    """All registered backend names (available or not)."""
    return sorted(_FACTORIES)


def available_backends() -> Dict[str, bool]:
    """Map of backend name -> currently usable."""
    return {
        name: _AVAILABILITY.get(name, lambda: True)()
        for name in backend_names()
    }


def _canonical(name: str) -> str:
    return _ALIASES.get(name, name)


def get_backend(name: Optional[str] = None) -> PolyBackend:
    """Return the (cached) backend instance registered as ``name``.

    ``None`` resolves the session default (``REPRO_BACKEND`` or
    ``python-reference``).  Raises :class:`KeyError` for unknown names
    and :class:`BackendUnavailable` for known-but-unusable ones.
    """
    if name is None:
        return _default_backend()
    key = _canonical(name)
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown backend {name!r}; choose from {backend_names()}"
        )
    if not _AVAILABILITY.get(key, lambda: True)():
        raise BackendUnavailable(
            f"backend {key!r} is not available here "
            "(install the optional dependency, e.g. "
            "'pip install repro-rlwe[numpy]')"
        )
    # NumPy availability can change under REPRO_FORCE_NO_NUMPY, so only
    # cache instances after a successful construction.
    if key not in _INSTANCES:
        _INSTANCES[key] = _FACTORIES[key]()
    return _INSTANCES[key]


def _default_backend() -> PolyBackend:
    requested = os.environ.get(BACKEND_ENV)
    if requested:
        try:
            return get_backend(requested)
        except BackendUnavailable:
            warnings.warn(
                f"{BACKEND_ENV}={requested!r} is not available; "
                f"falling back to {DEFAULT_BACKEND!r}",
                RuntimeWarning,
                stacklevel=3,
            )
        except KeyError:
            warnings.warn(
                f"{BACKEND_ENV}={requested!r} is not a known backend "
                f"({backend_names()}); falling back to "
                f"{DEFAULT_BACKEND!r}",
                RuntimeWarning,
                stacklevel=3,
            )
    return get_backend(DEFAULT_BACKEND)


def resolve_backend(
    spec: Union[None, str, PolyBackend],
) -> PolyBackend:
    """Coerce ``None`` / a name / a backend object to a backend object."""
    if spec is None:
        return get_backend(None)
    if isinstance(spec, PolyBackend):
        return spec
    if isinstance(spec, str):
        return get_backend(spec)
    raise TypeError(
        f"backend must be None, a name, or a PolyBackend; got {spec!r}"
    )
