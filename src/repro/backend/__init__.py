"""Compute-backend registry: one switch for every hot path.

The scheme/KEM/CCA layers obtain their polynomial arithmetic through
this registry instead of importing NTT kernels directly:

    >>> from repro.backend import get_backend
    >>> backend = get_backend("python-reference")
    >>> backend.name
    'python-reference'

Registered backends
-------------------
``python-reference``
    Pure-Python Alg. 3 kernels (always available; the default).
``python-packed``
    Pure-Python Alg. 4 packed/unrolled kernels (always available).
``numpy``
    Vectorized ``int64`` engine with 2-D batched transforms; requires
    the optional NumPy dependency (``pip install repro-rlwe[numpy]``).
``compiled``
    C kernel tier (lazy-reduction NTT butterflies, C Knuth-Yao
    sampling, multicore batched rows); requires NumPy + cffi + a C
    compiler on PATH (``pip install repro-rlwe[accel]``), and can be
    disabled with ``REPRO_NO_ACCEL=1``.

The legacy kernel names ``"reference"`` and ``"packed"`` (the old
``implementation=`` / ``ntt=`` strings) are accepted as aliases.

Selection
---------
``get_backend(None)`` resolves the session default: the
``REPRO_BACKEND`` environment variable when set (falling back to
``python-reference`` with a warning if it names an unavailable
backend), otherwise ``python-reference`` — i.e. with no configuration
the package behaves exactly as it did before backends existed, NumPy
installed or not.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Dict, List, Optional, Union

from repro.backend.base import PolyBackend
from repro.backend.pure_python import PurePythonBackend
from repro.numpy_support import have_numpy

__all__ = [
    "PolyBackend",
    "PurePythonBackend",
    "BackendUnavailable",
    "availability_report",
    "available_backends",
    "backend_names",
    "skipped_backends_report",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
]

#: Environment variable naming the session-default backend.
BACKEND_ENV = "REPRO_BACKEND"
#: The fallback default: today's behavior, no optional dependencies.
DEFAULT_BACKEND = "python-reference"

_ALIASES = {
    "reference": "python-reference",
    "packed": "python-packed",
}


class BackendUnavailable(KeyError):
    """A known backend cannot run here (missing optional dependency)."""


def _make_numpy_backend() -> PolyBackend:
    from repro.backend.numpy_backend import NumpyBackend

    return NumpyBackend()


def _make_compiled_backend() -> PolyBackend:
    from repro.backend.compiled_backend import CompiledBackend

    return CompiledBackend()


def _compiled_available() -> bool:
    return _compiled_unavailable_reason() is None


def _numpy_unavailable_reason() -> Optional[str]:
    if have_numpy():
        return None
    return "NumPy is not installed (pip install repro-rlwe[numpy])"


def _compiled_unavailable_reason() -> Optional[str]:
    reason = _numpy_unavailable_reason()
    if reason is not None:
        return reason
    from repro.ntt.kernel_c import accel_unavailable_reason

    return accel_unavailable_reason()


_FACTORIES: Dict[str, Callable[[], PolyBackend]] = {
    "python-reference": lambda: PurePythonBackend("reference"),
    "python-packed": lambda: PurePythonBackend("packed"),
    "numpy": _make_numpy_backend,
    "compiled": _make_compiled_backend,
}
_AVAILABILITY: Dict[str, Callable[[], bool]] = {
    "numpy": have_numpy,
    "compiled": _compiled_available,
}
#: Optional probes explaining *why* a backend is unusable (used by the
#: benchmark artifacts' ``skipped_backends`` records).
_REASON_PROBES: Dict[str, Callable[[], Optional[str]]] = {
    "numpy": _numpy_unavailable_reason,
    "compiled": _compiled_unavailable_reason,
}
_INSTANCES: Dict[str, PolyBackend] = {}


def register_backend(
    name: str,
    factory: Callable[[], PolyBackend],
    available: Optional[Callable[[], bool]] = None,
    reason: Optional[Callable[[], Optional[str]]] = None,
) -> None:
    """Register (or replace) a backend factory under ``name``.

    ``available`` probes usability; ``reason`` (optional) returns a
    human-readable explanation when the backend is unusable, surfaced
    in benchmark ``skipped_backends`` records.
    """
    _FACTORIES[name] = factory
    if available is not None:
        _AVAILABILITY[name] = available
    if reason is not None:
        _REASON_PROBES[name] = reason
    _INSTANCES.pop(name, None)


def backend_names() -> List[str]:
    """All registered backend names (available or not)."""
    return sorted(_FACTORIES)


def available_backends() -> Dict[str, bool]:
    """Map of backend name -> currently usable."""
    return {
        name: _AVAILABILITY.get(name, lambda: True)()
        for name in backend_names()
    }


def availability_report() -> Dict[str, Dict[str, Optional[str]]]:
    """Availability plus a human-readable reason per backend.

    Returns ``{name: {"available": bool, "reason": None | str}}``;
    ``reason`` is ``None`` for usable backends, otherwise a sentence
    explaining why the tier is skipped (e.g. a missing optional
    dependency).  Benchmark artifacts embed this so their
    ``skipped_backends`` records distinguish "slower" from "not
    installed".
    """
    report: Dict[str, Dict[str, Optional[str]]] = {}
    for name, usable in available_backends().items():
        reason: Optional[str] = None
        if not usable:
            probe = _REASON_PROBES.get(name)
            reason = probe() if probe is not None else None
            if reason is None:
                reason = "unavailable (no reason reported)"
        report[name] = {"available": usable, "reason": reason}
    return report


def skipped_backends_report() -> Dict[str, str]:
    """``{name: reason}`` for every currently unusable backend.

    The canonical value for a benchmark artifact's
    ``skipped_backends`` field.
    """
    return {
        name: entry["reason"] or "unavailable (no reason reported)"
        for name, entry in availability_report().items()
        if not entry["available"]
    }


def _canonical(name: str) -> str:
    return _ALIASES.get(name, name)


def get_backend(name: Optional[str] = None) -> PolyBackend:
    """Return the (cached) backend instance registered as ``name``.

    ``None`` resolves the session default (``REPRO_BACKEND`` or
    ``python-reference``).  Raises :class:`KeyError` for unknown names
    and :class:`BackendUnavailable` for known-but-unusable ones.
    """
    if name is None:
        return _default_backend()
    key = _canonical(name)
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown backend {name!r}; choose from {backend_names()}"
        )
    if not _AVAILABILITY.get(key, lambda: True)():
        probe = _REASON_PROBES.get(key)
        reason = probe() if probe is not None else None
        if reason is None:
            reason = (
                "install the optional dependency, e.g. "
                "'pip install repro-rlwe[numpy]'"
            )
        raise BackendUnavailable(
            f"backend {key!r} is not available here ({reason})"
        )
    # NumPy availability can change under REPRO_FORCE_NO_NUMPY, so only
    # cache instances after a successful construction.
    if key not in _INSTANCES:
        _INSTANCES[key] = _FACTORIES[key]()
    return _INSTANCES[key]


def _default_backend() -> PolyBackend:
    requested = os.environ.get(BACKEND_ENV)
    if requested:
        try:
            return get_backend(requested)
        except BackendUnavailable:
            warnings.warn(
                f"{BACKEND_ENV}={requested!r} is not available; "
                f"falling back to {DEFAULT_BACKEND!r}",
                RuntimeWarning,
                stacklevel=3,
            )
        except KeyError:
            warnings.warn(
                f"{BACKEND_ENV}={requested!r} is not a known backend "
                f"({backend_names()}); falling back to "
                f"{DEFAULT_BACKEND!r}",
                RuntimeWarning,
                stacklevel=3,
            )
    return get_backend(DEFAULT_BACKEND)


def resolve_backend(
    spec: Union[None, str, PolyBackend],
) -> PolyBackend:
    """Coerce ``None`` / a name / a backend object to a backend object."""
    if spec is None:
        return get_backend(None)
    if isinstance(spec, PolyBackend):
        return spec
    if isinstance(spec, str):
        return get_backend(spec)
    raise TypeError(
        f"backend must be None, a name, or a PolyBackend; got {spec!r}"
    )
