"""Pure-Python backends wrapping the paper's NTT kernels.

Two variants, matching the two kernels the paper implements:

* ``python-reference`` — Alg. 3, the plain iterative negative-wrapped
  NTT (:mod:`repro.ntt.reference`);
* ``python-packed`` — Alg. 4, the memory-efficient packed/unrolled
  kernel (:mod:`repro.ntt.optimized`).

Both are bit-identical; the packed variant exists to model the paper's
memory-traffic optimization and is the faster of the two in CPython.
Batched operations fall back to the base-class loops — these backends
are the compatibility/fallback tier, not the throughput tier.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.backend.base import PolyBackend
from repro.core.params import ParameterSet
from repro.ntt import optimized, reference


class PurePythonBackend(PolyBackend):
    """Scalar backend over the ``reference`` or ``packed`` kernels."""

    def __init__(self, kernel: str = "reference"):
        if kernel == "reference":
            self._forward = reference.ntt_forward
            self._inverse = reference.ntt_inverse
        elif kernel == "packed":
            self._forward = optimized.ntt_forward_packed
            self._inverse = optimized.ntt_inverse_packed
        else:
            raise KeyError(
                f"unknown pure-python kernel {kernel!r}; "
                "choose 'reference' or 'packed'"
            )
        self.kernel = kernel
        self.name = f"python-{kernel}"

    def ntt_forward(
        self, a: Sequence[int], params: ParameterSet
    ) -> List[int]:
        return self._forward(list(a), params)

    def ntt_inverse(
        self, a_hat: Sequence[int], params: ParameterSet
    ) -> List[int]:
        return self._inverse(list(a_hat), params)
