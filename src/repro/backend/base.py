"""The polynomial-arithmetic backend protocol.

A :class:`PolyBackend` supplies every ring-arithmetic hot path the
scheme layer needs — negacyclic NTTs, pointwise products/sums, and their
2-D batched variants — behind one interface, so the same scheme code can
run on the pure-Python kernels (Alg. 3 / Alg. 4 of the paper) or on a
vectorized engine (:class:`repro.backend.numpy_backend.NumpyBackend`).

Conventions
-----------
* Single-polynomial methods take/return flat coefficient sequences of
  length ``params.n`` with entries in ``[0, q)``.
* Batched methods operate on a *matrix*: backend-native storage of shape
  ``(batch, n)``.  ``matrix()`` imports rows into native storage,
  ``rows()`` exports back to ``List[List[int]]`` of Python ints, and
  ``stack()`` concatenates matrices along the batch axis.  Native
  matrices support Python slicing along the batch axis (both list-of-
  lists and ``numpy.ndarray`` do), which is all the scheme layer uses.
* The second operand of a batched pointwise op may be a single row,
  which broadcasts across the batch — the scheme uses this to multiply
  every ciphertext by the one public/private key polynomial.
* All backends are bit-identical: for the same inputs every method
  returns the same values on every backend.  The test-suite enforces
  this property (``tests/test_backend_equivalence.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence

from repro.core.params import ParameterSet

Row = Sequence[int]
Matrix = Sequence[Sequence[int]]


def is_single_row(operand) -> bool:
    """True when ``operand`` is one polynomial rather than a matrix.

    Works for flat lists/tuples of ints, 1-D NumPy arrays, and nested
    rows; an empty operand counts as a (zero-length) matrix.
    """
    ndim = getattr(operand, "ndim", None)
    if ndim is not None:
        return ndim == 1
    try:
        first = operand[0]
    except (IndexError, TypeError):
        return False
    return isinstance(first, int)


class PolyBackend(ABC):
    """Interface every polynomial-arithmetic engine implements."""

    #: Registry name (``"python-reference"``, ``"numpy"``, ...).
    name: str = "abstract"

    # ------------------------------------------------------------------
    # Single-polynomial primitives
    # ------------------------------------------------------------------
    @abstractmethod
    def ntt_forward(self, a: Row, params: ParameterSet) -> List[int]:
        """Forward negacyclic NTT of one polynomial."""

    @abstractmethod
    def ntt_inverse(self, a_hat: Row, params: ParameterSet) -> List[int]:
        """Inverse negacyclic NTT of one polynomial."""

    def pointwise_mul(
        self, a: Row, b: Row, params: ParameterSet
    ) -> List[int]:
        q = params.q
        if len(a) != len(b):
            raise ValueError("operand lengths differ")
        return [x * y % q for x, y in zip(a, b)]

    def pointwise_add(
        self, a: Row, b: Row, params: ParameterSet
    ) -> List[int]:
        q = params.q
        if len(a) != len(b):
            raise ValueError("operand lengths differ")
        return [(x + y) % q for x, y in zip(a, b)]

    def pointwise_sub(
        self, a: Row, b: Row, params: ParameterSet
    ) -> List[int]:
        q = params.q
        if len(a) != len(b):
            raise ValueError("operand lengths differ")
        return [(x - y) % q for x, y in zip(a, b)]

    def ntt_multiply(
        self, a: Row, b: Row, params: ParameterSet
    ) -> List[int]:
        """Negacyclic product via forward/pointwise/inverse."""
        a_hat = self.ntt_forward(a, params)
        b_hat = self.ntt_forward(b, params)
        return self.ntt_inverse(
            self.pointwise_mul(a_hat, b_hat, params), params
        )

    # ------------------------------------------------------------------
    # Matrix plumbing
    # ------------------------------------------------------------------
    def matrix(self, rows: Matrix):
        """Import rows into the backend's native (batch, n) storage."""
        return [[int(c) for c in row] for row in rows]

    def rows(self, matrix) -> List[List[int]]:
        """Export a native matrix to nested lists of Python ints."""
        return [[int(c) for c in row] for row in matrix]

    def stack(self, matrices: Sequence) -> "list":
        """Concatenate native matrices along the batch axis."""
        out: List = []
        for matrix in matrices:
            out.extend(matrix)
        return out

    # ------------------------------------------------------------------
    # Batched primitives (default: loop over the scalar kernels)
    # ------------------------------------------------------------------
    def ntt_forward_batch(self, matrix, params: ParameterSet):
        return [self.ntt_forward(row, params) for row in matrix]

    def ntt_inverse_batch(self, matrix, params: ParameterSet):
        return [self.ntt_inverse(row, params) for row in matrix]

    def _zip_rows(self, a, b):
        if is_single_row(b):
            return ((row, b) for row in a)
        if len(a) != len(b):
            raise ValueError("batch sizes differ")
        return zip(a, b)

    def pointwise_mul_batch(self, a, b, params: ParameterSet):
        return [self.pointwise_mul(x, y, params) for x, y in self._zip_rows(a, b)]

    def pointwise_add_batch(self, a, b, params: ParameterSet):
        return [self.pointwise_add(x, y, params) for x, y in self._zip_rows(a, b)]

    def pointwise_sub_batch(self, a, b, params: ParameterSet):
        return [self.pointwise_sub(x, y, params) for x, y in self._zip_rows(a, b)]

    # ------------------------------------------------------------------
    # Per-row operand batched primitives (cross-key fused windows)
    # ------------------------------------------------------------------
    # A fused batch mixes items under different keys: the key operand is
    # no longer one broadcast row but a small *key matrix* plus a
    # per-item row index into it.  ``rows`` of length ``batch`` selects
    # ``key_matrix[rows[i]]`` as item ``i``'s operand.  A one-row key
    # matrix with all-zero indices degenerates to the broadcast path —
    # same exact mod-q arithmetic, bit-identical results.

    def gather_rows(self, matrix, indices: Sequence[int]):
        """Rows of a native matrix selected by index, as a native matrix."""
        bound = len(matrix)
        out: List = []
        for index in indices:
            if not 0 <= index < bound:
                raise ValueError(
                    f"row index {index} out of range for a "
                    f"{bound}-row matrix"
                )
            out.append(matrix[index])
        return out

    def pointwise_mul_rows(
        self, a, key_matrix, rows: Sequence[int], params: ParameterSet
    ):
        """``a[i] * key_matrix[rows[i]]`` pointwise, for every item i."""
        if len(a) != len(rows):
            raise ValueError("row index count differs from batch size")
        return self.pointwise_mul_batch(
            a, self.gather_rows(key_matrix, rows), params
        )

    def pointwise_add_rows(
        self, a, key_matrix, rows: Sequence[int], params: ParameterSet
    ):
        """``a[i] + key_matrix[rows[i]]`` pointwise, for every item i."""
        if len(a) != len(rows):
            raise ValueError("row index count differs from batch size")
        return self.pointwise_add_batch(
            a, self.gather_rows(key_matrix, rows), params
        )

    def pointwise_sub_rows(
        self, a, key_matrix, rows: Sequence[int], params: ParameterSet
    ):
        """``a[i] - key_matrix[rows[i]]`` pointwise, for every item i."""
        if len(a) != len(rows):
            raise ValueError("row index count differs from batch size")
        return self.pointwise_sub_batch(
            a, self.gather_rows(key_matrix, rows), params
        )

    def ntt_multiply_rows(
        self, a, key_matrix, rows: Sequence[int], params: ParameterSet
    ):
        """Negacyclic product of each ``a`` row with its selected key row."""
        hat_a = self.ntt_forward_batch(a, params)
        hat_k = self.ntt_forward_batch(key_matrix, params)
        return self.ntt_inverse_batch(
            self.pointwise_mul_rows(hat_a, hat_k, rows, params), params
        )

    def ntt_multiply_batch(self, a, b, params: ParameterSet):
        hat_a = self.ntt_forward_batch(a, params)
        if is_single_row(b):
            hat_b = self.ntt_forward(b, params)
        else:
            hat_b = self.ntt_forward_batch(b, params)
        return self.ntt_inverse_batch(
            self.pointwise_mul_batch(hat_a, hat_b, params), params
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
