"""The compiled backend tier: C kernels behind the PolyBackend protocol.

:class:`CompiledBackend` extends the NumPy engine — same native
``(batch, n)`` int64 storage, same matrix plumbing — but routes every
hot loop through the C library of :mod:`repro.ntt.kernel_c`:

* scalar and batched forward/inverse negacyclic NTTs (lazy-reduction
  butterflies over Shoup-form twiddle tables, multicore row sharding);
* pointwise mul/add/sub, batched and broadcast;
* the ``*_rows`` key-table gather ops that fused cross-key windows use;
* Knuth-Yao error sampling via :meth:`make_sampler` (engaged by the
  scheme layer), which is where the single-message encrypt speedup
  comes from — the sampler dominates the scalar path.

Parameter sets the kernel cannot handle (``q >= 2^30``) transparently
fall back to the inherited NumPy implementations, so the backend is a
strict superset: every op, every parameter set, bit-identical results
(enforced by ``tests/test_backend_equivalence.py`` and
``tests/test_compiled_backend.py``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.backend.numpy_backend import NumpyBackend
from repro.core.params import ParameterSet
from repro.ntt.compiled import OP_ADD, OP_MUL, OP_SUB, CompiledKernel


class CompiledBackend(NumpyBackend):
    """Compiled multicore kernel tier (requires cffi + a C compiler)."""

    name = "compiled"

    def __init__(self, threads: Optional[int] = None):
        super().__init__()
        self._kernel = CompiledKernel(threads=threads)
        self._stage_profiling = False
        self._stage_totals = {"forward": {}, "inverse": {}}
        self._stage_batches = {"forward": 0, "inverse": 0}

    @property
    def threads(self) -> int:
        return self._kernel.threads

    # ------------------------------------------------------------------
    # Transforms
    # ------------------------------------------------------------------
    def _transform_batch(self, matrix, params: ParameterSet, inverse: bool):
        if not self._kernel.supports(params):
            if inverse:
                return super().ntt_inverse_batch(matrix, params)
            return super().ntt_forward_batch(matrix, params)
        # _as_batch returns a fresh (% q) C-contiguous array, so the
        # in-place kernel never aliases caller storage.
        array, _ = self._as_batch(matrix, params)
        array = self.np.ascontiguousarray(array)
        if self._stage_profiling:
            array, stage_times = self._kernel.ntt_batch_profiled(
                array, params, inverse
            )
            self._accumulate_stages(inverse, stage_times)
            return array
        return self._kernel.ntt_batch(array, params, inverse=inverse)

    def ntt_forward_batch(self, matrix, params: ParameterSet):
        return self._transform_batch(matrix, params, inverse=False)

    def ntt_inverse_batch(self, matrix, params: ParameterSet):
        return self._transform_batch(matrix, params, inverse=True)

    def _transform_single(self, a, params: ParameterSet, inverse: bool):
        """1-D C-kernel transform; ``None`` falls back to the 2-D path."""
        np = self.np
        array = np.asarray(a, dtype=np.int64)
        if array.ndim != 1:
            return None
        if array.shape[0] != params.n:
            raise ValueError(
                f"expected {params.n} coefficients, got shape {array.shape}"
            )
        array = np.ascontiguousarray(array % params.q)
        t = self._kernel.tables(params)
        self._kernel._ntt_call(
            t, self._kernel._data_ptr(array), 1, inverse
        )
        return array.tolist()

    def ntt_forward(self, a: Sequence[int], params: ParameterSet) -> List[int]:
        if not self._kernel.supports(params):
            return super().ntt_forward(a, params)
        result = self._transform_single(a, params, inverse=False)
        if result is None:
            return super().ntt_forward(a, params)
        return result

    def ntt_inverse(
        self, a_hat: Sequence[int], params: ParameterSet
    ) -> List[int]:
        if not self._kernel.supports(params):
            return super().ntt_inverse(a_hat, params)
        result = self._transform_single(a_hat, params, inverse=True)
        if result is None:
            return super().ntt_inverse(a_hat, params)
        return result

    # ------------------------------------------------------------------
    # Pointwise arithmetic
    # ------------------------------------------------------------------
    def _pointwise_compiled(self, a, b, params: ParameterSet, op: int):
        np = self.np
        left, _ = self._as_batch(a, params)
        right = np.asarray(b, dtype=np.int64)
        if right.ndim == 2 and left.shape[0] != right.shape[0]:
            if right.shape[0] != 1 and left.shape[0] != 1:
                raise ValueError("batch sizes differ")
        if (
            right.ndim == 2
            and right.shape[0] != 1
            and left.shape[0] == 1
        ):
            # One-row left against a full right batch: the inherited
            # NumPy broadcast handles this rare shape.
            return None
        if right.shape[-1] != params.n:
            raise ValueError(
                f"expected operand length {params.n}, "
                f"got {right.shape[-1]}"
            )
        left = np.ascontiguousarray(left)
        right = np.ascontiguousarray(right)
        return self._kernel.pointwise(op, left, right, params)

    def _pointwise_dispatch(self, a, b, params: ParameterSet, op, fallback):
        if not self._kernel.supports(params):
            return fallback(a, b, params)
        result = self._pointwise_compiled(a, b, params, op)
        if result is None:
            return fallback(a, b, params)
        return result

    def _scalar_pointwise(self, a, b, params: ParameterSet, op: int):
        """1-row C pointwise op; ``None`` falls back to the NumPy path.

        ``reduce_exact`` on the C side matches Python ``%`` for any
        int64, so operands go in unreduced — no mod passes in Python.
        """
        np = self.np
        left = np.ascontiguousarray(a, dtype=np.int64)
        right = np.ascontiguousarray(b, dtype=np.int64)
        if (
            left.ndim != 1
            or right.ndim != 1
            or left.shape[0] != params.n
        ):
            return None
        kernel = self._kernel
        out = np.empty_like(left)
        kernel.lib.repro_pointwise(
            op,
            kernel.ffi.cast("const int64_t *", kernel.ffi.from_buffer(left)),
            kernel.ffi.cast("const int64_t *", kernel.ffi.from_buffer(right)),
            kernel._data_ptr(out),
            1,
            params.n,
            0,
            params.q,
        )
        return out.tolist()

    def _scalar_dispatch(self, a, b, params: ParameterSet, op, fallback):
        self._check_lengths(a, b)
        if self._kernel.supports(params):
            result = self._scalar_pointwise(a, b, params, op)
            if result is not None:
                return result
        return fallback(a, b, params)

    def pointwise_mul(self, a, b, params: ParameterSet) -> List[int]:
        return self._scalar_dispatch(
            a, b, params, OP_MUL, super().pointwise_mul
        )

    def pointwise_add(self, a, b, params: ParameterSet) -> List[int]:
        return self._scalar_dispatch(
            a, b, params, OP_ADD, super().pointwise_add
        )

    def pointwise_sub(self, a, b, params: ParameterSet) -> List[int]:
        return self._scalar_dispatch(
            a, b, params, OP_SUB, super().pointwise_sub
        )

    def pointwise_mul_batch(self, a, b, params: ParameterSet):
        return self._pointwise_dispatch(
            a, b, params, OP_MUL, super().pointwise_mul_batch
        )

    def pointwise_add_batch(self, a, b, params: ParameterSet):
        return self._pointwise_dispatch(
            a, b, params, OP_ADD, super().pointwise_add_batch
        )

    def pointwise_sub_batch(self, a, b, params: ParameterSet):
        return self._pointwise_dispatch(
            a, b, params, OP_SUB, super().pointwise_sub_batch
        )

    # ------------------------------------------------------------------
    # Per-row operand arithmetic (cross-key fused windows)
    # ------------------------------------------------------------------
    def _pointwise_rows(self, a, key_matrix, rows, params: ParameterSet, op):
        opcode = {
            "pointwise_mul_batch": OP_MUL,
            "pointwise_add_batch": OP_ADD,
            "pointwise_sub_batch": OP_SUB,
        }.get(getattr(op, "__name__", ""))
        if opcode is None or not self._kernel.supports(params):
            return super()._pointwise_rows(a, key_matrix, rows, params, op)
        if len(a) != len(rows):
            raise ValueError("row index count differs from batch size")
        np = self.np
        keys = np.asarray(key_matrix, dtype=np.int64)
        if keys.ndim == 1:
            keys = keys.reshape(1, -1)
        if keys.shape[0] == 1:
            # One-key window degenerates to the broadcast path — same
            # arithmetic, and the same strict index check as NumPy.
            if any(r != 0 for r in rows):
                raise ValueError(
                    "row index out of range for a 1-row matrix"
                )
            return self._pointwise_dispatch(
                a, keys[0], params, opcode, op
            )
        index = np.asarray(rows, dtype=np.int64)
        if index.size and (
            index.min() < 0 or index.max() >= keys.shape[0]
        ):
            raise ValueError(
                f"row index out of range for a {keys.shape[0]}-row matrix"
            )
        left, _ = self._as_batch(a, params)
        if keys.shape[1] != params.n:
            raise ValueError(
                f"expected key rows of length {params.n}, "
                f"got {keys.shape[1]}"
            )
        left = np.ascontiguousarray(left)
        keys = np.ascontiguousarray(keys)
        return self._kernel.pointwise_gather(
            opcode, left, keys, index, params
        )

    # ------------------------------------------------------------------
    # Fused scalar encrypt
    # ------------------------------------------------------------------
    def encrypt_polynomial_core(
        self, a_hat, p_hat, e_polys, message_poly, params: ParameterSet
    ):
        """Fused scalar encrypt: batched NTT + in-array pointwise chain.

        Computes ``(a_hat*NTT(e1)+NTT(e2), p_hat*NTT(e1)+NTT(e3+m))``
        without the per-op list round trips of the generic pipeline —
        one 3-row NTT call and four 1-row pointwise calls, arrays
        throughout.  Bit-identical to the generic sequence (every step
        reduces exactly as the scalar ops do).  Returns ``None`` when
        the kernel lacks support so the caller runs the generic path.
        """
        if not self._kernel.supports(params):
            return None
        np = self.np
        q = params.q
        e1, e2, e3 = e_polys
        try:
            batch = np.empty((3, params.n), dtype=np.int64)
            batch[0] = e1
            batch[1] = e2
            batch[2] = e3
            msg = np.asarray(message_poly, dtype=np.int64)
            a = np.ascontiguousarray(a_hat, dtype=np.int64)
            p = np.ascontiguousarray(p_hat, dtype=np.int64)
        except (OverflowError, TypeError, ValueError):
            # Beyond-int64 coefficients: the arbitrary-precision
            # generic path handles them.
            return None
        batch %= q
        batch[2] = (batch[2] + msg % q) % q
        kernel = self._kernel
        kernel.ntt_batch(batch, params, inverse=False)
        e1_hat = batch[0:1]
        c1 = kernel.pointwise(OP_MUL, e1_hat, a, params)
        c1 = kernel.pointwise(OP_ADD, c1, batch[1], params)
        c2 = kernel.pointwise(OP_MUL, e1_hat, p, params)
        c2 = kernel.pointwise(OP_ADD, c2, batch[2], params)
        return c1[0].tolist(), c2[0].tolist()

    # ------------------------------------------------------------------
    # Profiling + sampling hooks
    # ------------------------------------------------------------------
    def ntt_batch_profiled(self, matrix, params: ParameterSet, inverse=False):
        """Transform + per-stage seconds (see CompiledKernel)."""
        array, _ = self._as_batch(matrix, params)
        array = self.np.ascontiguousarray(array)
        return self._kernel.ntt_batch_profiled(array, params, inverse)

    def enable_stage_profiling(self, enabled: bool = True) -> None:
        """Route batch transforms through the profiled kernel entry.

        When enabled, every kernel-handled batch transform accumulates
        per-stage wall seconds into :meth:`stage_totals` (the shape the
        metrics collector consumes).  Off by default: the profiled
        entry point makes one extra C call per stage, so the hot path
        only pays for it when the serve CLI asks.
        """
        self._stage_profiling = bool(enabled)

    def stage_totals(self) -> dict:
        """Accumulated per-stage seconds and batch counts by direction.

        Returns ``{"stages": {"forward": {stage: seconds, ...},
        "inverse": {...}}, "batches": {"forward": n, "inverse": n}}``.
        Empty until :meth:`enable_stage_profiling` is switched on and a
        kernel-handled transform runs.
        """
        return {
            "stages": {
                direction: dict(totals)
                for direction, totals in self._stage_totals.items()
            },
            "batches": dict(self._stage_batches),
        }

    def _accumulate_stages(self, inverse: bool, stage_times) -> None:
        direction = "inverse" if inverse else "forward"
        totals = self._stage_totals[direction]
        for stage, seconds in stage_times.items():
            totals[stage] = totals.get(stage, 0.0) + seconds
        self._stage_batches[direction] += 1

    def make_sampler(self, pmat, q: int, bits, use_lut2: bool = True):
        """A Knuth-Yao sampler running its hot loops in the C kernel.

        The scheme layer calls this instead of constructing
        ``LutKnuthYaoSampler`` directly; the returned sampler is
        bit-identical (same bit-stream consumption, same outputs) and
        silently degrades to the pure-Python paths for bit sources the
        kernel cannot mirror.
        """
        from repro.sampler.accel import AccelLutKnuthYaoSampler

        return AccelLutKnuthYaoSampler(
            pmat, q, bits, use_lut2=use_lut2, kernel=self._kernel
        )
