"""Vectorized NumPy engine: batched negacyclic NTT and pointwise ops.

The transform is the same negative-wrapped decimation-in-time network as
Alg. 3 (bit-reverse, then one butterfly stage per sub-transform size
``m = 2, 4, ..., n``), executed on ``int64`` arrays of shape
``(batch, n)`` so one call transforms the whole batch:

* the per-stage twiddle vectors come from the same
  :func:`repro.ntt.roots.ntt_tables` LUTs the scalar kernels use;
* within a stage, the array is viewed as ``(batch, n//m, m)`` and the
  ``m/2`` butterflies of every block run as four whole-array ops
  (multiply, mod, add/sub, mod).

Every intermediate fits comfortably in ``int64``: coefficients are
``< q <= 12289 < 2^14`` and butterfly products are ``< q^2 < 2^28``, so
the modular arithmetic is exact and the results are bit-identical to the
pure-Python kernels (enforced by ``tests/test_backend_equivalence.py``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.backend.base import PolyBackend, is_single_row
from repro.core.params import ParameterSet
from repro.ntt.bitrev import bit_reverse_table
from repro.ntt.roots import ntt_tables
from repro.numpy_support import require_numpy


class _ArrayTables:
    """Per-parameter-set constants as ready-to-use NumPy arrays."""

    def __init__(self, np, params: ParameterSet):
        tables = ntt_tables(params)
        self.permutation = np.asarray(
            bit_reverse_table(params.n), dtype=np.intp
        )
        self.forward_stages = tuple(
            (stage.m, np.asarray(twiddles, dtype=np.int64))
            for stage, twiddles in zip(
                tables.forward_stages, tables.forward_twiddles
            )
        )
        self.inverse_stages = tuple(
            (stage.m, np.asarray(twiddles, dtype=np.int64))
            for stage, twiddles in zip(
                tables.inverse_stages, tables.inverse_twiddles
            )
        )
        self.final_scale = np.asarray(tables.final_scale, dtype=np.int64)


#: Module-level table cache: the arrays are pure functions of (n, q)
#: and read-only, so every backend instance in the process (the FO-KEM
#: constructs schemes per encapsulation; workers build their own
#: backend) shares one set instead of repacking per instance.
_ARRAY_TABLE_CACHE: Dict[Tuple[int, int], _ArrayTables] = {}


def array_table_cache_info() -> Dict[str, int]:
    """Observability hook for the ablation bench: cached entry count."""
    return {"entries": len(_ARRAY_TABLE_CACHE)}


class NumpyBackend(PolyBackend):
    """The throughput backend: batched transforms as array programs."""

    name = "numpy"

    def __init__(self):
        self.np = require_numpy()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _array_tables(self, params: ParameterSet) -> _ArrayTables:
        key = (params.n, params.q)
        entry = _ARRAY_TABLE_CACHE.get(key)
        if entry is None:
            entry = _ArrayTables(self.np, params)
            _ARRAY_TABLE_CACHE[key] = entry
        return entry

    def _as_batch(self, data, params: ParameterSet):
        """Coerce rows/array to an int64 (batch, n) array mod q."""
        np = self.np
        array = np.asarray(data, dtype=np.int64)
        single = array.ndim == 1
        if single:
            array = array.reshape(1, -1)
        if array.ndim != 2 or array.shape[1] != params.n:
            raise ValueError(
                f"expected shape (batch, {params.n}), got {array.shape}"
            )
        return array % params.q, single

    def matrix(self, rows):
        array = self.np.asarray(rows, dtype=self.np.int64)
        if array.ndim == 1:
            array = array.reshape(1, -1)
        return array

    def rows(self, matrix) -> List[List[int]]:
        return self.np.asarray(matrix).tolist()

    def stack(self, matrices: Sequence):
        np = self.np
        return np.concatenate(
            [np.asarray(m, dtype=np.int64) for m in matrices], axis=0
        )

    # ------------------------------------------------------------------
    # Transforms
    # ------------------------------------------------------------------
    def _run_stages(self, array, stages, params: ParameterSet):
        """Run the butterfly network in place on a (batch, n) array.

        Reduction is deferred: only the twiddle product is taken mod q
        inside a stage, so values drift into (-(s+1)q, (s+2)q) after s
        stages — bounded by ~13q for every supported n, keeping every
        product below 2^32, far inside int64.  Callers apply the final
        ``% q`` (the inverse path's scale multiply already does), so
        results are bit-identical to the fully-reduced network at 2 of
        4 array passes per stage.
        """
        np = self.np
        q = params.q
        n = params.n
        batch = array.shape[0]
        for m, twiddles in stages:
            half = m // 2
            view = array.reshape(batch, n // m, m)
            u = view[:, :, :half].copy()
            t = view[:, :, half:] * twiddles % q
            view[:, :, :half] = u + t
            view[:, :, half:] = u - t
        return array

    def ntt_forward_batch(self, matrix, params: ParameterSet):
        tables = self._array_tables(params)
        array, _ = self._as_batch(matrix, params)
        array = array[:, tables.permutation]
        return self._run_stages(array, tables.forward_stages, params) % params.q

    def ntt_inverse_batch(self, matrix, params: ParameterSet):
        tables = self._array_tables(params)
        array, _ = self._as_batch(matrix, params)
        array = array[:, tables.permutation]
        array = self._run_stages(array, tables.inverse_stages, params)
        return array * tables.final_scale % params.q

    def _transform_1d(self, a, params: ParameterSet, inverse: bool):
        """Single-row transform without the 2-D wrap/unwrap round trip.

        Returns ``None`` for non-1-D input (the caller falls back to the
        batch path, preserving its coercion/error semantics).
        """
        np = self.np
        array = np.asarray(a, dtype=np.int64)
        if array.ndim != 1:
            return None
        if array.shape[0] != params.n:
            raise ValueError(
                f"expected shape (batch, {params.n}), got {array.shape}"
            )
        tables = self._array_tables(params)
        q = params.q
        n = params.n
        array = array % q
        array = array[tables.permutation]
        stages = tables.inverse_stages if inverse else tables.forward_stages
        for m, twiddles in stages:
            half = m // 2
            view = array.reshape(n // m, m)
            u = view[:, :half].copy()
            t = view[:, half:] * twiddles % q
            view[:, :half] = u + t
            view[:, half:] = u - t
        if inverse:
            return (array * tables.final_scale % q).tolist()
        return (array % q).tolist()

    def ntt_forward(
        self, a: Sequence[int], params: ParameterSet
    ) -> List[int]:
        result = self._transform_1d(a, params, inverse=False)
        if result is None:
            return self.ntt_forward_batch(a, params)[0].tolist()
        return result

    def ntt_inverse(
        self, a_hat: Sequence[int], params: ParameterSet
    ) -> List[int]:
        result = self._transform_1d(a_hat, params, inverse=True)
        if result is None:
            return self.ntt_inverse_batch(a_hat, params)[0].tolist()
        return result

    # ------------------------------------------------------------------
    # Pointwise arithmetic
    # ------------------------------------------------------------------
    def _pointwise(self, a, b, params: ParameterSet, op):
        np = self.np
        q = params.q
        left, single_a = self._as_batch(a, params)
        right = np.asarray(b, dtype=np.int64) % q
        if right.ndim == 2 and left.shape[0] != right.shape[0]:
            if right.shape[0] != 1 and left.shape[0] != 1:
                raise ValueError("batch sizes differ")
        result = op(left, right) % q
        return result, single_a

    def pointwise_mul_batch(self, a, b, params: ParameterSet):
        return self._pointwise(a, b, params, lambda x, y: x * y)[0]

    def pointwise_add_batch(self, a, b, params: ParameterSet):
        return self._pointwise(a, b, params, lambda x, y: x + y)[0]

    def pointwise_sub_batch(self, a, b, params: ParameterSet):
        return self._pointwise(a, b, params, lambda x, y: x - y)[0]

    def _pointwise_1d(self, a, b, params: ParameterSet, op):
        """Scalar-path pointwise op without the 2-D round trip.

        Returns ``None`` when either operand is not 1-D (fall back to
        the batch path's broadcast/validation semantics).
        """
        np = self.np
        left = np.asarray(a, dtype=np.int64)
        right = np.asarray(b, dtype=np.int64)
        if (
            left.ndim != 1
            or right.ndim != 1
            or left.shape[0] != params.n
        ):
            return None
        q = params.q
        return (op(left % q, right % q) % q).tolist()

    def pointwise_mul(self, a, b, params: ParameterSet) -> List[int]:
        self._check_lengths(a, b)
        result = self._pointwise_1d(a, b, params, lambda x, y: x * y)
        if result is None:
            return self.pointwise_mul_batch(a, b, params)[0].tolist()
        return result

    def pointwise_add(self, a, b, params: ParameterSet) -> List[int]:
        self._check_lengths(a, b)
        result = self._pointwise_1d(a, b, params, lambda x, y: x + y)
        if result is None:
            return self.pointwise_add_batch(a, b, params)[0].tolist()
        return result

    def pointwise_sub(self, a, b, params: ParameterSet) -> List[int]:
        self._check_lengths(a, b)
        result = self._pointwise_1d(a, b, params, lambda x, y: x - y)
        if result is None:
            return self.pointwise_sub_batch(a, b, params)[0].tolist()
        return result

    @staticmethod
    def _check_lengths(a, b) -> None:
        if len(a) != len(b):
            raise ValueError("operand lengths differ")

    def ntt_multiply_batch(self, a, b, params: ParameterSet):
        hat_a = self.ntt_forward_batch(a, params)
        hat_b = self.ntt_forward_batch(b, params)
        if is_single_row(b):
            hat_b = hat_b[0]
        return self.ntt_inverse_batch(
            self.pointwise_mul_batch(hat_a, hat_b, params), params
        )

    # ------------------------------------------------------------------
    # Per-row operand arithmetic (cross-key fused windows)
    # ------------------------------------------------------------------
    def gather_rows(self, matrix, indices: Sequence[int]):
        np = self.np
        array = np.asarray(matrix, dtype=np.int64)
        if array.ndim == 1:
            array = array.reshape(1, -1)
        index = np.asarray(indices, dtype=np.intp)
        if index.size and (
            index.min() < 0 or index.max() >= array.shape[0]
        ):
            raise ValueError(
                f"row index out of range for a "
                f"{array.shape[0]}-row matrix"
            )
        return array[index]

    def _pointwise_rows(self, a, key_matrix, rows, params: ParameterSet, op):
        if len(a) != len(rows):
            raise ValueError("row index count differs from batch size")
        np = self.np
        keys = np.asarray(key_matrix, dtype=np.int64)
        if keys.ndim == 1:
            keys = keys.reshape(1, -1)
        if keys.shape[0] == 1:
            # One-key window: 1-D broadcast, exactly the single-key path
            # — keeps the fused route bit- and shape-identical to the
            # legacy per-key batches it replaced.
            if any(r != 0 for r in rows):
                raise ValueError(
                    "row index out of range for a 1-row matrix"
                )
            return op(a, keys[0], params)
        return op(a, self.gather_rows(keys, rows), params)

    def pointwise_mul_rows(self, a, key_matrix, rows, params: ParameterSet):
        return self._pointwise_rows(
            a, key_matrix, rows, params, self.pointwise_mul_batch
        )

    def pointwise_add_rows(self, a, key_matrix, rows, params: ParameterSet):
        return self._pointwise_rows(
            a, key_matrix, rows, params, self.pointwise_add_batch
        )

    def pointwise_sub_rows(self, a, key_matrix, rows, params: ParameterSet):
        return self._pointwise_rows(
            a, key_matrix, rows, params, self.pointwise_sub_batch
        )
