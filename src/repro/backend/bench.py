"""Backend-throughput measurement used by the CLI and the bench script.

Measures messages/second for encrypt (and decrypt) per backend and
batch size, against the fixed baseline the repository started from: the
pure-Python reference backend encrypting one message per call.  The
result is a plain dict so callers can render it as a table
(``rlwe-repro bench-backends``) or dump it as JSON
(``benchmarks/bench_backend_throughput.py`` →
``BENCH_backend_throughput.json``) to track the perf trajectory across
PRs.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional, Sequence

from repro import __version__, seeded_scheme
from repro.backend import (
    available_backends,
    get_backend,
    skipped_backends_report,
)
from repro.core.params import get_parameter_set
from repro.numpy_support import get_numpy

#: The baseline every speedup is quoted against.
BASELINE_BACKEND = "python-reference"


def _messages(params, count: int) -> List[bytes]:
    size = min(32, params.message_bytes)
    return [bytes([(i * 37 + j) % 256 for j in range(size)]) for i in range(count)]


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_throughput_bench(
    params_names: Sequence[str] = ("P1",),
    backends: Optional[Sequence[str]] = None,
    batch_sizes: Sequence[int] = (1, 16, 64, 256),
    repeats: int = 3,
    seed: int = 2015,
) -> Dict:
    """Measure encrypt/decrypt throughput per backend and batch size."""
    usable = available_backends()
    if backends is None:
        names = [name for name, ok in usable.items() if ok]
    else:
        names = list(backends)
        unknown = [name for name in names if name not in usable]
        if unknown:
            raise KeyError(
                f"unknown backend(s) {unknown}; "
                f"choose from {sorted(usable)}"
            )
    reasons = skipped_backends_report()
    skipped = {
        name: reasons.get(name, "unavailable (no reason reported)")
        for name in names
        if not usable.get(name, False)
    }
    names = [name for name in names if usable.get(name, False)]

    np = get_numpy()
    report: Dict = {
        "benchmark": "backend_throughput",
        "version": __version__,
        "python": sys.version.split()[0],
        "numpy": getattr(np, "__version__", None) if np else None,
        "baseline_backend": BASELINE_BACKEND,
        "skipped_backends": skipped,
        "baseline": {},
        "results": [],
    }

    for params_name in params_names:
        params = get_parameter_set(params_name)
        messages = _messages(params, max(batch_sizes))

        # Baseline: one message per call on the pure-Python path.
        scheme = seeded_scheme(params, seed, backend=BASELINE_BACKEND)
        keypair = scheme.generate_keypair()
        warm = scheme.encrypt(keypair.public, messages[0])
        scheme.decrypt(keypair.private, warm)
        single_s = _best_of(
            repeats, lambda: scheme.encrypt(keypair.public, messages[0])
        )
        report["baseline"][params.name] = {
            "backend": BASELINE_BACKEND,
            "encrypt_ms_per_msg": single_s * 1e3,
            "encrypt_msgs_per_sec": 1.0 / single_s,
        }

        for backend_name in names:
            backend = get_backend(backend_name)
            bscheme = seeded_scheme(params, seed, backend=backend)
            bkeypair = bscheme.generate_keypair()
            for batch in batch_sizes:
                batch_messages = messages[:batch]
                if batch == 1:
                    encrypt = lambda: bscheme.encrypt(
                        bkeypair.public, batch_messages[0]
                    )
                    ciphertexts = [encrypt()]
                    decrypt = lambda: bscheme.decrypt(
                        bkeypair.private, ciphertexts[0]
                    )
                else:
                    encrypt = lambda: bscheme.encrypt_batch(
                        bkeypair.public, batch_messages
                    )
                    ciphertexts = encrypt()
                    decrypt = lambda: bscheme.decrypt_batch(
                        bkeypair.private, ciphertexts
                    )
                encrypt_s = _best_of(repeats, encrypt)
                decrypt_s = _best_of(repeats, decrypt)
                per_msg = encrypt_s / batch
                report["results"].append(
                    {
                        "params": params.name,
                        "backend": backend_name,
                        "batch_size": batch,
                        "encrypt_ms_per_msg": per_msg * 1e3,
                        "encrypt_msgs_per_sec": 1.0 / per_msg,
                        "decrypt_ms_per_msg": decrypt_s / batch * 1e3,
                        "decrypt_msgs_per_sec": batch / decrypt_s,
                        "speedup_vs_single_python": single_s / per_msg,
                    }
                )
    return report


def render_report(report: Dict) -> str:
    """Human-readable table of a :func:`run_throughput_bench` result."""
    lines = []
    header = (
        f"{'params':<7}{'backend':<19}{'batch':>6}"
        f"{'enc msg/s':>12}{'dec msg/s':>12}{'speedup':>9}"
    )
    for params_name, base in report["baseline"].items():
        lines.append(
            f"baseline [{params_name}]: {base['backend']} single encrypt "
            f"= {base['encrypt_ms_per_msg']:.2f} ms/msg "
            f"({base['encrypt_msgs_per_sec']:.0f} msg/s)"
        )
    lines.append("")
    lines.append(header)
    lines.append("-" * len(header))
    for row in report["results"]:
        lines.append(
            f"{row['params']:<7}{row['backend']:<19}{row['batch_size']:>6}"
            f"{row['encrypt_msgs_per_sec']:>12.0f}"
            f"{row['decrypt_msgs_per_sec']:>12.0f}"
            f"{row['speedup_vs_single_python']:>8.1f}x"
        )
    if report["skipped_backends"]:
        lines.append("")
        for name, reason in sorted(report["skipped_backends"].items()):
            lines.append(f"skipped {name}: {reason}")
    return "\n".join(lines)
