"""Timing-leakage analysis of the samplers via the cycle model.

The Knuth-Yao walk's duration depends on the sampled value: large
magnitudes live deep in the DDG tree, so a long-running sample *is*
information about the secret error polynomial.  The cycle model makes
this measurable without hardware: sample repeatedly, record
(value, cycles) pairs, and quantify the dependence.

Two statistics are reported:

* the Pearson correlation between |sample| and its cycle count;
* the spread of the per-magnitude mean cycle counts (max - min), which
  an attacker with repeated measurements can exploit even when the raw
  correlation is diluted.

The constant-time CDT sampler of
:mod:`repro.sampler.constant_time` exists to drive both to zero; the
constant-time ablation bench shows the price it pays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.analysis.stats import centered


@dataclass(frozen=True)
class TimingProfile:
    """Per-sample timing measurements of one sampler configuration."""

    name: str
    observations: Tuple[Tuple[int, int], ...]  # (magnitude, cycles)

    @property
    def sample_count(self) -> int:
        return len(self.observations)

    def mean_cycles(self) -> float:
        return sum(c for _, c in self.observations) / self.sample_count

    def cycle_variance(self) -> float:
        mean = self.mean_cycles()
        return (
            sum((c - mean) ** 2 for _, c in self.observations)
            / self.sample_count
        )

    def magnitude_correlation(self) -> float:
        """Pearson correlation between |value| and cycles (0 if either
        series is constant)."""
        mags = [m for m, _ in self.observations]
        cycles = [c for _, c in self.observations]
        n = len(mags)
        mean_m = sum(mags) / n
        mean_c = sum(cycles) / n
        cov = sum(
            (m - mean_m) * (c - mean_c) for m, c in self.observations
        )
        var_m = sum((m - mean_m) ** 2 for m in mags)
        var_c = sum((c - mean_c) ** 2 for c in cycles)
        if var_m == 0 or var_c == 0:
            return 0.0
        return cov / math.sqrt(var_m * var_c)

    def per_magnitude_means(self) -> Dict[int, float]:
        groups: Dict[int, List[int]] = {}
        for magnitude, cycles in self.observations:
            groups.setdefault(magnitude, []).append(cycles)
        return {
            magnitude: sum(cs) / len(cs)
            for magnitude, cs in groups.items()
        }

    def magnitude_timing_spread(self, min_group: int = 20) -> float:
        """Max - min of per-magnitude mean cycles (populous groups only)."""
        groups: Dict[int, List[int]] = {}
        for magnitude, cycles in self.observations:
            groups.setdefault(magnitude, []).append(cycles)
        means = [
            sum(cs) / len(cs)
            for cs in groups.values()
            if len(cs) >= min_group
        ]
        if len(means) < 2:
            return 0.0
        return max(means) - min(means)

    def is_constant_time(self) -> bool:
        return self.cycle_variance() == 0.0


SamplerFactory = Callable[[], "tuple[object, object]"]
"""Returns (sampler, machine); sampler.sample() charges the machine."""


def profile_sampler(
    name: str, factory: SamplerFactory, q: int, samples: int = 2000
) -> TimingProfile:
    """Measure per-sample cycle counts of a cycle-accounted sampler."""
    sampler, machine = factory()
    observations = []
    for _ in range(samples):
        before = machine.cycles
        value = sampler.sample()
        observations.append(
            (abs(centered(value, q)), machine.cycles - before)
        )
    return TimingProfile(name=name, observations=tuple(observations))


def leakage_report(profiles: List[TimingProfile]) -> str:
    """Human-readable comparison of sampler timing behaviour."""
    from repro.analysis.tables import render_table

    rows = []
    for p in profiles:
        rows.append(
            [
                p.name,
                round(p.mean_cycles(), 1),
                round(math.sqrt(p.cycle_variance()), 2),
                round(p.magnitude_correlation(), 3),
                round(p.magnitude_timing_spread(), 1),
            ]
        )
    return render_table(
        [
            "sampler",
            "mean cycles",
            "stddev",
            "corr(|x|, cycles)",
            "per-|x| mean spread",
        ],
        rows,
        title="Sampler timing-leakage profile",
    )
