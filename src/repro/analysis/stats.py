"""Statistical verification helpers for the sampler test-suite.

The sampler correctness story has two layers: *exact* verification via
the DDG analysis (:mod:`repro.sampler.ddg`) and *statistical*
verification that the concrete samplers, driven by the simulated TRNG,
actually realise that distribution.  This module provides the latter:
chi-square goodness of fit against exact expected probabilities,
empirical moments, and total-variation distance between empirical counts
and a reference distribution.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Sequence

from scipy.stats import chi2


@dataclass(frozen=True)
class ChiSquareResult:
    statistic: float
    degrees_of_freedom: int
    p_value: float

    def passed(self, alpha: float = 0.001) -> bool:
        return self.p_value >= alpha


def chi_square_goodness_of_fit(
    observed: Mapping[int, int],
    expected_probabilities: Mapping[int, Fraction],
    min_expected: float = 5.0,
) -> ChiSquareResult:
    """Chi-square test of observed counts against exact probabilities.

    Cells with expected count below ``min_expected`` are pooled into a
    single tail cell (standard practice for sparse tails).
    """
    total = sum(observed.values())
    if total == 0:
        raise ValueError("no observations")
    cells = []
    pooled_observed = 0
    pooled_expected = 0.0
    for value, prob in expected_probabilities.items():
        expected = float(prob) * total
        got = observed.get(value, 0)
        if expected < min_expected:
            pooled_observed += got
            pooled_expected += expected
        else:
            cells.append((got, expected))
    # Any observation outside the expected support joins the pooled cell.
    support = set(expected_probabilities)
    pooled_observed += sum(
        count for value, count in observed.items() if value not in support
    )
    if pooled_expected > 0:
        cells.append((pooled_observed, pooled_expected))
    elif pooled_observed:
        raise ValueError(
            "observations outside the expected support with zero "
            "expected mass"
        )
    if len(cells) < 2:
        raise ValueError("too few cells for a chi-square test")
    statistic = sum((o - e) ** 2 / e for o, e in cells)
    dof = len(cells) - 1
    p_value = float(chi2.sf(statistic, dof))
    return ChiSquareResult(statistic, dof, p_value)


def empirical_moments(samples: Sequence[int]) -> Dict[str, float]:
    """Mean and (population) variance of integer samples."""
    if not samples:
        raise ValueError("no samples")
    n = len(samples)
    mean = sum(samples) / n
    variance = sum((s - mean) ** 2 for s in samples) / n
    return {"mean": mean, "variance": variance}


def count_samples(samples: Iterable[int]) -> Dict[int, int]:
    return dict(Counter(samples))


def total_variation_distance(
    observed: Mapping[int, int],
    expected_probabilities: Mapping[int, Fraction],
) -> float:
    """TV distance between empirical frequencies and exact probabilities."""
    total = sum(observed.values())
    if total == 0:
        raise ValueError("no observations")
    support = set(observed) | set(expected_probabilities)
    distance = 0.0
    for value in support:
        empirical = observed.get(value, 0) / total
        expected = float(expected_probabilities.get(value, Fraction(0)))
        distance += abs(empirical - expected)
    return distance / 2.0


def centered(value: int, q: int) -> int:
    """Map a mod-q representative to the centered range (-q/2, q/2]."""
    return value if value <= q // 2 else value - q


def sampling_sigma_estimate(samples: Sequence[int], q: int) -> float:
    """Estimated sigma of mod-q Gaussian samples."""
    cs = [centered(s, q) for s in samples]
    return math.sqrt(empirical_moments(cs)["variance"])
