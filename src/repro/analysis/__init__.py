"""Analysis: statistics, table rendering, and experiment drivers."""

from repro.analysis.leakage import (
    TimingProfile,
    leakage_report,
    profile_sampler,
)
from repro.analysis.security import (
    SecurityEstimate,
    estimate_security,
    security_margin_ratio,
)
from repro.analysis.stats import (
    ChiSquareResult,
    chi_square_goodness_of_fit,
    count_samples,
    empirical_moments,
    sampling_sigma_estimate,
    total_variation_distance,
)
from repro.analysis.tables import ComparisonRow, render_comparison, render_table

__all__ = [
    "SecurityEstimate",
    "estimate_security",
    "security_margin_ratio",
    "TimingProfile",
    "leakage_report",
    "profile_sampler",
    "ChiSquareResult",
    "chi_square_goodness_of_fit",
    "count_samples",
    "empirical_moments",
    "sampling_sigma_estimate",
    "total_variation_distance",
    "ComparisonRow",
    "render_comparison",
    "render_table",
]
