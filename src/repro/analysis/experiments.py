"""Experiment drivers: one function per paper table/figure.

This module is the single source of truth for the reproduction numbers:
the benchmark modules, the CLI (``rlwe-repro tables``) and the
EXPERIMENTS.md generator all call these functions.  Every function
returns structured data plus a rendered ASCII table that mirrors the
paper's layout with measured-versus-paper columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis import literature
from repro.analysis.tables import ComparisonRow, render_comparison, render_table
from repro.baselines.ecies import (
    ecies_encrypt_estimate,
    point_multiplication_estimate,
)
from repro.core.params import P1, P2, ParameterSet
from repro.cyclemodel.ntt_cycles import (
    ntt_forward_alg3,
    ntt_forward_packed,
    ntt_forward_parallel3,
    ntt_inverse_packed,
)
from repro.cyclemodel.polymul_cycles import ntt_multiply_cycles
from repro.cyclemodel.sampler_cycles import CycleKnuthYaoSampler
from repro.cyclemodel.scheme_cycles import (
    decrypt_cycles,
    encrypt_cycles,
    keygen_cycles,
)
from repro.machine.footprint import operation_footprints
from repro.machine.machine import CortexM4
from repro.sampler.ddg import level_profile
from repro.sampler.pmat import ProbabilityMatrix
from repro.trng.bitpool import BitPool
from repro.trng.stream import DeterministicRng
from repro.trng.trng import SimulatedTrng
from repro.trng.xorshift import Xorshift128

_DEFAULT_SEED = 2015  # the paper's year; any fixed seed works


def _machine_with_pool(seed: int) -> "tuple[CortexM4, BitPool]":
    machine = CortexM4()
    trng = SimulatedTrng(Xorshift128(seed), machine=machine)
    return machine, BitPool(trng, machine=machine)


def _random_poly(params: ParameterSet, rng: DeterministicRng) -> List[int]:
    # Routed through repro.trng (RND001): `rlwe-repro tables --seed N`
    # must regenerate bit-identical inputs on every machine.
    return rng.poly(params.n, params.q)


# ----------------------------------------------------------------------
# Table I: major operations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MajorOperationResult:
    params_name: str
    measured: Dict[str, int]
    paper: Dict[str, int]


_TABLE1_CACHE: Dict[Tuple[str, int], MajorOperationResult] = {}


def measure_major_operations(
    params: ParameterSet, seed: int = _DEFAULT_SEED
) -> MajorOperationResult:
    """Cycle-model measurements for every Table I row."""
    key = (params.name, seed)
    if key in _TABLE1_CACHE:
        return _TABLE1_CACHE[key]
    rng = DeterministicRng(seed)
    a = _random_poly(params, rng)
    b = _random_poly(params, rng)
    c = _random_poly(params, rng)

    machine = CortexM4()
    _, fwd = machine.measure(ntt_forward_packed, a, params)

    machine = CortexM4()
    _, par3 = machine.measure(ntt_forward_parallel3, a, b, c, params)

    machine = CortexM4()
    _, inv = machine.measure(ntt_inverse_packed, a, params)

    machine, pool = _machine_with_pool(seed)
    sampler = CycleKnuthYaoSampler(
        ProbabilityMatrix.for_params(params), params.q, machine, pool
    )
    start = machine.cycles
    sampler.sample_polynomial(params.n)
    sampling = machine.cycles - start

    machine = CortexM4()
    _, mult = machine.measure(ntt_multiply_cycles, a, b, params)

    measured = {
        "NTT transform": fwd,
        "Parallel NTT transform": par3,
        "Inverse NTT transform": inv,
        "Knuth-Yao sampling": sampling,
        "NTT multiplication": mult,
    }
    paper = {
        op: literature.THIS_WORK_TABLE1[(op, params.name)]
        for op in measured
    }
    result = MajorOperationResult(params.name, measured, paper)
    _TABLE1_CACHE[key] = result
    return result


def table1(seed: int = _DEFAULT_SEED) -> str:
    """Render the Table I reproduction for P1 and P2."""
    rows: List[ComparisonRow] = []
    for params in (P1, P2):
        result = measure_major_operations(params, seed)
        for op, measured in result.measured.items():
            rows.append(
                ComparisonRow(
                    f"{op} [{params.name}]", measured, result.paper[op]
                )
            )
    return render_comparison(
        rows, title="Table I: measured results of major operations (cycles)"
    )


# ----------------------------------------------------------------------
# Table II: scheme operations + memory
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SchemeOperationResult:
    params_name: str
    cycles: Dict[str, int]
    regions: Dict[str, Dict[str, int]]
    ram_bytes: Dict[str, int]
    table_flash_bytes: Dict[str, int]
    paper: Dict[str, "tuple[int, int, int]"]  # cycles, flash, ram


_TABLE2_CACHE: Dict[Tuple[str, int], SchemeOperationResult] = {}


def measure_scheme_operations(
    params: ParameterSet, seed: int = _DEFAULT_SEED
) -> SchemeOperationResult:
    key = (params.name, seed)
    if key in _TABLE2_CACHE:
        return _TABLE2_CACHE[key]
    rng = DeterministicRng(seed)

    machine, pool = _machine_with_pool(seed)
    pair, keygen = keygen_cycles(machine, params, pool)

    message = rng.message_bits(params.n)
    machine, pool = _machine_with_pool(seed + 1)
    ct, encrypt = encrypt_cycles(machine, params, pair.public, message, pool)

    machine = CortexM4()
    decoded, decrypt = decrypt_cycles(machine, params, pair.private, ct)
    if decoded != message:
        raise AssertionError(
            "cycle-model decryption failed to invert encryption"
        )

    footprints = {f.operation: f for f in operation_footprints(params)}
    cycles = {
        "Key Generation": keygen.cycles,
        "Encryption": encrypt.cycles,
        "Decryption": decrypt.cycles,
    }
    result = SchemeOperationResult(
        params_name=params.name,
        cycles=cycles,
        regions={
            "Key Generation": keygen.regions,
            "Encryption": encrypt.regions,
            "Decryption": decrypt.regions,
        },
        ram_bytes={
            op: footprints[op].ram_bytes for op in cycles
        },
        table_flash_bytes={
            op: footprints[op].table_flash_bytes for op in cycles
        },
        paper={
            op: literature.THIS_WORK_TABLE2[(op, params.name)]
            for op in cycles
        },
    )
    _TABLE2_CACHE[key] = result
    return result


def table2(seed: int = _DEFAULT_SEED) -> str:
    headers = [
        "operation",
        "cycles",
        "paper cycles",
        "RAM (B)",
        "paper RAM",
        "tables (B)",
        "paper flash",
    ]
    rows: List[List[object]] = []
    for params in (P1, P2):
        result = measure_scheme_operations(params, seed)
        for op in ("Key Generation", "Encryption", "Decryption"):
            paper_cycles, paper_flash, paper_ram = result.paper[op]
            rows.append(
                [
                    f"{op} [{params.name}]",
                    result.cycles[op],
                    paper_cycles,
                    result.ram_bytes[op],
                    paper_ram,
                    result.table_flash_bytes[op],
                    paper_flash,
                ]
            )
    return render_table(
        headers,
        rows,
        title=(
            "Table II: ring-LWE scheme operations "
            "(paper flash is code size, not modelled; "
            "'tables' is our constant-table footprint)"
        ),
    )


# ----------------------------------------------------------------------
# Table III: building-block comparison
# ----------------------------------------------------------------------
def table3(seed: int = _DEFAULT_SEED) -> str:
    headers = ["operation", "platform", "source", "cycles", "params"]
    rows: List[List[object]] = []
    for lit in literature.TABLE3_LITERATURE:
        rows.append(
            [lit.operation, lit.platform, lit.source, lit.cycles, lit.parameter_set]
        )
    for params in (P1, P2):
        result = measure_major_operations(params, seed)
        rows.append(
            [
                "NTT transform",
                "cycle model (this repro)",
                "*",
                result.measured["NTT transform"],
                params.name,
            ]
        )
        rows.append(
            [
                "NTT multiplication",
                "cycle model (this repro)",
                "*",
                result.measured["NTT multiplication"],
                params.name,
            ]
        )
        rows.append(
            [
                "Gaussian sampling (per sample)",
                "cycle model (this repro)",
                "*",
                round(result.measured["Knuth-Yao sampling"] / params.n, 1),
                params.name,
            ]
        )
    return render_table(
        headers, rows, title="Table III: building-block comparison"
    )


def table3_headline_factors(seed: int = _DEFAULT_SEED) -> Dict[str, float]:
    """The paper's headline comparison factors, recomputed.

    * our NTT (P1) vs the Cortex-M4F NTT of [10] (paper: 27.5% fewer
      cycles measured against its own 31,583 — here computed with the
      cycle model's number);
    * our sampler vs the fastest prior software sampler (paper: 7.6x).
    """
    result = measure_major_operations(P1, seed)
    p2 = measure_major_operations(P2, seed)
    oder_ntt = next(
        r.cycles
        for r in literature.TABLE3_LITERATURE
        if r.source == "[10]" and r.operation == "NTT transform"
    )
    fastest_sampler = min(
        r.cycles
        for r in literature.TABLE3_LITERATURE
        if r.operation == "Gaussian sampling"
    )
    per_sample = result.measured["Knuth-Yao sampling"] / P1.n
    return {
        # [10] measures P3 (n=512): compare with our P2-sized transform.
        "ntt_vs_oder_p3": p2.measured["NTT transform"] / oder_ntt,
        "sampler_speedup_vs_best_software": fastest_sampler / per_sample,
    }


# ----------------------------------------------------------------------
# Table IV: full-scheme comparison
# ----------------------------------------------------------------------
def table4(seed: int = _DEFAULT_SEED) -> str:
    headers = ["platform", "source", "key gen", "encrypt", "decrypt", "params"]
    rows: List[List[object]] = []
    by_key: Dict[Tuple[str, str, str], Dict[str, float]] = {}
    for lit in literature.TABLE4_LITERATURE:
        key = (lit.platform, lit.source, lit.parameter_set)
        by_key.setdefault(key, {})[lit.operation] = lit.cycles
    for (platform, source, pset), ops in by_key.items():
        rows.append(
            [
                platform,
                source,
                ops.get("Key generation"),
                ops.get("Encryption"),
                ops.get("Decryption"),
                pset,
            ]
        )
    for params in (P1, P2):
        result = measure_scheme_operations(params, seed)
        rows.append(
            [
                "cycle model (this repro)",
                "*",
                result.cycles["Key Generation"],
                result.cycles["Encryption"],
                result.cycles["Decryption"],
                params.name,
            ]
        )
    est = point_multiplication_estimate()
    rows.append(
        [
            f"ECIES-233 estimate ({est.curve_name} ladder)",
            "[19]+model",
            None,
            ecies_encrypt_estimate(),
            est.cycles,
            "233-bit",
        ]
    )
    return render_table(
        headers, rows, title="Table IV: ring-LWE encryption scheme comparison"
    )


def table4_headline_factors(seed: int = _DEFAULT_SEED) -> Dict[str, float]:
    """Speedup factors the paper's abstract claims, recomputed."""
    result = measure_scheme_operations(P1, seed)
    arm7 = {
        r.operation: r.cycles
        for r in literature.TABLE4_LITERATURE
        if r.platform == "ARM7TDMI"
    }
    return {
        "encrypt_vs_arm7tdmi": arm7["Encryption"] / result.cycles["Encryption"],
        "decrypt_vs_arm7tdmi": arm7["Decryption"] / result.cycles["Decryption"],
        "ecies_vs_encrypt": ecies_encrypt_estimate()
        / result.cycles["Encryption"],
    }


# ----------------------------------------------------------------------
# Fig. 1: probability-matrix structure
# ----------------------------------------------------------------------
def fig1(params: ParameterSet = P1) -> str:
    pmat = ProbabilityMatrix.for_params(params)
    zero_words = pmat.total_words - pmat.stored_words
    rows = [
        ComparisonRow("matrix rows", pmat.rows, 55 if params is P1 else None),
        ComparisonRow("matrix columns", pmat.columns, 109 if params is P1 else None),
        ComparisonRow("matrix bits", pmat.total_bits, 5995 if params is P1 else None),
        ComparisonRow("column words (total)", pmat.total_words, 218 if params is P1 else None),
        ComparisonRow("column words stored", pmat.stored_words, 180 if params is P1 else None),
        ComparisonRow("zero words elided", zero_words, 38 if params is P1 else None),
    ]
    corner = pmat.render_corner(rows=12, cols=14)
    return (
        render_comparison(
            rows,
            title=f"Fig. 1: probability matrix storage [{params.name}]",
        )
        + "\n\nmatrix corner (rows 0-11, columns 0-13):\n"
        + corner
    )


# ----------------------------------------------------------------------
# Fig. 2: DDG level termination probabilities
# ----------------------------------------------------------------------
def fig2(params: ParameterSet = P1, max_level: int = 13) -> str:
    pmat = ProbabilityMatrix.for_params(params)
    profile = level_profile(pmat)
    accumulated = profile.accumulated_floats()
    headers = ["level", "P[terminated within level]"]
    rows = [[L + 1, accumulated[L]] for L in range(max_level)]
    paper_anchor = (
        "paper anchors: 97.27% within 8 levels, 99.87% within 13 levels"
        if params is P1
        else ""
    )
    bars = []
    for L in range(2, max_level):
        width = int(accumulated[L] * 60)
        bars.append(f"level {L + 1:2d} |{'#' * width}{' ' * (60 - width)}| {accumulated[L]:.4%}")
    return (
        render_table(headers, rows, title=f"Fig. 2: accumulated termination probability [{params.name}]")
        + ("\n" + paper_anchor if paper_anchor else "")
        + "\n\n"
        + "\n".join(bars)
    )


def all_experiments(seed: int = _DEFAULT_SEED) -> str:
    """Every table and figure, concatenated (the CLI's `tables` output)."""
    parts = [
        table1(seed),
        table2(seed),
        table3(seed),
        table4(seed),
        fig1(),
        fig2(),
    ]
    return "\n\n".join(parts)
