"""ASCII table rendering for the benchmark harness.

Every bench prints its reproduction in the layout of the corresponding
paper table, with a "paper" column next to the "measured" column and the
ratio between them, so EXPERIMENTS.md can be regenerated mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as a boxed ASCII table with right-aligned numbers."""
    cells = [[_format(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    rule = "+".join("-" * (w + 2) for w in widths)
    rule = f"+{rule}+"
    lines.append(rule)
    lines.append(
        "| "
        + " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
        + " |"
    )
    lines.append(rule)
    for original, row in zip(rows, cells):
        rendered = []
        for i, cell in enumerate(row):
            if isinstance(original[i], (int, float)) and not isinstance(
                original[i], bool
            ):
                rendered.append(cell.rjust(widths[i]))
            else:
                rendered.append(cell.ljust(widths[i]))
        lines.append("| " + " | ".join(rendered) + " |")
    lines.append(rule)
    return "\n".join(lines)


def _format(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


@dataclass(frozen=True)
class ComparisonRow:
    """One measured-versus-paper entry."""

    label: str
    measured: float
    paper: Optional[float] = None

    @property
    def ratio(self) -> Optional[float]:
        if self.paper in (None, 0):
            return None
        return self.measured / self.paper

    def as_row(self) -> List[object]:
        measured = (
            int(self.measured)
            if float(self.measured).is_integer()
            else self.measured
        )
        paper = self.paper
        if paper is not None and float(paper).is_integer():
            paper = int(paper)
        return [self.label, measured, paper, self.ratio]


def render_comparison(
    rows: Sequence[ComparisonRow], title: Optional[str] = None
) -> str:
    """Render measured-vs-paper rows with the ratio column."""
    return render_table(
        ["quantity", "measured", "paper", "measured/paper"],
        [row.as_row() for row in rows],
        title=title,
    )
