"""Published numbers quoted by the paper's comparison tables.

Tables III and IV mix the paper's own measurements with results from
prior work.  The prior-work rows are irreproducible third-party
measurements; the paper treats them as constants and so do we.  Each
entry records the platform, the operation, the cycle count and the
parameter-set label used in the paper's footnotes.

Paper-reported values for the paper's *own* implementation also live
here (``THIS_WORK_*``): the benches print them next to the cycle-model
measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class LiteratureResult:
    """One row of Table III or IV from prior work."""

    source: str  # citation tag as printed in the paper
    platform: str
    operation: str
    cycles: float
    parameter_set: str
    note: str = ""


# ----------------------------------------------------------------------
# Table III: building blocks
# ----------------------------------------------------------------------
TABLE3_LITERATURE: Tuple[LiteratureResult, ...] = (
    LiteratureResult("[17]", "Core i5-3210M", "NTT transform", 4_480, "P5"),
    LiteratureResult("[17]", "Core i3-2310", "NTT transform", 4_484, "P5"),
    LiteratureResult("[17]", "Core i5-3210M", "NTT multiplication", 16_052, "P5"),
    LiteratureResult("[17]", "Core i3-2310", "NTT multiplication", 16_096, "P5"),
    LiteratureResult(
        "[11]", "ATxmega64A3", "NTT transform", 2_720_000, "P3",
        note="estimated from time at 32 MHz",
    ),
    LiteratureResult("[10]", "Cortex-M4F", "NTT transform", 122_619, "P3"),
    LiteratureResult("[10]", "Cortex-M4F", "NTT multiplication", 508_624, "P3"),
    LiteratureResult("[12]", "ARM7TDMI", "NTT transform", 260_521, "P3"),
    LiteratureResult("[12]", "ATMega64", "NTT transform", 2_207_787, "P3"),
    LiteratureResult("[12]", "ARM7TDMI", "NTT transform", 109_306, "P1"),
    LiteratureResult("[12]", "ATMega64", "NTT transform", 754_668, "P1"),
    LiteratureResult(
        "[11]", "ATxmega64A3", "NTT transform", 1_216_000, "P1",
        note="estimated from time at 32 MHz",
    ),
    LiteratureResult("[9]", "Core i5 4570R", "NTT multiplication", 342_800, "P4"),
    LiteratureResult("[12]", "ARM7TDMI", "Gaussian sampling", 218.6, "P3"),
    LiteratureResult("[12]", "ATmega64", "Gaussian sampling", 1_206.3, "P3"),
    LiteratureResult("[9]", "Core i5 4570R", "Gaussian sampling", 652.3, "P4"),
    LiteratureResult("[10]", "Cortex-M4F", "Gaussian sampling", 1_828.0, "P3"),
)

#: The paper's own Table III rows (Cortex-M4F, this work).
THIS_WORK_TABLE3 = {
    ("NTT transform", "P1"): 31_583,
    ("NTT multiplication", "P1"): 108_147,
    ("NTT transform", "P2"): 71_090,
    ("NTT multiplication", "P2"): 237_803,
    ("Gaussian sampling", "P1"): 28.5,  # per sample, P1 and P2 alike
    ("Gaussian sampling", "P2"): 28.5,
}

# ----------------------------------------------------------------------
# Table IV: full schemes
# ----------------------------------------------------------------------
TABLE4_LITERATURE: Tuple[LiteratureResult, ...] = (
    LiteratureResult("[12]", "ARM7TDMI", "Key generation", 575_047, "P1"),
    LiteratureResult("[12]", "ARM7TDMI", "Encryption", 878_454, "P1"),
    LiteratureResult("[12]", "ARM7TDMI", "Decryption", 226_235, "P1"),
    LiteratureResult("[12]", "ATMega64", "Key generation", 2_770_592, "P1"),
    LiteratureResult("[12]", "ATMega64", "Encryption", 3_042_675, "P1"),
    LiteratureResult("[12]", "ATMega64", "Decryption", 1_368_969, "P1"),
    LiteratureResult(
        "[11]", "ATxmega64A3", "Encryption", 5_024_000, "P1",
        note="estimated from time at 32 MHz",
    ),
    LiteratureResult(
        "[11]", "ATxmega64A3", "Decryption", 2_464_000, "P1",
        note="estimated from time at 32 MHz",
    ),
    LiteratureResult(
        "[3]", "Core 2 Duo", "Key generation", 9_300_000, "P1",
        note="estimated from reported time",
    ),
    LiteratureResult("[3]", "Core 2 Duo", "Encryption", 4_560_000, "P1"),
    LiteratureResult("[3]", "Core 2 Duo", "Decryption", 1_710_000, "P1"),
    LiteratureResult("[3]", "Core 2 Duo", "Key generation", 13_590_000, "P2"),
    LiteratureResult("[3]", "Core 2 Duo", "Encryption", 9_180_000, "P2"),
    LiteratureResult("[3]", "Core 2 Duo", "Decryption", 3_540_000, "P2"),
)

#: The paper's own Table IV rows (Cortex-M4F, this work).
THIS_WORK_TABLE4 = {
    ("Key generation", "P1"): 117_009,
    ("Encryption", "P1"): 121_166,
    ("Decryption", "P1"): 43_324,
    ("Key generation", "P2"): 252_002,
    ("Encryption", "P2"): 261_939,
    ("Decryption", "P2"): 96_520,
}

#: The paper's own Table I (major operations).
THIS_WORK_TABLE1 = {
    ("NTT transform", "P1"): 31_583,
    ("NTT transform", "P2"): 73_406,
    ("Parallel NTT transform", "P1"): 84_031,
    ("Parallel NTT transform", "P2"): 188_150,
    ("Inverse NTT transform", "P1"): 39_126,
    ("Inverse NTT transform", "P2"): 90_583,
    ("Knuth-Yao sampling", "P1"): 7_294,
    ("Knuth-Yao sampling", "P2"): 14_604,
    ("NTT multiplication", "P1"): 108_147,
    ("NTT multiplication", "P2"): 248_310,
}

#: The paper's own Table II (cycles / flash / RAM).
THIS_WORK_TABLE2 = {
    ("Key Generation", "P1"): (116_772, 1_552, 1_596),
    ("Encryption", "P1"): (121_166, 1_506, 3_128),
    ("Decryption", "P1"): (43_324, 516, 2_100),
    ("Key Generation", "P2"): (263_622, 1_552, 3_132),
    ("Encryption", "P2"): (261_939, 1_506, 6_200),
    ("Decryption", "P2"): (96_520, 516, 4_148),
}

#: ECC comparison constants (Section IV-B).
ECC_POINT_MULT_M0PLUS = 2_761_640
ECIES_ENCRYPT_ESTIMATE = 5_523_280


def table3_rows(
    operation: Optional[str] = None,
) -> Tuple[LiteratureResult, ...]:
    """Literature rows of Table III, optionally filtered by operation."""
    if operation is None:
        return TABLE3_LITERATURE
    return tuple(r for r in TABLE3_LITERATURE if r.operation == operation)


def table4_rows(
    operation: Optional[str] = None,
) -> Tuple[LiteratureResult, ...]:
    if operation is None:
        return TABLE4_LITERATURE
    return tuple(r for r in TABLE4_LITERATURE if r.operation == operation)
