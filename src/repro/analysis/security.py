"""Coarse LWE security estimates for the paper's parameter labels.

The paper labels P1 "medium-term" and P2 "long-term" security, citing
the parameter selection of Goettert et al. (CHES 2012), which in turn
rests on the Lindner-Peikert (CT-RSA 2011) analysis.  This module
implements that analysis' *distinguishing attack* estimate so the labels
are backed by a number rather than folklore:

1. distinguishing LWE with advantage ``eps`` needs a dual-lattice vector
   of length ``L = (q / s) * sqrt(ln(1/eps) / pi)`` where
   ``s = sigma * sqrt(2*pi)``;
2. BKZ with root-Hermite factor ``delta`` reaches, at the optimal
   sub-dimension, a vector of length ``2^(2 * sqrt(n log2 q log2 delta))``
   in the relevant q-ary lattice family, so the attack needs
   ``log2(delta) = (log2 L)^2 / (4 n log2 q)``;
3. Lindner-Peikert's BKZ runtime extrapolation:
   ``log2(seconds) = 1.8 / log2(delta) - 110``.

This is a *2011-era model* — kept deliberately, because it is the model
the paper's parameters were chosen under.  Modern estimators (core-SVP
etc.) assign these parameter sets lower security; that gap is a property
of the field's progress, not of the reproduction, and is noted in the
README's security notes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.params import ParameterSet

#: Distinguishing advantage the estimate targets (LP11 use 2^-64 ranges).
DEFAULT_ADVANTAGE = 2.0**-64

#: Clock assumed when converting seconds to operations (2.3 GHz, LP11).
_LOG2_OPS_PER_SECOND = math.log2(2.3e9)


@dataclass(frozen=True)
class SecurityEstimate:
    """Output of the Lindner-Peikert distinguishing-attack model."""

    params_name: str
    advantage: float
    required_vector_length: float
    log2_delta: float
    log2_seconds: float

    @property
    def delta(self) -> float:
        """Root-Hermite factor the attacker's BKZ must reach."""
        return 2.0**self.log2_delta

    @property
    def bit_security(self) -> float:
        """Estimated log2 of attack operations (seconds * clock)."""
        return self.log2_seconds + _LOG2_OPS_PER_SECOND

    def __str__(self) -> str:
        return (
            f"{self.params_name}: delta = {self.delta:.5f}, "
            f"~2^{self.bit_security:.0f} operations "
            f"(LP11 distinguishing model, eps = {self.advantage:.1e})"
        )


def required_vector_length(
    params: ParameterSet, advantage: float = DEFAULT_ADVANTAGE
) -> float:
    """Length of the dual vector that distinguishes with ``advantage``."""
    if not 0 < advantage < 1:
        raise ValueError("advantage must be in (0, 1)")
    return (params.q / params.s) * math.sqrt(
        math.log(1.0 / advantage) / math.pi
    )


def required_log2_delta(
    params: ParameterSet, advantage: float = DEFAULT_ADVANTAGE
) -> float:
    """Root-Hermite factor (log2) needed to reach that length."""
    length = required_vector_length(params, advantage)
    log2_length = math.log2(length)
    return (log2_length**2) / (4.0 * params.n * math.log2(params.q))


def estimate_security(
    params: ParameterSet, advantage: float = DEFAULT_ADVANTAGE
) -> SecurityEstimate:
    """Full LP11 distinguishing-attack estimate for ``params``."""
    log2_delta = required_log2_delta(params, advantage)
    log2_seconds = 1.8 / log2_delta - 110.0
    return SecurityEstimate(
        params_name=params.name,
        advantage=advantage,
        required_vector_length=required_vector_length(params, advantage),
        log2_delta=log2_delta,
        log2_seconds=log2_seconds,
    )


def security_margin_ratio(
    a: ParameterSet, b: ParameterSet, advantage: float = DEFAULT_ADVANTAGE
) -> float:
    """How much harder ``b`` is than ``a`` (ratio of bit securities)."""
    return (
        estimate_security(b, advantage).bit_security
        / estimate_security(a, advantage).bit_security
    )
