"""Binary-field elliptic curves for the ECIES comparison (Table IV).

Implements short Weierstrass curves ``y^2 + xy = x^3 + a*x^2 + b`` over
GF(2^m) with:

* the affine group law (addition, doubling, negation, scalar
  multiplication by double-and-add);
* the Lopez-Dahab x-only Montgomery ladder — the standard constant-time
  point-multiplication algorithm on binary curves (and the one the
  Cortex-M0+ implementation in [19] uses), with per-operation field-op
  counting so :mod:`repro.baselines.ecies` can estimate cycle costs;
* point construction from an x-coordinate via the half-trace solver.

The instance used by the benches is NIST K-233 (a = 0, b = 1 over
x^233 + x^74 + 1), matching the 233-bit security point of the paper's
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.baselines.gf2m import FIELD_5, FIELD_233, BinaryField

#: The point at infinity (group identity).
INFINITY: "Optional[tuple[int, int]]" = None
Point = Optional[Tuple[int, int]]


class FieldOpCounter:
    """Tallies field operations for the cycle-cost estimate."""

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {
            "mul": 0,
            "square": 0,
            "add": 0,
            "inverse": 0,
        }

    def record(self, op: str, count: int = 1) -> None:
        self.counts[op] = self.counts.get(op, 0) + count

    def total(self) -> int:
        return sum(self.counts.values())


@dataclass
class BinaryCurve:
    """y^2 + xy = x^3 + a*x^2 + b over a binary field."""

    name: str
    fld: BinaryField
    a: int
    b: int
    counter: FieldOpCounter = field(default_factory=FieldOpCounter)

    def __post_init__(self) -> None:
        if self.b == 0:
            raise ValueError("b = 0 gives a singular curve")
        self.fld._check(self.a, self.b)

    # ------------------------------------------------------------------
    # Counted field helpers
    # ------------------------------------------------------------------
    def _mul(self, x: int, y: int) -> int:
        self.counter.record("mul")
        return self.fld.mul(x, y)

    def _sq(self, x: int) -> int:
        self.counter.record("square")
        return self.fld.square(x)

    def _add(self, x: int, y: int) -> int:
        self.counter.record("add")
        return self.fld.add(x, y)

    def _inv(self, x: int) -> int:
        self.counter.record("inverse")
        return self.fld.inverse(x)

    # ------------------------------------------------------------------
    # Point predicates and affine group law
    # ------------------------------------------------------------------
    def is_on_curve(self, point: Point) -> bool:
        if point is None:
            return True
        x, y = point
        if not (self.fld.is_element(x) and self.fld.is_element(y)):
            return False
        f = self.fld
        lhs = f.add(f.square(y), f.mul(x, y))
        rhs = f.add(
            f.add(f.mul(f.square(x), x), f.mul(self.a, f.square(x))), self.b
        )
        return lhs == rhs

    def negate(self, point: Point) -> Point:
        if point is None:
            return None
        x, y = point
        return (x, self.fld.add(x, y))

    def add(self, p: Point, q: Point) -> Point:
        """Affine addition covering all cases."""
        if p is None:
            return q
        if q is None:
            return p
        x1, y1 = p
        x2, y2 = q
        if x1 == x2:
            if self.fld.add(y1, y2) == x1:  # q == -p (or x1 == 0 doubling)
                return None
            return self.double(p)
        lam = self._mul(self._add(y1, y2), self._inv(self._add(x1, x2)))
        x3 = self._add(
            self._add(self._add(self._sq(lam), lam), self._add(x1, x2)),
            self.a,
        )
        y3 = self._add(
            self._add(self._mul(lam, self._add(x1, x3)), x3), y1
        )
        return (x3, y3)

    def double(self, p: Point) -> Point:
        if p is None:
            return None
        x1, y1 = p
        if x1 == 0:
            # 2P = infinity when x = 0 (P is its own negative).
            return None
        lam = self._add(x1, self._mul(y1, self._inv(x1)))
        x3 = self._add(self._add(self._sq(lam), lam), self.a)
        y3 = self._add(self._sq(x1), self._mul(self._add(lam, 1), x3))
        return (x3, y3)

    def scalar_multiply(self, k: int, p: Point) -> Point:
        """Left-to-right double-and-add (the non-ladder reference)."""
        if k < 0:
            return self.scalar_multiply(-k, self.negate(p))
        result: Point = None
        addend = p
        for bit_index in range(k.bit_length() - 1, -1, -1):
            result = self.double(result)
            if (k >> bit_index) & 1:
                result = self.add(result, addend)
        return result

    # ------------------------------------------------------------------
    # Lopez-Dahab x-only Montgomery ladder
    # ------------------------------------------------------------------
    def montgomery_ladder_x(self, k: int, x_p: int) -> Optional[int]:
        """x-coordinate of k*P given x(P), via the Lopez-Dahab ladder.

        Returns None when k*P is the point at infinity.  This is the
        operation whose cost dominates ECIES on constrained devices.
        """
        if k < 0:
            raise ValueError("ladder expects a non-negative scalar")
        if k == 0:
            return None
        if x_p == 0:
            # A point with x = 0 is its own negative: 2P = infinity.
            return x_p if k % 2 else None
        if k == 1:
            return x_p
        f = self.fld
        # R0 = P, R1 = 2P in (X, Z) coordinates.
        X1, Z1 = x_p, 1
        X2 = self._add(self._sq(self._sq(x_p)), self.b)  # x_p^4 + b
        Z2 = self._sq(x_p)
        for bit_index in range(k.bit_length() - 2, -1, -1):
            bit = (k >> bit_index) & 1
            if bit:
                X1, Z1, X2, Z2 = X2, Z2, X1, Z1
            # Differential addition: R_other = R0 + R1 (difference P).
            t = self._mul(X1, Z2)
            u = self._mul(X2, Z1)
            Z_add = self._sq(self._add(t, u))
            X_add = self._add(self._mul(x_p, Z_add), self._mul(t, u))
            # Doubling of R0.
            x_sq = self._sq(X1)
            z_sq = self._sq(Z1)
            Z_dbl = self._mul(x_sq, z_sq)
            X_dbl = self._add(self._sq(x_sq), self._mul(self.b, self._sq(z_sq)))
            X1, Z1 = X_dbl, Z_dbl
            X2, Z2 = X_add, Z_add
            if bit:
                X1, Z1, X2, Z2 = X2, Z2, X1, Z1
        if Z1 == 0:
            return None
        return self._mul(X1, self._inv(Z1))

    # ------------------------------------------------------------------
    # Point construction
    # ------------------------------------------------------------------
    def solve_quadratic(self, c: int) -> Optional[int]:
        """Solve z^2 + z = c via the half-trace (odd m only).

        Returns a solution or None when Tr(c) = 1 (no solution).
        """
        f = self.fld
        if f.m % 2 == 0:
            raise NotImplementedError("half-trace requires odd m")
        if f.trace(c) != 0:
            return None
        # Half-trace H(c) = sum_{i=0}^{(m-1)/2} c^(2^(2i)).
        acc = c
        term = c
        for _ in range((f.m - 1) // 2):
            term = f.square(f.square(term))
            acc = f.add(acc, term)
        return acc

    def point_from_x(self, x: int) -> Optional[Point]:
        """Lift an x-coordinate to a curve point, if one exists."""
        f = self.fld
        if x == 0:
            # y^2 = b: y = sqrt(b) = b^(2^(m-1)).
            y = f.pow(self.b, 1 << (f.m - 1))
            return (0, y)
        rhs = f.add(
            f.add(f.mul(f.square(x), x), f.mul(self.a, f.square(x))), self.b
        )
        c = f.mul(rhs, f.inverse(f.square(x)))
        z = self.solve_quadratic(c)
        if z is None:
            return None
        return (x, f.mul(x, z))

    def find_point(self, start_x: int = 1) -> Point:
        """First curve point with x >= start_x (deterministic)."""
        x = start_x
        while True:
            point = self.point_from_x(x)
            if point is not None:
                return point
            x += 1

    def enumerate_points(self) -> List[Point]:
        """All points including infinity (tiny fields only)."""
        points: List[Point] = [None]
        for x in self.fld.elements():
            for y in self.fld.elements():
                if self.is_on_curve((x, y)):
                    points.append((x, y))
        return points


def curve_k233() -> BinaryCurve:
    """NIST K-233: y^2 + xy = x^3 + 1 over GF(2^233)."""
    return BinaryCurve("K-233", FIELD_233, a=0, b=1)


def curve_tiny() -> BinaryCurve:
    """A small test curve over GF(2^5) for exhaustive checks."""
    return BinaryCurve("tiny-5", FIELD_5, a=1, b=1)
