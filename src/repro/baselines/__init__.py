"""Comparison baselines: binary-field ECC and the ECIES estimate."""

from repro.baselines.ecc import BinaryCurve, curve_k233, curve_tiny
from repro.baselines.ecies import (
    M0PLUS_GF233,
    FieldCostModel,
    PointMultEstimate,
    ecies_decrypt_estimate,
    ecies_encrypt_estimate,
    point_multiplication_estimate,
)
from repro.baselines.gf2m import FIELD_5, FIELD_8, FIELD_233, BinaryField

__all__ = [
    "BinaryCurve",
    "curve_k233",
    "curve_tiny",
    "BinaryField",
    "FIELD_5",
    "FIELD_8",
    "FIELD_233",
    "FieldCostModel",
    "M0PLUS_GF233",
    "PointMultEstimate",
    "point_multiplication_estimate",
    "ecies_encrypt_estimate",
    "ecies_decrypt_estimate",
]
