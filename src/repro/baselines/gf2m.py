"""Binary field arithmetic GF(2^m) for the ECC comparison baseline.

Table IV compares the ring-LWE scheme against an ECIES estimate built on
a 233-bit binary-curve point multiplication [19].  Rather than carrying
that comparison as a bare constant, this package implements the actual
substrate: polynomial-basis GF(2^m) arithmetic with sparse reduction
trinomials/pentanomials, including the standardised field of K-233/B-233
(x^233 + x^74 + 1).

Field elements are Python integers whose bits are polynomial
coefficients over GF(2).  Multiplication is carry-less (XOR-shift), and
inversion uses the binary extended Euclidean algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple


@dataclass(frozen=True)
class BinaryField:
    """GF(2^m) with reduction polynomial given by its exponent list."""

    m: int
    reduction_exponents: Tuple[int, ...]  # e.g. (233, 74, 0)

    def __post_init__(self) -> None:
        exps = sorted(self.reduction_exponents, reverse=True)
        if exps[0] != self.m or exps[-1] != 0:
            raise ValueError(
                "reduction polynomial must have degree m and constant term 1"
            )
        if len(set(exps)) != len(exps):
            raise ValueError("repeated exponent in reduction polynomial")

    @property
    def modulus(self) -> int:
        value = 0
        for e in self.reduction_exponents:
            value |= 1 << e
        return value

    @property
    def order(self) -> int:
        """Number of field elements, 2^m."""
        return 1 << self.m

    # ------------------------------------------------------------------
    # Element arithmetic
    # ------------------------------------------------------------------
    def is_element(self, a: int) -> bool:
        return 0 <= a < (1 << self.m)

    def _check(self, *elements: int) -> None:
        for a in elements:
            if not self.is_element(a):
                raise ValueError(f"{a:#x} is not a GF(2^{self.m}) element")

    def add(self, a: int, b: int) -> int:
        """Addition = XOR (characteristic 2)."""
        self._check(a, b)
        return a ^ b

    def reduce(self, a: int) -> int:
        """Reduce an unreduced carry-less product modulo the field poly."""
        modulus = self.modulus
        while a.bit_length() > self.m:
            shift = a.bit_length() - self.m - 1
            a ^= modulus << shift
        return a

    def clmul(self, a: int, b: int) -> int:
        """Carry-less (polynomial) multiplication, unreduced."""
        result = 0
        while b:
            low = b & -b
            result ^= a * low  # times a power of two: a plain shift
            b ^= low
        return result

    def mul(self, a: int, b: int) -> int:
        self._check(a, b)
        return self.reduce(self.clmul(a, b))

    def square(self, a: int) -> int:
        """Squaring is linear in GF(2^m): spread the bits and reduce."""
        self._check(a)
        result = 0
        bit = 0
        while a:
            if a & 1:
                result |= 1 << (2 * bit)
            a >>= 1
            bit += 1
        return self.reduce(result)

    def inverse(self, a: int) -> int:
        """Multiplicative inverse via the binary extended Euclid."""
        self._check(a)
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(2^m)")
        u, v = a, self.modulus
        g1, g2 = 1, 0
        while u != 1:
            j = u.bit_length() - v.bit_length()
            if j < 0:
                u, v = v, u
                g1, g2 = g2, g1
                j = -j
            u ^= v << j
            g1 ^= g2 << j
        return self.reduce(g1)

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inverse(b))

    def pow(self, a: int, exponent: int) -> int:
        """Square-and-multiply exponentiation."""
        self._check(a)
        if exponent < 0:
            a = self.inverse(a)
            exponent = -exponent
        result = 1
        base = a
        while exponent:
            if exponent & 1:
                result = self.mul(result, base)
            base = self.square(base)
            exponent >>= 1
        return result

    def trace(self, a: int) -> int:
        """Field trace Tr(a) = a + a^2 + a^4 + ... + a^(2^(m-1))."""
        self._check(a)
        acc = a
        term = a
        for _ in range(self.m - 1):
            term = self.square(term)
            acc ^= term
        if acc not in (0, 1):  # pragma: no cover - algebra guarantees
            raise ArithmeticError("trace must be 0 or 1")
        return acc

    def elements(self) -> Iterable[int]:
        """All field elements (only sensible for tiny test fields)."""
        if self.m > 16:
            raise ValueError("refusing to enumerate a large field")
        return range(1 << self.m)


#: NIST K-233 / B-233 field: x^233 + x^74 + 1.
FIELD_233 = BinaryField(233, (233, 74, 0))

#: Small fields for exhaustive testing.
FIELD_5 = BinaryField(5, (5, 2, 0))
FIELD_8 = BinaryField(8, (8, 4, 3, 1, 0))  # the AES field
