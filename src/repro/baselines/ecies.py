"""ECIES cycle estimate for the Table IV comparison.

The paper compares its scheme against ECIES at 233-bit (medium-term)
security by costing the dominant operations: two point multiplications
per encryption, using the 2,761,640-cycle Cortex-M0+ point
multiplication of [19].  We rebuild that estimate from the ground up:

1. run the actual Lopez-Dahab ladder of
   :mod:`repro.baselines.ecc` on K-233 and *count* field operations;
2. price each operation with a per-word cost model of GF(2^233)
   arithmetic on a 32-bit MCU (shift-and-xor comb multiplication, table
   squaring, Itoh-Tsujii inversion);
3. multiply and compare with the literature constant.

The default per-operation prices are calibrated so the model lands on
[19]'s measured total (within <1%) given our exact operation counts —
i.e. the *counts* are measured, the *prices* carry the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.baselines.ecc import BinaryCurve, curve_k233

#: Literature constants (paper Section IV-B).
POINT_MULT_CYCLES_M0PLUS = 2_761_640  # [19], 233-bit, Cortex-M0+
ECIES_ENCRYPT_CYCLES_PAPER = 5_523_280  # two point multiplications


@dataclass(frozen=True)
class FieldCostModel:
    """Cycle prices for GF(2^m) operations on a small 32-bit MCU.

    Defaults model GF(2^233) on the Cortex-M0+: an 8-word comb
    multiplication (~1750 cycles), table-driven squaring (~220), XOR
    addition (~30), and Itoh-Tsujii inversion (10 multiplications plus
    m-1 squarings).  ``ladder_overhead`` covers the per-iteration loop,
    swap and pointer work of the Montgomery ladder.
    """

    name: str = "GF(2^233) on Cortex-M0+"
    mul: int = 1750
    square: int = 220
    add: int = 30
    ladder_overhead: int = 100

    @property
    def inverse(self) -> int:
        """Itoh-Tsujii: ~10 multiplications + 232 squarings for m = 233."""
        return 10 * self.mul + 232 * self.square

    def price(self, counts: Dict[str, int], iterations: int) -> int:
        """Total cycles for an operation-count profile."""
        return (
            counts.get("mul", 0) * self.mul
            + counts.get("square", 0) * self.square
            + counts.get("add", 0) * self.add
            + counts.get("inverse", 0) * self.inverse
            + iterations * self.ladder_overhead
        )


M0PLUS_GF233 = FieldCostModel()


@dataclass(frozen=True)
class PointMultEstimate:
    """Modelled point-multiplication cost with its inputs."""

    curve_name: str
    scalar_bits: int
    field_ops: Dict[str, int]
    cycles: int
    literature_cycles: int

    @property
    def relative_error(self) -> float:
        return (self.cycles - self.literature_cycles) / self.literature_cycles


def point_multiplication_estimate(
    curve: BinaryCurve = None,
    cost_model: FieldCostModel = M0PLUS_GF233,
    scalar: int = None,
) -> PointMultEstimate:
    """Run the ladder, count field ops, and price them.

    The default scalar is a fixed full-width (233-bit) value so the
    estimate is deterministic; ladder cost is scalar-independent apart
    from bit-length anyway (that is the point of a ladder).
    """
    if curve is None:
        curve = curve_k233()
    if scalar is None:
        # A fixed full-width scalar: alternating bits below a leading 1.
        scalar = (1 << 232) | int("55" * 29, 16) & ((1 << 232) - 1)
    base = curve.find_point()
    curve.counter.counts = {k: 0 for k in curve.counter.counts}
    result_x = curve.montgomery_ladder_x(scalar, base[0])
    if result_x is None:  # pragma: no cover - full-width scalar, K-233
        raise ArithmeticError("unexpected infinity during estimate")
    counts = dict(curve.counter.counts)
    iterations = scalar.bit_length() - 1
    cycles = cost_model.price(counts, iterations)
    return PointMultEstimate(
        curve_name=curve.name,
        scalar_bits=scalar.bit_length(),
        field_ops=counts,
        cycles=cycles,
        literature_cycles=POINT_MULT_CYCLES_M0PLUS,
    )


def ecies_encrypt_estimate(
    cost_model: FieldCostModel = M0PLUS_GF233,
) -> int:
    """ECIES encryption ~ two point multiplications (paper Section IV-B)."""
    return 2 * point_multiplication_estimate(cost_model=cost_model).cycles


def ecies_decrypt_estimate(
    cost_model: FieldCostModel = M0PLUS_GF233,
) -> int:
    """ECIES decryption ~ one point multiplication."""
    return point_multiplication_estimate(cost_model=cost_model).cycles
