"""Table III — building-block comparison against the literature."""

from repro.analysis import experiments


def test_table3_report(benchmark, paper_report):
    table = benchmark.pedantic(
        experiments.table3, rounds=1, iterations=1, warmup_rounds=0
    )
    paper_report("Table III — building blocks vs literature", table)


def test_table3_headline_factors(benchmark, paper_report):
    factors = benchmark.pedantic(
        experiments.table3_headline_factors,
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    lines = [
        (
            "our NTT (P2-size) vs Oder et al. [10] Cortex-M4F: "
            f"{factors['ntt_vs_oder_p3']:.2f}x of their cycles "
            "(paper: 0.58x, i.e. 72% faster)"
        ),
        (
            "sampler speedup vs best prior software sampler: "
            f"{factors['sampler_speedup_vs_best_software']:.1f}x "
            "(paper: 7.6x)"
        ),
    ]
    paper_report("Table III — headline factors", "\n".join(lines))
    assert factors["ntt_vs_oder_p3"] < 0.75
    assert factors["sampler_speedup_vs_best_software"] > 7.0
