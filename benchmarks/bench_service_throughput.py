"""Service-layer throughput benchmark with machine-readable output.

Starts the micro-batching server in-process and drives it with the
closed-loop load generator across a grid of coalescer batch windows and
client concurrency levels, then writes ``BENCH_service_throughput.json``
so later PRs can track the serving-path perf trajectory.  Not collected
by pytest (no ``test_`` prefix) — run it directly:

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
    PYTHONPATH=src python benchmarks/bench_service_throughput.py \\
        --ops encrypt --concurrency 8,32 --windows 1:0,32:2 --quick

Per (op, window, concurrency) run the JSON records ops/s, p50/p90/p99
latency, and the server-observed mean batch size; the ``speedups``
section compares the best coalesced window against the window-1
baseline (which serves through the scheme's single-message API — the
server a repo without the coalescer would be) at each concurrency
level.  The PR 2 acceptance bar is >= 5x at concurrency >= 32 on the
NumPy backend.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import Dict, List, Sequence, Tuple

from repro import __version__, get_parameter_set, seeded_scheme
from repro.backend import available_backends, skipped_backends_report
from repro.numpy_support import get_numpy
from repro.service.loadgen import run_load
from repro.service.server import start_server

DEFAULT_OUTPUT = "BENCH_service_throughput.json"


def _parse_windows(spec: str) -> List[Tuple[int, float]]:
    """``"1:0,32:2"`` -> [(1, 0.0), (32, 2.0)] (max_batch : max_wait_ms)."""
    windows = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        batch_text, _, wait_text = part.partition(":")
        windows.append((int(batch_text), float(wait_text or 0.0)))
    return windows


async def _run_grid(
    params_name: str,
    backend: str,
    seed: int,
    ops: Sequence[str],
    windows: Sequence[Tuple[int, float]],
    concurrency_levels: Sequence[int],
    requests_factor: int,
    min_requests: int,
) -> List[Dict]:
    results = []
    for max_batch, max_wait_ms in windows:
        for op in ops:
            for concurrency in concurrency_levels:
                # A fresh server per cell: batcher stats then describe
                # exactly this run, and no warm cache bleeds between cells.
                scheme = seeded_scheme(
                    get_parameter_set(params_name), seed, backend=backend
                )
                server = await start_server(
                    scheme,
                    max_batch=max_batch,
                    max_wait=max_wait_ms / 1e3,
                )
                requests = max(min_requests, concurrency * requests_factor)
                try:
                    load = await run_load(
                        "127.0.0.1",
                        server.port,
                        op=op,
                        concurrency=concurrency,
                        requests=requests,
                        message=bytes(range(32)),
                    )
                    # Non-batched ops (ping, get_public_key) have no
                    # coalescer and report a zero batch size.
                    stats = server.service.stats()["ops"].get(
                        op, {"mean_batch_size": 0.0}
                    )
                finally:
                    await server.close()
                row = {
                    "op": op,
                    "max_batch": max_batch,
                    "max_wait_ms": max_wait_ms,
                    "concurrency": concurrency,
                    "requests": requests,
                    "errors": load["errors"],
                    "ops_per_sec": load["ops_per_sec"],
                    "p50_ms": load["latency_ms"]["p50"],
                    "p90_ms": load["latency_ms"]["p90"],
                    "p99_ms": load["latency_ms"]["p99"],
                    "mean_batch_size": stats["mean_batch_size"],
                }
                results.append(row)
                print(
                    f"  {op:<12} window {max_batch:>3} "
                    f"(wait {max_wait_ms:g}ms)  conc {concurrency:>4}  "
                    f"{row['ops_per_sec']:>8.0f} ops/s  "
                    f"p50 {row['p50_ms']:>7.2f}ms  "
                    f"p99 {row['p99_ms']:>7.2f}ms  "
                    f"mean batch {row['mean_batch_size']:.1f}",
                    flush=True,
                )
    return results


def _speedups(results: List[Dict]) -> List[Dict]:
    """Best coalesced window vs the window-1 baseline per (op, conc)."""
    speedups = []
    keys = sorted(
        {(r["op"], r["concurrency"]) for r in results if r["max_batch"] == 1}
    )
    for op, concurrency in keys:
        base = next(
            r
            for r in results
            if r["op"] == op
            and r["concurrency"] == concurrency
            and r["max_batch"] == 1
        )
        coalesced = [
            r
            for r in results
            if r["op"] == op
            and r["concurrency"] == concurrency
            and r["max_batch"] > 1
        ]
        if not coalesced or base["ops_per_sec"] <= 0:
            continue
        best = max(coalesced, key=lambda r: r["ops_per_sec"])
        speedups.append(
            {
                "op": op,
                "concurrency": concurrency,
                "window1_ops_per_sec": base["ops_per_sec"],
                "best_coalesced_ops_per_sec": best["ops_per_sec"],
                "best_window": best["max_batch"],
                "speedup": best["ops_per_sec"] / base["ops_per_sec"],
            }
        )
    return speedups


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="service throughput benchmark (JSON-emitting)"
    )
    parser.add_argument("--params", default="P1")
    parser.add_argument(
        "--backend",
        default=None,
        help="default: numpy when available, else python-reference",
    )
    parser.add_argument("--ops", default="encrypt,encapsulate")
    parser.add_argument(
        "--windows",
        default="1:0,16:1,64:4",
        help="comma-separated max_batch:max_wait_ms pairs",
    )
    parser.add_argument("--concurrency", default="8,32,128")
    parser.add_argument(
        "--requests-factor",
        type=int,
        default=8,
        help="requests per run = max(min-requests, concurrency * factor)",
    )
    parser.add_argument("--min-requests", type=int, default=64)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small grid for CI smoke (encrypt only, conc 8/32)",
    )
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--out", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    backend = args.backend
    if backend is None:
        backend = (
            "numpy"
            if available_backends().get("numpy")
            else "python-reference"
        )
    if args.quick:
        ops = ["encrypt"]
        windows = _parse_windows("1:0,32:2")
        concurrency_levels = [8, 32]
        requests_factor, min_requests = 4, 32
    else:
        ops = [op.strip() for op in args.ops.split(",") if op.strip()]
        windows = _parse_windows(args.windows)
        concurrency_levels = [
            int(c) for c in args.concurrency.split(",") if c.strip()
        ]
        requests_factor, min_requests = args.requests_factor, args.min_requests

    np = get_numpy()
    print(
        f"service throughput bench: {args.params} backend={backend} "
        f"ops={','.join(ops)}",
        flush=True,
    )
    started = time.time()
    results = asyncio.run(
        _run_grid(
            args.params,
            backend,
            args.seed,
            ops,
            windows,
            concurrency_levels,
            requests_factor,
            min_requests,
        )
    )
    speedups = _speedups(results)
    report = {
        "benchmark": "service_throughput",
        "version": __version__,
        "python": sys.version.split()[0],
        "numpy": getattr(np, "__version__", None) if np else None,
        "params": args.params,
        "backend": backend,
        "skipped_backends": skipped_backends_report(),
        "results": results,
        "speedups": speedups,
        "wall_seconds": time.time() - started,
    }

    print()
    for row in speedups:
        print(
            f"{row['op']} @ conc {row['concurrency']}: "
            f"window-1 {row['window1_ops_per_sec']:.0f} ops/s -> "
            f"window-{row['best_window']} "
            f"{row['best_coalesced_ops_per_sec']:.0f} ops/s "
            f"= {row['speedup']:.1f}x"
        )
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2)
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
