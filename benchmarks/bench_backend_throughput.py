"""Backend/batch-size throughput benchmark with machine-readable output.

Runs the same measurement as ``rlwe-repro bench-backends`` and writes
``BENCH_backend_throughput.json`` so later PRs can track the perf
trajectory of the compute backends.  Not collected by pytest (no
``test_`` prefix) — run it directly:

    PYTHONPATH=src python benchmarks/bench_backend_throughput.py
    PYTHONPATH=src python benchmarks/bench_backend_throughput.py \\
        --params P1,P2 --batch-sizes 1,64,256 --out /tmp/bench.json

The JSON records, per (parameter set, backend, batch size): encrypt and
decrypt ms/message and messages/second, plus the speedup over the fixed
baseline (pure-Python reference backend, one message per call — the
repository's seed configuration).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.backend.bench import render_report, run_throughput_bench

DEFAULT_OUTPUT = "BENCH_backend_throughput.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="backend throughput benchmark (JSON-emitting)"
    )
    parser.add_argument("--params", default="P1")
    parser.add_argument(
        "--backends", default=None, help="default: all available"
    )
    parser.add_argument("--batch-sizes", default="1,16,64,256")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--out", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    started = time.time()
    report = run_throughput_bench(
        params_names=[p.strip() for p in args.params.split(",") if p.strip()],
        backends=(
            [b.strip() for b in args.backends.split(",") if b.strip()]
            if args.backends
            else None
        ),
        batch_sizes=[
            int(b) for b in args.batch_sizes.split(",") if b.strip()
        ],
        repeats=args.repeats,
        seed=args.seed,
    )
    report["wall_seconds"] = time.time() - started

    print(render_report(report))
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2)
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
