"""The paper's Section V future-work directions, modelled.

* **Constant-time execution** — the full-scan CDT sampler versus Alg. 2:
  leakage collapses to zero, cost rises ~30x; exactly the trade-off
  that kept it out of the 2015 implementation.
* **SIMD** — DSP-extension butterflies (SADD16/SSUB16/SEL + lane
  multiplies) on the packed layout: ~20% off the Alg. 4 transform.
"""

from repro.analysis.leakage import leakage_report, profile_sampler
from repro.analysis.tables import render_table
from repro.core.params import P1, P2
from repro.cyclemodel.ntt_cycles import ntt_forward_packed
from repro.cyclemodel.ntt_simd import ntt_forward_simd, ntt_inverse_simd
from repro.cyclemodel.sampler_cycles import CycleKnuthYaoSampler
from repro.machine.machine import CortexM4
from repro.sampler.constant_time import ConstantTimeCdtSampler
from repro.sampler.pmat import ProbabilityMatrix
from repro.trng.bitsource import PrngBitSource
from repro.trng.stream import DeterministicRng
from repro.trng.xorshift import Xorshift128


def _knuth_yao_factory(seed=5, **config):
    def factory():
        machine = CortexM4()
        sampler = CycleKnuthYaoSampler(
            ProbabilityMatrix.for_params(P1),
            P1.q,
            machine,
            PrngBitSource(Xorshift128(seed)),
            **config,
        )
        return sampler, machine

    return factory


def _constant_time_factory(seed=5):
    def factory():
        machine = CortexM4()
        sampler = ConstantTimeCdtSampler.for_params(
            P1, PrngBitSource(Xorshift128(seed)), machine=machine
        )
        return sampler, machine

    return factory


def test_constant_time_leakage_report(benchmark, paper_report):
    def run():
        alg1 = profile_sampler(
            "Knuth-Yao Alg. 1 (bit scan)",
            _knuth_yao_factory(use_lut1=False, use_lut2=False),
            P1.q,
            samples=3000,
        )
        ky = profile_sampler(
            "Knuth-Yao Alg. 2 (LUTs)", _knuth_yao_factory(), P1.q,
            samples=3000,
        )
        ct = profile_sampler(
            "constant-time CDT", _constant_time_factory(), P1.q,
            samples=1500,
        )
        return alg1, ky, ct

    alg1, ky, ct = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    paper_report(
        "Future work — constant-time execution",
        leakage_report([alg1, ky, ct]),
    )
    # Alg. 1 leaks hard: walk duration tracks the sampled magnitude.
    assert alg1.magnitude_timing_spread() > 50.0
    # Alg. 2's LUTs flatten the common path but it is not constant.
    assert not ky.is_constant_time()
    # The constant-time sampler is: identical cycles, always.
    assert ct.is_constant_time()
    assert ct.magnitude_correlation() == 0.0
    # And the price is steep (the paper's reason to defer it).
    assert ct.mean_cycles() > 10 * ky.mean_cycles()


def test_simd_ntt_report(benchmark, paper_report):
    def run():
        rows = []
        rng = DeterministicRng(3)
        for params in (P1, P2):
            a = rng.poly(params.n, params.q)
            _, packed = CortexM4().measure(ntt_forward_packed, a, params)
            _, simd = CortexM4().measure(ntt_forward_simd, a, params)
            _, simd_inv = CortexM4().measure(ntt_inverse_simd, a, params)
            rows.append(
                [
                    params.name,
                    packed,
                    simd,
                    f"{1 - simd / packed:.1%}",
                    simd_inv,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    table = render_table(
        ["params", "Alg. 4 packed", "DSP-SIMD", "saving", "SIMD inverse"],
        rows,
        title="SIMD butterflies on the packed layout (cycle model)",
    )
    paper_report("Future work — SIMD NTT", table)
    for row in rows:
        assert row[2] < row[1]  # SIMD strictly cheaper


def test_wallclock_constant_time_sampler(benchmark):
    sampler = ConstantTimeCdtSampler.for_params(
        P1, PrngBitSource(Xorshift128(7))
    )
    values = benchmark(sampler.sample_polynomial, 64)
    assert len(values) == 64


def test_wallclock_simd_ntt(benchmark):
    rng = DeterministicRng(4)
    a = rng.poly(P1.n, P1.q)

    def run():
        return ntt_forward_simd(CortexM4(), a, P1)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    assert len(result) == P1.n
